//! Row/column-constrained synthesis (the paper's Section III note): fit a
//! function into progressively tighter crossbar bounding boxes until the
//! tool proves the request infeasible.
//!
//! Run with: `cargo run --release --example constrained_fit`

use std::time::Duration;

use flowc::compact::{synthesize, synthesize_constrained, Config, ConstraintError, SizeLimits};
use flowc::logic::bench_suite;
use flowc::xbar::verify::verify_functional;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = bench_suite::by_name("int2float").expect("registered");
    let network = bench.network()?;
    let free = synthesize(&network, &Config::default())?;
    println!(
        "unconstrained design: {} × {} (S = {})\n",
        free.stats.rows, free.stats.cols, free.stats.semiperimeter
    );

    // Sweep a family of boxes: squares shrinking toward the lower bound.
    println!("{:>12} {:>14} {:>20}", "box", "result", "note");
    for side in [200usize, 140, 132, 120, 100, 60] {
        let limits = SizeLimits {
            max_rows: side,
            max_cols: side,
        };
        match synthesize_constrained(&network, limits, Duration::from_secs(10)) {
            Ok(design) => {
                let report = verify_functional(&design.crossbar, &network, 256)?;
                println!(
                    "{:>9}²    {:>6} × {:<6} {:>20}",
                    side,
                    design.stats.rows,
                    design.stats.cols,
                    if report.is_valid() {
                        "fits, verified"
                    } else {
                        "INVALID"
                    }
                );
            }
            Err(ConstraintError::Infeasible {
                semiperimeter_lower_bound,
                ..
            }) => {
                println!(
                    "{:>9}²    {:>14} {:>20}",
                    side,
                    "—",
                    format!("infeasible (S ≥ {semiperimeter_lower_bound})")
                );
            }
            Err(ConstraintError::NotFound {
                best_rows,
                best_cols,
            }) => {
                println!(
                    "{:>9}²    {:>14} {:>20}",
                    side,
                    "—",
                    format!("not found (best {best_rows}×{best_cols})")
                );
            }
            Err(other) => return Err(other.into()),
        }
    }
    println!(
        "\nthe tool either delivers a fitting, verified design or explains the \
         failure — proven infeasibility (below the semiperimeter lower bound) \
         versus search-budget exhaustion."
    );
    Ok(())
}

//! Electrical validation (the paper's SPICE step): synthesize the router
//! control benchmark's decision logic, then solve the full resistive
//! network with DC nodal analysis under sampled inputs and report the
//! sensing margin between logic-1 and logic-0 output voltages — including
//! how the margin degrades as the memristor on/off ratio shrinks.
//!
//! Run with: `cargo run --release --example electrical_validation`

use flowc::compact::{synthesize, Config};
use flowc::logic::bench_suite;
use flowc::xbar::circuit::ElectricalModel;
use flowc::xbar::verify::{verify_electrical, verify_functional};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ctrl is small enough for exhaustive electrical analysis.
    let bench = bench_suite::by_name("ctrl").expect("registered");
    let network = bench.network()?;
    let design = synthesize(&network, &Config::default())?;
    println!(
        "ctrl: {}×{} crossbar, {} literal devices, {} VH bridges\n",
        design.stats.rows,
        design.stats.cols,
        design.metrics.active_devices,
        design.metrics.bridge_devices,
    );

    // Functional check first (exhaustive: 2^7 assignments).
    let func = verify_functional(&design.crossbar, &network, 128)?;
    println!(
        "functional: {} assignments checked, {}",
        func.checked,
        if func.is_valid() {
            "all valid"
        } else {
            "INVALID"
        }
    );

    // Electrical margin as a function of the device on/off ratio.
    println!(
        "\n{:>12} {:>12} {:>12} {:>10}",
        "Roff/Ron", "min ON (V)", "max OFF (V)", "sensable"
    );
    for ratio in [10.0, 100.0, 1e3, 1e4, 1e5] {
        let model = ElectricalModel {
            r_off: 1e3 * ratio,
            ..ElectricalModel::default()
        };
        let report = verify_electrical(&design.crossbar, &network, &model, 128)?;
        let (min_on, max_off) = report.electrical_margin.expect("electrical run");
        println!(
            "{:>12.0} {:>12.4} {:>12.4} {:>10}",
            ratio,
            min_on,
            max_off,
            if report.margin_ok() { "yes" } else { "NO" }
        );
    }
    println!(
        "\nwith realistic HfO₂-class devices (ratio ≥ 10⁴) a single sensing \
         threshold separates every logic-1 from every logic-0 — the design \
         is electrically valid, matching the paper's SPICE verification."
    );
    Ok(())
}

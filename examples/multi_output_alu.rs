//! Multi-output synthesis: map an 8-bit ALU (the c880-like benchmark) to a
//! single crossbar through a *shared* BDD, and compare against the
//! per-output ROBDD flow — Section VII / Table III of the paper, on a real
//! datapath workload.
//!
//! Run with: `cargo run --release --example multi_output_alu`

use flowc::baselines::robdd_diagonal::compact_per_output;
use flowc::compact::{synthesize, Config};
use flowc::logic::bench_suite;
use flowc::xbar::metrics::CrossbarMetrics;
use flowc::xbar::verify::verify_functional;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = bench_suite::by_name("c880").expect("c880 is registered");
    let network = bench.network()?;
    println!(
        "c880-like ALU: {} inputs, {} outputs",
        network.num_inputs(),
        network.num_outputs()
    );

    // Shared-BDD flow (COMPACT's multi-output mode).
    let shared = synthesize(&network, &Config::default())?;
    println!(
        "\nSBDD flow   : {:>6} nodes -> {:>5} × {:<5} (S = {}, delay = {} steps)",
        shared.graph_nodes,
        shared.stats.rows,
        shared.stats.cols,
        shared.stats.semiperimeter,
        shared.metrics.delay_steps,
    );

    // Per-output ROBDD flow (the prior multi-output approach).
    let separate = compact_per_output(&network, &Config::default())?;
    let sm = CrossbarMetrics::of(&separate.crossbar);
    println!(
        "ROBDD flow  : {:>6} nodes -> {:>5} × {:<5} (S = {}, delay = {} steps)",
        separate.merged_nodes, sm.rows, sm.cols, sm.semiperimeter, sm.delay_steps,
    );
    println!(
        "\nsharing saves {:.1}% of the nodes and {:.1}% of the semiperimeter",
        100.0 * (1.0 - shared.graph_nodes as f64 / separate.merged_nodes as f64),
        100.0 * (1.0 - shared.stats.semiperimeter as f64 / sm.semiperimeter as f64),
    );

    // Exercise the design: a few arithmetic spot checks through the fabric.
    // Inputs: a/b interleaved (16), op (3), cin, c/d interleaved (16).
    let run_alu = |av: u8, bv: u8, op: u8, cin: bool| -> Result<u8, Box<dyn std::error::Error>> {
        let mut assignment = Vec::new();
        for i in 0..8 {
            assignment.push(av >> i & 1 == 1);
            assignment.push(bv >> i & 1 == 1);
        }
        for i in 0..3 {
            assignment.push(op >> i & 1 == 1);
        }
        assignment.push(cin);
        assignment.extend(std::iter::repeat_n(false, 16));
        let outs = shared.crossbar.evaluate(&assignment)?;
        Ok((0..8).map(|i| (outs[i] as u8) << i).sum())
    };
    println!("\nALU spot checks through the crossbar:");
    println!("  100 + 55      = {}", run_alu(100, 55, 0b000, false)?);
    println!("  200 - 100     = {}", run_alu(200, 100, 0b001, false)?);
    println!(
        "  0xF0 & 0x3C   = {:#04x}",
        run_alu(0xF0, 0x3C, 0b010, false)?
    );
    println!(
        "  0xF0 ^ 0x3C   = {:#04x}",
        run_alu(0xF0, 0x3C, 0b100, false)?
    );

    // And a randomized validation sweep.
    let report = verify_functional(&shared.crossbar, &network, 500)?;
    println!(
        "\nrandomized validation: {} assignments, {}",
        report.checked,
        if report.is_valid() {
            "all match"
        } else {
            "MISMATCHES FOUND"
        }
    );
    Ok(())
}

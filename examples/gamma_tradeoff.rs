//! The semiperimeter/maximum-dimension trade-off: sweep the γ parameter on
//! the int2float benchmark and print the non-dominated (rows, columns)
//! frontier — the experiment behind Figure 9 of the paper, plus an ASCII
//! rendering of the frontier.
//!
//! Run with: `cargo run --release --example gamma_tradeoff`

use std::time::Duration;

use flowc::compact::pareto::{gamma_sweep, non_dominated};
use flowc::logic::bench_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = bench_suite::by_name("int2float").expect("registered");
    let network = bench.network()?;
    println!(
        "sweeping γ on int2float ({} inputs, {} outputs)…\n",
        network.num_inputs(),
        network.num_outputs()
    );
    let points = gamma_sweep(&network, 11, Duration::from_secs(10));
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>6}",
        "γ", "rows", "cols", "S", "D"
    );
    for p in &points {
        println!(
            "{:>6.2} {:>6} {:>6} {:>6} {:>6}",
            p.gamma,
            p.rows,
            p.cols,
            p.rows + p.cols,
            p.rows.max(p.cols)
        );
    }

    let frontier = non_dominated(&points);
    println!("\nnon-dominated designs (the Figure 9 frontier):");
    for p in &frontier {
        println!("  ({:>4}, {:>4})  from γ = {:.2}", p.rows, p.cols, p.gamma);
    }

    // ASCII scatter of the frontier: rows on x, cols on y.
    let (rmin, rmax) = frontier.iter().fold((usize::MAX, 0), |(lo, hi), p| {
        (lo.min(p.rows), hi.max(p.rows))
    });
    let (cmin, cmax) = frontier.iter().fold((usize::MAX, 0), |(lo, hi), p| {
        (lo.min(p.cols), hi.max(p.cols))
    });
    let width = 40usize;
    let height = 12usize;
    let scale = |v: usize, lo: usize, hi: usize, steps: usize| {
        if hi == lo {
            0
        } else {
            (v - lo) * (steps - 1) / (hi - lo)
        }
    };
    let mut grid = vec![vec![' '; width]; height];
    for p in &frontier {
        let x = scale(p.rows, rmin, rmax, width);
        let y = height - 1 - scale(p.cols, cmin, cmax, height);
        grid[y][x] = '*';
    }
    println!("\ncols ({cmax} top … {cmin} bottom) vs rows ({rmin} left … {rmax} right):");
    for row in grid {
        println!("  |{}", row.into_iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(width));
    println!(
        "\nγ = 1 minimizes the semiperimeter; lowering γ trades a slightly \
         longer semiperimeter for a more square (smaller-D) design."
    );
    Ok(())
}

//! Formal verification of a crossbar design: instead of sampling
//! assignments, compute each output wordline's *connectivity function*
//! symbolically (a BDD fixpoint over the device graph) and prove it equals
//! the specification for all 2^k inputs — with counterexample extraction
//! when a design is wrong.
//!
//! Run with: `cargo run --release --example formal_equivalence`

use flowc::compact::{synthesize, verify_symbolic, Config};
use flowc::logic::bench_suite;
use flowc::xbar::DeviceAssignment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // int2float: 11 inputs — 2048 assignments — proven in one symbolic pass.
    let bench = bench_suite::by_name("int2float").expect("registered");
    let network = bench.network()?;
    let design = synthesize(&network, &Config::default())?;
    println!(
        "synthesized int2float: {} × {} crossbar, {} devices",
        design.stats.rows,
        design.stats.cols,
        design.metrics.active_devices + design.metrics.bridge_devices,
    );

    let report = verify_symbolic(&design.crossbar, &network);
    println!(
        "symbolic check: {} (fixpoint converged in {} sweeps)",
        if report.equivalent {
            "EQUIVALENT for all 2^11 assignments"
        } else {
            "NOT equivalent"
        },
        report.iterations,
    );
    assert!(report.equivalent);

    // Now sabotage one literal device and watch the prover find a witness.
    let mut broken = design.crossbar.clone();
    let (r, c, a) = broken
        .programmed_devices()
        .find(|(_, _, a)| a.is_literal())
        .expect("the design has literal devices");
    let DeviceAssignment::Literal { input, negated } = a else {
        unreachable!("filtered to literals")
    };
    broken.set(
        r,
        c,
        DeviceAssignment::Literal {
            input,
            negated: !negated,
        },
    )?;
    println!("\nflipping the polarity of the device at ({r}, {c}) [input x{input}]…");

    let report = verify_symbolic(&broken, &network);
    assert!(!report.equivalent);
    let cex = report
        .first_counterexample()
        .expect("inequivalent designs yield a witness");
    println!("prover found a counterexample assignment: {cex:?}");
    let want = network.simulate(cex)?;
    let got = broken.evaluate(cex)?;
    println!("  specification outputs : {want:?}");
    println!("  broken design outputs : {got:?}");
    assert_ne!(want, got);
    println!("\nthe witness reproduces the divergence — fault localized in one pass");
    Ok(())
}

//! Quickstart: synthesize the paper's running example `f = (a ∧ b) ∨ c`
//! (Figure 2) into a crossbar, print the design, and evaluate it on every
//! input assignment — both as ideal sneak-path flow and as a DC circuit.
//!
//! Run with: `cargo run --example quickstart`

use flowc::compact::{synthesize, Config};
use flowc::logic::{GateKind, Network};
use flowc::xbar::circuit::ElectricalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the Boolean function as a gate-level network. (BLIF and
    //    PLA parsers are available in flowc::logic::{blif, pla} as well.)
    let mut network = Network::new("fig2");
    let a = network.add_input("a");
    let b = network.add_input("b");
    let c = network.add_input("c");
    let ab = network.add_gate(GateKind::And, &[a, b], "ab")?;
    let f = network.add_gate(GateKind::Or, &[ab, c], "f")?;
    network.mark_output(f);

    // 2. Run the COMPACT flow: BDD → VH-labeling → crossbar. The default
    //    configuration is the paper's recommended γ = 0.5 with alignment.
    let design = synthesize(&network, &Config::default())?;
    println!(
        "synthesized {} BDD nodes into a {}×{} crossbar (S = {}, D = {}, {} VH nodes)\n",
        design.graph_nodes,
        design.stats.rows,
        design.stats.cols,
        design.stats.semiperimeter,
        design.stats.max_dimension,
        design.stats.num_vh,
    );
    println!("device matrix (rows = wordlines, columns = bitlines):");
    println!("{}", design.crossbar.render());

    // 3. Evaluate: program the literals, drive the bottom wordline, sense
    //    the output wordline.
    let model = ElectricalModel::default();
    println!(
        "{:>5} {:>5} {:>5} | {:>6} {:>6} {:>9}",
        "a", "b", "c", "flow", "f(x)", "sense_V"
    );
    for bits in 0u32..8 {
        let assignment = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
        let flow = design.crossbar.evaluate(&assignment)?[0];
        let expected = network.simulate(&assignment)?[0];
        let volts = model.output_voltages(&design.crossbar, &assignment)?[0];
        assert_eq!(flow, expected, "flow evaluation must match the netlist");
        println!(
            "{:>5} {:>5} {:>5} | {:>6} {:>6} {:>9.3}",
            assignment[0] as u8,
            assignment[1] as u8,
            assignment[2] as u8,
            flow as u8,
            expected as u8,
            volts,
        );
    }
    println!("\nall 8 assignments agree with the netlist — the design is valid");
    Ok(())
}

//! Property-based tests over the core invariants: random circuits map to
//! crossbars that agree with netlist simulation under every strategy;
//! random graphs yield valid transversals and labelings; format round-trips
//! preserve semantics.
//!
//! The harness lives in `flowc::conform` (the crate this suite seeded): it
//! is fully deterministic — every test derives its case seeds from a fixed
//! per-test base seed, so CI runs are reproducible bit-for-bit.
//! `PROPTEST_CASES` overrides the case count (default 32) and
//! `PROPTEST_SEED` overrides the base seed for local fuzzing. Failing case
//! seeds are persisted to `tests/regressions/<test>.txt` and replayed first
//! on every subsequent run; network-shaped failures are also shrunk and
//! persisted as replayable BLIF.

use std::collections::HashSet;
use std::time::Duration;

use flowc::compact::pipeline::{synthesize, Config, VhStrategy};
use flowc::compact::BddGraph;
use flowc::conform::gen::gen_graph;
use flowc::conform::{Harness, NetworkGen, Rng};
use flowc::graph::{odd_cycle_transversal, two_color, ColorResult, OctConfig, UGraph};
use flowc::logic::Network;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn harness(name: &str) -> Harness {
    Harness::new(name).with_corpus(corpus_dir())
}

fn gen_small_graph(rng: &mut Rng, n: usize) -> UGraph {
    gen_graph(rng, n)
}

fn exhaustive_equiv(network: &Network, crossbar: &flowc::xbar::Crossbar) -> Result<(), String> {
    let k = network.num_inputs();
    for bits in 0..1usize << k {
        let assignment: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
        let want = network.simulate(&assignment).map_err(|e| e.to_string())?;
        let got = crossbar.evaluate(&assignment).map_err(|e| e.to_string())?;
        if want != got {
            return Err(format!("mismatch on {assignment:?}: {got:?} vs {want:?}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

#[test]
fn synthesized_crossbars_are_equivalent_to_their_networks() {
    harness("synthesized_crossbars_are_equivalent_to_their_networks").check_network(
        &NetworkGen::new(5, 12),
        |network, _rng| {
            let r = synthesize(network, &Config::default()).expect("synthesis succeeds");
            exhaustive_equiv(network, &r.crossbar).unwrap();
            // Cost-model invariants.
            assert_eq!(r.stats.semiperimeter, r.stats.rows + r.stats.cols);
            assert_eq!(r.stats.max_dimension, r.stats.rows.max(r.stats.cols));
            assert_eq!(r.stats.semiperimeter, r.graph_nodes + r.stats.num_vh);
            assert_eq!(r.metrics.active_devices, r.graph_edges);
        },
    );
}

#[test]
fn min_semiperimeter_strategy_is_equivalent_too() {
    harness("min_semiperimeter_strategy_is_equivalent_too").check_network(
        &NetworkGen::new(4, 10),
        |network, _rng| {
            let cfg = Config {
                strategy: VhStrategy::MinSemiperimeter {
                    time_limit: Duration::from_secs(5),
                },
                ..Config::default()
            };
            let r = synthesize(network, &cfg).expect("synthesis succeeds");
            exhaustive_equiv(network, &r.crossbar).unwrap();
        },
    );
}

#[test]
fn heuristic_strategy_is_equivalent_and_never_beats_exact_s() {
    harness("heuristic_strategy_is_equivalent_and_never_beats_exact_s").check_network(
        &NetworkGen::new(4, 10),
        |network, _rng| {
            let heuristic = synthesize(
                network,
                &Config {
                    strategy: VhStrategy::Heuristic { gamma: 0.5 },
                    ..Config::default()
                },
            )
            .expect("synthesis succeeds");
            exhaustive_equiv(network, &heuristic.crossbar).unwrap();
            let exact = synthesize(
                network,
                &Config {
                    strategy: VhStrategy::MinSemiperimeter {
                        time_limit: Duration::from_secs(5),
                    },
                    ..Config::default()
                },
            )
            .expect("synthesis succeeds");
            // The exact OCT uses no more VH nodes than the greedy heuristic
            // (both before alignment upgrades; compare via OCT size = S - n).
            assert!(
                exact.stats.num_vh <= heuristic.stats.num_vh + 2,
                "exact {} vs heuristic {}",
                exact.stats.num_vh,
                heuristic.stats.num_vh
            );
        },
    );
}

#[test]
fn oct_makes_random_graphs_bipartite() {
    harness("oct_makes_random_graphs_bipartite").check(|rng| {
        let g = gen_small_graph(rng, 14);
        let r = odd_cycle_transversal(
            &g,
            &OctConfig {
                time_limit: Duration::from_secs(5),
                threads: 1,
            },
        );
        let keep: Vec<bool> = (0..g.num_vertices())
            .map(|v| !r.transversal.contains(&v))
            .collect();
        let (sub, _) = g.induced_subgraph(&keep);
        assert!(matches!(two_color(&sub), ColorResult::Bipartite(_)));
        assert!(r.lower_bound <= r.transversal.len().max(1));
    });
}

#[test]
fn bdd_graph_edges_have_literals_and_no_zero_terminal() {
    harness("bdd_graph_edges_have_literals_and_no_zero_terminal").check_network(
        &NetworkGen::new(5, 12),
        |network, _rng| {
            let bdds = flowc::bdd::build_sbdd(network, None);
            let g = BddGraph::from_bdds(&bdds);
            // Every edge is labelled.
            assert_eq!(g.labels.len(), g.num_edges());
            // Node count is the BDD size minus the dropped 0-terminal (when the
            // forest is non-trivial).
            let size = bdds.manager.size(&bdds.roots);
            let zero_reachable = bdds
                .manager
                .reachable(&bdds.roots)
                .contains(&flowc::bdd::Ref::ZERO);
            let expected = if zero_reachable { size - 1 } else { size };
            assert_eq!(g.num_nodes(), expected);
        },
    );
}

#[test]
fn blif_roundtrip_preserves_semantics() {
    harness("blif_roundtrip_preserves_semantics").check_network(
        &NetworkGen::new(4, 10),
        |network, _rng| {
            let text = flowc::logic::blif::write(network);
            let back = flowc::logic::blif::parse(&text).expect("own output parses");
            for bits in 0..1usize << 4 {
                let assignment: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    back.simulate(&assignment).expect("simulates"),
                    network.simulate(&assignment).expect("simulates")
                );
            }
        },
    );
}

#[test]
fn nor_decomposition_is_equivalent() {
    harness("nor_decomposition_is_equivalent").check_network(
        &NetworkGen::new(5, 12),
        |network, _rng| {
            let nor = flowc::baselines::magic::NorNetlist::from_network(network);
            for bits in 0..1usize << 5 {
                let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    nor.eval(&assignment),
                    network.simulate(&assignment).expect("simulates")
                );
            }
        },
    );
}

#[test]
fn wide_crossbar_evaluation_matches_scalar() {
    harness("wide_crossbar_evaluation_matches_scalar").check_network(
        &NetworkGen::new(6, 12),
        |network, rng| {
            let r = synthesize(network, &Config::default()).expect("synthesis succeeds");
            // 64 random assignments, evaluated wide and lane-by-lane.
            let k = network.num_inputs();
            let mut words = vec![0u64; k];
            for w in &mut words {
                *w = rng.next();
            }
            let wide = r.crossbar.evaluate64(&words).expect("evaluable");
            for lane in 0..64u64 {
                let assignment: Vec<bool> = (0..k).map(|i| words[i] >> lane & 1 == 1).collect();
                let scalar = r.crossbar.evaluate(&assignment).expect("evaluable");
                for (j, &s) in scalar.iter().enumerate() {
                    assert_eq!(wide[j] >> lane & 1 == 1, s, "lane {lane} out {j}");
                }
            }
        },
    );
}

#[test]
fn simplify_and_binarize_preserve_synthesis() {
    harness("simplify_and_binarize_preserve_synthesis").check_network(
        &NetworkGen::new(5, 10),
        |network, _rng| {
            use flowc::logic::xform::{binarize, simplify};
            let simplified = simplify(network).expect("valid");
            let binary = binarize(network).expect("valid");
            for bits in 0..1usize << 5 {
                let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
                let want = network.simulate(&assignment).expect("simulates");
                assert_eq!(simplified.simulate(&assignment).expect("simulates"), want);
                assert_eq!(binary.simulate(&assignment).expect("simulates"), want);
            }
            // Canonical SBDD sizes agree across the semantic-preserving forms.
            let base = flowc::bdd::build_sbdd(network, None).shared_size();
            let simp = flowc::bdd::build_sbdd(&simplified, None).shared_size();
            let bin = flowc::bdd::build_sbdd(&binary, None).shared_size();
            assert_eq!(base, simp);
            assert_eq!(base, bin);
        },
    );
}

#[test]
fn milp_solver_matches_brute_force_on_random_01_programs() {
    harness("milp_solver_matches_brute_force_on_random_01_programs").check(|rng| {
        use flowc::milp::{BranchBound, MilpError, Model, Sense};
        let n = rng.range(2, 7);
        let costs: Vec<i64> = (0..n).map(|_| rng.below(11) as i64 - 5).collect();
        let mut model = Model::new();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| model.add_binary(format!("x{i}"), c as f64))
            .collect();
        let mut constraints = Vec::new();
        for _ in 0..rng.below(6) {
            let coeffs: Vec<i64> = (0..n).map(|_| rng.below(7) as i64 - 3).collect();
            let sense = match rng.below(3) {
                0 => Sense::Le,
                1 => Sense::Ge,
                _ => Sense::Eq,
            };
            let rhs = rng.below(11) as i64 - 4;
            let terms: Vec<_> = vars
                .iter()
                .zip(&coeffs)
                .map(|(&v, &c)| (v, c as f64))
                .collect();
            model.add_constraint(&terms, sense, rhs as f64);
            constraints.push((coeffs, sense, rhs));
        }
        // Brute force.
        let mut best: Option<i64> = None;
        for mask in 0..1usize << n {
            let feasible = constraints.iter().all(|(coeffs, sense, rhs)| {
                let lhs: i64 = (0..n).map(|i| coeffs[i] * ((mask >> i & 1) as i64)).sum();
                match sense {
                    Sense::Le => lhs <= *rhs,
                    Sense::Ge => lhs >= *rhs,
                    Sense::Eq => lhs == *rhs,
                }
            });
            if feasible {
                let obj: i64 = (0..n).map(|i| costs[i] * ((mask >> i & 1) as i64)).sum();
                best = Some(best.map_or(obj, |b: i64| b.min(obj)));
            }
        }
        match (BranchBound::new().solve(&model), best) {
            (Ok(sol), Some(expect)) => {
                assert!(
                    (sol.objective - expect as f64).abs() < 1e-6,
                    "solver {} vs brute force {}",
                    sol.objective,
                    expect
                );
                assert!(model.is_feasible(&sol.values, 1e-6));
            }
            (Err(MilpError::Infeasible), None) => {}
            (got, want) => {
                panic!("solver {got:?} disagrees with brute force {want:?}");
            }
        }
    });
}

#[test]
fn vertex_cover_is_minimum_on_small_graphs() {
    harness("vertex_cover_is_minimum_on_small_graphs").check(|rng| {
        let g = gen_small_graph(rng, 10);
        let r = flowc::graph::minimum_vertex_cover(
            &g,
            &flowc::graph::VcConfig {
                time_limit: Duration::from_secs(5),
                threads: 1,
            },
        );
        assert!(r.optimal);
        // Valid cover.
        let set: HashSet<usize> = r.cover.iter().copied().collect();
        for &(u, v) in g.edges() {
            assert!(set.contains(&u) || set.contains(&v));
        }
        // Brute-force optimum matches.
        let n = g.num_vertices();
        let best = (0..1usize << n)
            .filter(|&mask| {
                g.edges()
                    .iter()
                    .all(|&(u, v)| mask >> u & 1 == 1 || mask >> v & 1 == 1)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0);
        assert_eq!(r.cover.len(), best);
        assert_eq!(r.lower_bound, best);
    });
}

// The old private gen_network drew its gate count as `range(1, max_gates)`
// and its output count as `range(1, 5)`; NetworkGen must keep designating
// the same circuits for the same seeds so persisted regression seeds stay
// meaningful. This pins the stream layout.
#[test]
fn network_generator_is_bit_compatible_with_the_historical_one() {
    use flowc::logic::{GateKind, NetId};
    fn historical(rng: &mut Rng, num_inputs: usize, max_gates: usize) -> Network {
        let mut n = Network::new("random");
        let mut nets: Vec<NetId> = (0..num_inputs)
            .map(|i| n.add_input(format!("x{i}")))
            .collect();
        let num_gates = rng.range(1, max_gates);
        for g in 0..num_gates {
            let arity = rng.range(1, 4);
            let operands: Vec<NetId> = (0..arity).map(|_| nets[rng.below(nets.len())]).collect();
            let kind_sel = rng.below(7) as u8;
            let out = match kind_sel {
                0 => n.add_gate(GateKind::Not, &operands[..1], format!("g{g}")),
                1 if operands.len() >= 2 => n.add_gate(GateKind::And, &operands, format!("g{g}")),
                2 if operands.len() >= 2 => n.add_gate(GateKind::Or, &operands, format!("g{g}")),
                3 if operands.len() >= 2 => n.add_gate(GateKind::Xor, &operands, format!("g{g}")),
                4 if operands.len() >= 2 => n.add_gate(GateKind::Nand, &operands, format!("g{g}")),
                5 if operands.len() >= 2 => n.add_gate(GateKind::Nor, &operands, format!("g{g}")),
                6 if operands.len() == 3 => n.add_gate(GateKind::Mux, &operands, format!("g{g}")),
                _ => n.add_gate(GateKind::Buf, &operands[..1], format!("g{g}")),
            }
            .expect("arities are satisfied by construction");
            nets.push(out);
        }
        for _ in 0..rng.range(1, 5) {
            let net = nets[rng.below(nets.len())];
            n.mark_output(net);
        }
        n
    }
    for seed in 0..128 {
        let old = historical(&mut Rng::new(seed), 5, 12);
        let new = NetworkGen::new(5, 12).generate(&mut Rng::new(seed));
        assert_eq!(
            flowc::logic::blif::write(&old),
            flowc::logic::blif::write(&new),
            "seed {seed} designates different circuits"
        );
    }
}

//! Property-based tests over the core invariants: random circuits map to
//! crossbars that agree with netlist simulation under every strategy;
//! random graphs yield valid transversals and labelings; format round-trips
//! preserve semantics.

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;

use flowc::compact::pipeline::{synthesize, Config, VhStrategy};
use flowc::compact::BddGraph;
use flowc::graph::{odd_cycle_transversal, two_color, ColorResult, OctConfig, UGraph};
use flowc::logic::{GateKind, NetId, Network};

/// Strategy: a random combinational network over `num_inputs` inputs with
/// up to `max_gates` gates and up to 4 outputs.
fn arb_network(num_inputs: usize, max_gates: usize) -> impl Strategy<Value = Network> {
    let gate_specs = prop::collection::vec(
        (0u8..7, prop::collection::vec(any::<prop::sample::Index>(), 1..4)),
        1..max_gates,
    );
    let output_picks = prop::collection::vec(any::<prop::sample::Index>(), 1..5);
    (gate_specs, output_picks).prop_map(move |(specs, outs)| {
        let mut n = Network::new("random");
        let mut nets: Vec<NetId> = (0..num_inputs)
            .map(|i| n.add_input(format!("x{i}")))
            .collect();
        for (g, (kind_sel, operand_sels)) in specs.into_iter().enumerate() {
            let operands: Vec<NetId> = operand_sels
                .iter()
                .map(|sel| *sel.get(&nets))
                .collect();
            let out = match kind_sel {
                0 => n.add_gate(GateKind::Not, &operands[..1], format!("g{g}")),
                1 if operands.len() >= 2 => {
                    n.add_gate(GateKind::And, &operands, format!("g{g}"))
                }
                2 if operands.len() >= 2 => n.add_gate(GateKind::Or, &operands, format!("g{g}")),
                3 if operands.len() >= 2 => {
                    n.add_gate(GateKind::Xor, &operands, format!("g{g}"))
                }
                4 if operands.len() >= 2 => {
                    n.add_gate(GateKind::Nand, &operands, format!("g{g}"))
                }
                5 if operands.len() >= 2 => {
                    n.add_gate(GateKind::Nor, &operands, format!("g{g}"))
                }
                6 if operands.len() == 3 => {
                    n.add_gate(GateKind::Mux, &operands, format!("g{g}"))
                }
                _ => n.add_gate(GateKind::Buf, &operands[..1], format!("g{g}")),
            }
            .expect("arities are satisfied by construction");
            nets.push(out);
        }
        for sel in outs {
            let net = *sel.get(&nets);
            n.mark_output(net);
        }
        n
    })
}

/// Strategy: a random simple undirected graph as an edge list over `n`
/// vertices.
fn arb_graph(n: usize) -> impl Strategy<Value = UGraph> {
    prop::collection::vec((0..n, 0..n), 0..3 * n).prop_map(move |edges| {
        let mut g = UGraph::new(n);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        g
    })
}

fn exhaustive_equiv(network: &Network, crossbar: &flowc::xbar::Crossbar) -> Result<(), String> {
    let k = network.num_inputs();
    for bits in 0..1usize << k {
        let assignment: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
        let want = network.simulate(&assignment).map_err(|e| e.to_string())?;
        let got = crossbar.evaluate(&assignment).map_err(|e| e.to_string())?;
        if want != got {
            return Err(format!("mismatch on {assignment:?}: {got:?} vs {want:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthesized_crossbars_are_equivalent_to_their_networks(
        network in arb_network(5, 12)
    ) {
        let r = synthesize(&network, &Config::default()).expect("synthesis succeeds");
        prop_assert!(exhaustive_equiv(&network, &r.crossbar).is_ok());
        // Cost-model invariants.
        prop_assert_eq!(r.stats.semiperimeter, r.stats.rows + r.stats.cols);
        prop_assert_eq!(r.stats.max_dimension, r.stats.rows.max(r.stats.cols));
        prop_assert_eq!(r.stats.semiperimeter, r.graph_nodes + r.stats.num_vh);
        prop_assert_eq!(r.metrics.active_devices, r.graph_edges);
    }

    #[test]
    fn min_semiperimeter_strategy_is_equivalent_too(
        network in arb_network(4, 10)
    ) {
        let cfg = Config {
            strategy: VhStrategy::MinSemiperimeter { time_limit: Duration::from_secs(5) },
            align: true,
            var_order: None,
        };
        let r = synthesize(&network, &cfg).expect("synthesis succeeds");
        prop_assert!(exhaustive_equiv(&network, &r.crossbar).is_ok());
    }

    #[test]
    fn heuristic_strategy_is_equivalent_and_never_beats_exact_s(
        network in arb_network(4, 10)
    ) {
        let heuristic = synthesize(
            &network,
            &Config { strategy: VhStrategy::Heuristic { gamma: 0.5 }, align: true, var_order: None },
        ).expect("synthesis succeeds");
        prop_assert!(exhaustive_equiv(&network, &heuristic.crossbar).is_ok());
        let exact = synthesize(
            &network,
            &Config {
                strategy: VhStrategy::MinSemiperimeter { time_limit: Duration::from_secs(5) },
                align: true,
                var_order: None,
            },
        ).expect("synthesis succeeds");
        // The exact OCT uses no more VH nodes than the greedy heuristic
        // (both before alignment upgrades; compare via OCT size = S - n).
        prop_assert!(
            exact.stats.num_vh <= heuristic.stats.num_vh + 2,
            "exact {} vs heuristic {}", exact.stats.num_vh, heuristic.stats.num_vh
        );
    }

    #[test]
    fn oct_makes_random_graphs_bipartite(g in arb_graph(14)) {
        let r = odd_cycle_transversal(&g, &OctConfig { time_limit: Duration::from_secs(5) });
        let keep: Vec<bool> = (0..g.num_vertices())
            .map(|v| !r.transversal.contains(&v))
            .collect();
        let (sub, _) = g.induced_subgraph(&keep);
        prop_assert!(matches!(two_color(&sub), ColorResult::Bipartite(_)));
        prop_assert!(r.lower_bound <= r.transversal.len().max(1));
    }

    #[test]
    fn bdd_graph_edges_have_literals_and_no_zero_terminal(
        network in arb_network(5, 12)
    ) {
        let bdds = flowc::bdd::build_sbdd(&network, None);
        let g = BddGraph::from_bdds(&bdds);
        // Every edge is labelled.
        prop_assert_eq!(g.labels.len(), g.num_edges());
        // Node count is the BDD size minus the dropped 0-terminal (when the
        // forest is non-trivial).
        let size = bdds.manager.size(&bdds.roots);
        let zero_reachable = bdds
            .manager
            .reachable(&bdds.roots)
            .contains(&flowc::bdd::Ref::ZERO);
        let expected = if zero_reachable { size - 1 } else { size };
        prop_assert_eq!(g.num_nodes(), expected);
    }

    #[test]
    fn blif_roundtrip_preserves_semantics(network in arb_network(4, 10)) {
        let text = flowc::logic::blif::write(&network);
        let back = flowc::logic::blif::parse(&text).expect("own output parses");
        for bits in 0..1usize << 4 {
            let assignment: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(
                back.simulate(&assignment).expect("simulates"),
                network.simulate(&assignment).expect("simulates")
            );
        }
    }

    #[test]
    fn nor_decomposition_is_equivalent(network in arb_network(5, 12)) {
        let nor = flowc::baselines::magic::NorNetlist::from_network(&network);
        for bits in 0..1usize << 5 {
            let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(
                nor.eval(&assignment),
                network.simulate(&assignment).expect("simulates")
            );
        }
    }

    #[test]
    fn wide_crossbar_evaluation_matches_scalar(
        network in arb_network(6, 12),
        seed in any::<u64>(),
    ) {
        let r = synthesize(&network, &Config::default()).expect("synthesis succeeds");
        // 64 random assignments, evaluated wide and lane-by-lane.
        let k = network.num_inputs();
        let mut state = seed | 1;
        let mut words = vec![0u64; k];
        for w in &mut words {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *w = state;
        }
        let wide = r.crossbar.evaluate64(&words).expect("evaluable");
        for lane in 0..64u64 {
            let assignment: Vec<bool> =
                (0..k).map(|i| words[i] >> lane & 1 == 1).collect();
            let scalar = r.crossbar.evaluate(&assignment).expect("evaluable");
            for (j, &s) in scalar.iter().enumerate() {
                prop_assert_eq!(wide[j] >> lane & 1 == 1, s, "lane {} out {}", lane, j);
            }
        }
    }

    #[test]
    fn simplify_and_binarize_preserve_synthesis(network in arb_network(5, 10)) {
        use flowc::logic::xform::{binarize, simplify};
        let simplified = simplify(&network).expect("valid");
        let binary = binarize(&network).expect("valid");
        for bits in 0..1usize << 5 {
            let assignment: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let want = network.simulate(&assignment).expect("simulates");
            prop_assert_eq!(simplified.simulate(&assignment).expect("simulates"), want.clone());
            prop_assert_eq!(binary.simulate(&assignment).expect("simulates"), want);
        }
        // Canonical SBDD sizes agree across the semantic-preserving forms.
        let base = flowc::bdd::build_sbdd(&network, None).shared_size();
        let simp = flowc::bdd::build_sbdd(&simplified, None).shared_size();
        let bin = flowc::bdd::build_sbdd(&binary, None).shared_size();
        prop_assert_eq!(base, simp);
        prop_assert_eq!(base, bin);
    }

    #[test]
    fn milp_solver_matches_brute_force_on_random_01_programs(
        costs in prop::collection::vec(-5i64..=5, 2..7),
        rows in prop::collection::vec(
            (prop::collection::vec(-3i64..=3, 7), 0u8..3, -4i64..=6),
            0..6,
        ),
    ) {
        use flowc::milp::{BranchBound, MilpError, Model, Sense};
        let n = costs.len();
        let mut model = Model::new();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| model.add_binary(format!("x{i}"), c as f64))
            .collect();
        let mut constraints = Vec::new();
        for (coeffs, sense_sel, rhs) in &rows {
            let sense = match sense_sel {
                0 => Sense::Le,
                1 => Sense::Ge,
                _ => Sense::Eq,
            };
            let terms: Vec<_> = vars
                .iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c as f64))
                .collect();
            model.add_constraint(&terms, sense, *rhs as f64);
            constraints.push((coeffs.clone(), sense, *rhs));
        }
        // Brute force.
        let mut best: Option<i64> = None;
        for mask in 0..1usize << n {
            let feasible = constraints.iter().all(|(coeffs, sense, rhs)| {
                let lhs: i64 = (0..n)
                    .map(|i| coeffs[i] * ((mask >> i & 1) as i64))
                    .sum();
                match sense {
                    Sense::Le => lhs <= *rhs,
                    Sense::Ge => lhs >= *rhs,
                    Sense::Eq => lhs == *rhs,
                }
            });
            if feasible {
                let obj: i64 = (0..n)
                    .map(|i| costs[i] * ((mask >> i & 1) as i64))
                    .sum();
                best = Some(best.map_or(obj, |b: i64| b.min(obj)));
            }
        }
        match (BranchBound::new().solve(&model), best) {
            (Ok(sol), Some(expect)) => {
                prop_assert!(
                    (sol.objective - expect as f64).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective, expect
                );
                prop_assert!(model.is_feasible(&sol.values, 1e-6));
            }
            (Err(MilpError::Infeasible), None) => {}
            (got, want) => {
                prop_assert!(
                    false,
                    "solver {got:?} disagrees with brute force {want:?}"
                );
            }
        }
    }

    #[test]
    fn vertex_cover_is_minimum_on_small_graphs(g in arb_graph(10)) {
        let r = flowc::graph::minimum_vertex_cover(
            &g,
            &flowc::graph::VcConfig { time_limit: Duration::from_secs(5) },
        );
        prop_assert!(r.optimal);
        // Valid cover.
        let set: HashSet<usize> = r.cover.iter().copied().collect();
        for &(u, v) in g.edges() {
            prop_assert!(set.contains(&u) || set.contains(&v));
        }
        // Brute-force optimum matches.
        let n = g.num_vertices();
        let best = (0..1usize << n)
            .filter(|&mask| {
                g.edges().iter().all(|&(u, v)| mask >> u & 1 == 1 || mask >> v & 1 == 1)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0);
        prop_assert_eq!(r.cover.len(), best);
        prop_assert_eq!(r.lower_bound, best);
    }
}

//! Equivalence suite for the metric-guided branch & bound: on small,
//! conform-generator-seeded instances, every `Bounder` implementation must
//! reproduce the exhaustive-enumeration optimum, the parallel driver must
//! agree with the sequential one, and a warm-started γ sweep must land on
//! the same optima as cold solves.

use std::time::Duration;

use flowc::budget::Budget;
use flowc::compact::mip_method::{solve as mip_solve, solve_exact_warm, MipConfig};
use flowc::compact::BddGraph;
use flowc::conform::gen::gen_graph;
use flowc::conform::Rng;
use flowc::graph::UGraph;
use flowc::milp::metrics::{CoverProblem, DegreeCoverBounder, HybridBounder, MatchingCoverBounder};
use flowc::milp::{Bounder, BranchBound, LpBounder, Model, Sense};

/// Wraps a bare conform-generated graph as a labeling instance (no BDD
/// provenance needed: with `align = false` the solver never consults
/// roots/terminal, and mapping is not exercised here).
fn instance(g: UGraph) -> BddGraph {
    let n = g.num_vertices();
    BddGraph {
        graph: g,
        labels: std::collections::HashMap::new(),
        terminal: None,
        roots: Vec::new(),
        node_names: (0..n).map(|v| format!("n{v}")).collect(),
        num_inputs: 0,
    }
}

/// Exhaustive VH-labeling optimum: every node takes V, H, or VH; each edge
/// must admit a V→H orientation; the objective is Eq. 4's γ·S + (1−γ)·D.
fn enumerate_vh_optimum(g: &UGraph, gamma: f64) -> f64 {
    let n = g.num_vertices();
    assert!(n <= 10, "enumeration is 3^n");
    let mut best = f64::INFINITY;
    // state per node: 0 = V, 1 = H, 2 = VH.
    let mut state = vec![0u8; n];
    loop {
        let has_v = |i: usize| state[i] != 1;
        let has_h = |i: usize| state[i] != 0;
        let feasible = g
            .edges()
            .iter()
            .all(|&(i, j)| (has_v(i) && has_h(j)) || (has_h(i) && has_v(j)));
        if feasible {
            let rows = (0..n).filter(|&i| has_h(i)).count();
            let cols = (0..n).filter(|&i| has_v(i)).count();
            let obj = gamma * (rows + cols) as f64 + (1.0 - gamma) * rows.max(cols) as f64;
            best = best.min(obj);
        }
        // Odometer increment.
        let mut k = 0;
        while k < n {
            state[k] += 1;
            if state[k] < 3 {
                break;
            }
            state[k] = 0;
            k += 1;
        }
        if k == n {
            return best;
        }
    }
}

#[test]
fn conform_seeded_labelings_match_exhaustive_enumeration() {
    let mut rng = Rng::new(0xC0DE);
    for case in 0..10u64 {
        let n = 4 + (case as usize % 5); // 4..=8 nodes
        let g = gen_graph(&mut rng, n);
        let graph = instance(g);
        for gamma in [0.0, 0.5, 1.0] {
            let want = enumerate_vh_optimum(&graph.graph, gamma);
            let got = mip_solve(
                &graph,
                &MipConfig {
                    gamma,
                    align: false,
                    time_limit: Duration::from_secs(30),
                    exact_node_limit: 80,
                    threads: 1,
                },
            );
            assert!(got.optimal, "case {case} γ={gamma} must close");
            assert!(
                (got.objective - want).abs() < 1e-6,
                "case {case} γ={gamma}: bnb {} vs exhaustive {want}",
                got.objective
            );
        }
    }
}

/// Minimum-vertex-cover model of `g`: minimize Σx subject to x_i + x_j ≥ 1
/// per edge — the shape `CoverProblem::from_model` recognizes.
fn cover_model(g: &UGraph) -> Model {
    let n = g.num_vertices();
    let mut m = Model::new();
    let xs: Vec<_> = (0..n).map(|v| m.add_binary(format!("x{v}"), 1.0)).collect();
    for &(i, j) in g.edges() {
        m.add_constraint(&[(xs[i], 1.0), (xs[j], 1.0)], Sense::Ge, 1.0);
    }
    m
}

/// Exhaustive minimum vertex cover size.
fn enumerate_cover_optimum(g: &UGraph) -> f64 {
    let n = g.num_vertices();
    assert!(n <= 14, "enumeration is 2^n");
    (0..1usize << n)
        .filter(|&mask| {
            g.edges()
                .iter()
                .all(|&(i, j)| mask >> i & 1 == 1 || mask >> j & 1 == 1)
        })
        .map(|mask| mask.count_ones() as f64)
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn every_bounder_matches_exhaustive_on_conform_seeded_covers() {
    let mut rng = Rng::new(0xBEEF);
    for case in 0..10u64 {
        let n = 5 + (case as usize % 6); // 5..=10 nodes
        let g = gen_graph(&mut rng, n);
        let m = cover_model(&g);
        let want = enumerate_cover_optimum(&g);
        let solver = BranchBound::new().time_limit(Duration::from_secs(30));
        let mut bounders: Vec<(&str, Box<dyn Bounder>)> = vec![
            ("lp", Box::new(LpBounder::new())),
            (
                "hybrid-matching",
                Box::new(HybridBounder::new(MatchingCoverBounder::new(
                    CoverProblem::from_model(&m).expect("cover shape"),
                ))),
            ),
            (
                "matching",
                Box::new(MatchingCoverBounder::new(
                    CoverProblem::from_model(&m).expect("cover shape"),
                )),
            ),
            (
                "degree",
                Box::new(DegreeCoverBounder::new(
                    CoverProblem::from_model(&m).expect("cover shape"),
                )),
            ),
        ];
        for (name, bounder) in &mut bounders {
            let sol = solver.solve_with(&m, bounder.as_mut()).expect("solvable");
            assert!(
                (sol.objective - want).abs() < 1e-6,
                "case {case} bounder {name}: bnb {} vs exhaustive {want}",
                sol.objective
            );
        }
    }
}

#[test]
fn parallel_and_sequential_solves_agree_on_conform_seeded_covers() {
    let mut rng = Rng::new(0xD15C);
    for case in 0..6u64 {
        let n = 8 + (case as usize % 5); // 8..=12 nodes
        let g = gen_graph(&mut rng, n);
        let m = cover_model(&g);
        let seq = BranchBound::new()
            .time_limit(Duration::from_secs(30))
            .solve(&m)
            .expect("sequential solve");
        let par = BranchBound::new()
            .time_limit(Duration::from_secs(30))
            .threads(4)
            .solve(&m)
            .expect("parallel solve");
        assert!(
            (seq.objective - par.objective).abs() < 1e-6,
            "case {case}: sequential {} vs parallel {}",
            seq.objective,
            par.objective
        );
    }
}

#[test]
fn warm_started_sweep_lands_on_the_cold_optima() {
    use flowc::bdd::build_sbdd;
    use flowc::logic::bench_suite;

    let b = bench_suite::by_name("ctrl").unwrap();
    let network = b.network().unwrap();
    let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
    let budget = Budget::unlimited();
    let mut warm = None;
    // Sweep ordered for reuse (γ = 1 closes fastest and seeds the rest).
    for gamma in [1.0, 0.75, 0.5, 0.25, 0.0] {
        let config = MipConfig {
            gamma,
            align: true,
            time_limit: Duration::from_secs(60),
            exact_node_limit: 80,
            threads: 1,
        };
        let cold = solve_exact_warm(&graph, &config, &budget, None).expect("cold solve");
        let warmed = solve_exact_warm(&graph, &config, &budget, warm.as_ref()).expect("warm solve");
        assert!(cold.optimal && warmed.optimal, "γ={gamma} must close");
        assert!(
            (cold.objective - warmed.objective).abs() < 1e-6,
            "γ={gamma}: cold {} vs warm {}",
            cold.objective,
            warmed.objective
        );
        warm = Some(warmed.labeling);
    }
}

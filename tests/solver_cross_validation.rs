//! Cross-validation between the two VH-labeling solvers: on instances where
//! both complete, the Eq. 4 MIP at γ = 1 must agree with the Lemma-1
//! odd-cycle-transversal method (they optimize the same objective), and
//! both must respect the theoretical bounds `n ≤ S ≤ 2n`.

use std::time::Duration;

use flowc::bdd::build_sbdd;
use flowc::compact::mip_method::{solve as mip_solve, MipConfig};
use flowc::compact::oct_method::{min_semiperimeter, OctMethodConfig};
use flowc::compact::BddGraph;
use flowc::conform::Rng;
use flowc::graph::lp_lower_bound;
use flowc::logic::bench_suite;
use flowc::logic::{GateKind, Network};

fn graph_of_network(n: &Network) -> BddGraph {
    BddGraph::from_bdds(&build_sbdd(n, None))
}

#[test]
fn mip_and_oct_are_consistent_on_ctrl_at_gamma_one() {
    // ctrl's graph (39 nodes) is within the exact MIP's reach *with* the
    // alignment constraints (which fix 27 port variables). Without them the
    // generic LP-bounded branch & bound does not close — which is exactly
    // the paper's motivation for the specialised Lemma-1 route of §VI-A.
    let b = bench_suite::by_name("ctrl").unwrap();
    let network = b.network().unwrap();
    let graph = graph_of_network(&network);
    assert!(graph.num_nodes() <= 80, "ctrl must stay in exact-MIP range");

    // Unaligned OCT: the unconditional lower bound S ≥ n + k_min.
    let oct_free = min_semiperimeter(
        &graph,
        &OctMethodConfig {
            align: false,
            ..Default::default()
        },
    );
    assert!(oct_free.optimal);
    // Aligned OCT method: minimum transversal + post-hoc upgrades (an upper
    // bound for the aligned optimum — upgrades are not jointly optimized).
    let oct_aligned = min_semiperimeter(&graph, &OctMethodConfig::default());
    // Aligned exact MIP: the jointly-optimal aligned solution.
    let mip = mip_solve(
        &graph,
        &MipConfig {
            gamma: 1.0,
            align: true,
            time_limit: Duration::from_secs(60),
            exact_node_limit: 80,
            threads: 1,
        },
    );
    assert!(mip.optimal, "ctrl at γ=1 with alignment must close");
    let n = graph.num_nodes();
    let s_mip = mip.labeling.stats().semiperimeter;
    let s_oct = oct_aligned.labeling.stats().semiperimeter;
    assert!(
        s_mip >= n + oct_free.oct_size,
        "aligned optimum {s_mip} below the unaligned bound {}",
        n + oct_free.oct_size
    );
    assert!(
        s_mip <= s_oct,
        "the joint MIP optimum {s_mip} must not exceed the OCT-then-upgrade {s_oct}"
    );
    assert!(mip.labeling.is_aligned(&graph));
}

#[test]
fn mip_and_oct_agree_on_random_functions_at_gamma_one() {
    let mut rng = Rng::new(0x5151_5151_5151_5151);
    for trial in 0..8 {
        // A random 4-input, 2-output network.
        let mut n = Network::new("rand");
        let mut nets: Vec<_> = (0..4).map(|i| n.add_input(format!("x{i}"))).collect();
        for g in 0..6 {
            let kind = match rng.below(5) {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Xor,
                3 => GateKind::Nand,
                _ => GateKind::Nor,
            };
            let a = nets[rng.below(nets.len())];
            let b = nets[rng.below(nets.len())];
            let out = n.add_gate(kind, &[a, b], format!("g{g}")).unwrap();
            nets.push(out);
        }
        n.mark_output(nets[nets.len() - 1]);
        n.mark_output(nets[nets.len() - 2]);
        let graph = graph_of_network(&n);
        if graph.num_nodes() == 0 || graph.num_nodes() > 40 {
            continue;
        }
        let oct = min_semiperimeter(
            &graph,
            &OctMethodConfig {
                align: false,
                ..Default::default()
            },
        );
        let mip = mip_solve(
            &graph,
            &MipConfig {
                gamma: 1.0,
                align: false,
                time_limit: Duration::from_secs(30),
                exact_node_limit: 60,
                threads: 1,
            },
        );
        assert!(oct.optimal, "trial {trial}");
        if mip.optimal {
            assert_eq!(
                mip.labeling.stats().semiperimeter,
                graph.num_nodes() + oct.oct_size,
                "trial {trial}: objectives disagree"
            );
        }
    }
}

#[test]
fn semiperimeter_respects_theoretical_bounds() {
    for name in ["ctrl", "int2float", "cavlc", "dec"] {
        let b = bench_suite::by_name(name).unwrap();
        let network = b.network().unwrap();
        let graph = graph_of_network(&network);
        let r = min_semiperimeter(
            &graph,
            &OctMethodConfig {
                align: false,
                ..Default::default()
            },
        );
        let s = r.labeling.stats().semiperimeter;
        let n = graph.num_nodes();
        assert!(s >= n, "{name}: S = {s} below n = {n}");
        assert!(s <= 2 * n, "{name}: S = {s} above the trivial 2n");
        // The LP bound on the product graph transfers: S ≥ n + (LP − n)⁺.
        let product = flowc::graph::cartesian_with_k2(&graph.graph);
        let lp = lp_lower_bound(&product).ceil() as usize;
        assert!(s >= lp.max(n), "{name}: S = {s} violates the LP bound {lp}");
    }
}

#[test]
fn alignment_never_reduces_semiperimeter() {
    for name in ["ctrl", "int2float", "cavlc"] {
        let b = bench_suite::by_name(name).unwrap();
        let network = b.network().unwrap();
        let graph = graph_of_network(&network);
        let free = min_semiperimeter(
            &graph,
            &OctMethodConfig {
                align: false,
                ..Default::default()
            },
        );
        let aligned = min_semiperimeter(
            &graph,
            &OctMethodConfig {
                align: true,
                ..Default::default()
            },
        );
        assert!(
            aligned.labeling.stats().semiperimeter >= free.labeling.stats().semiperimeter,
            "{name}: alignment is a constraint, it cannot help"
        );
        assert!(aligned.labeling.is_aligned(&graph), "{name}");
    }
}

//! End-to-end runs over the sample circuit files in `testdata/`: parse,
//! synthesize, and verify each one — the exact path a CLI user takes.

use std::path::PathBuf;

use flowc::compact::{synthesize, Config};
use flowc::logic::{blif, pla, verilog, Network};
use flowc::xbar::verify::verify_functional;

fn testdata(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn synthesize_and_verify(network: &Network) {
    let r = synthesize(network, &Config::default()).unwrap();
    let report = verify_functional(&r.crossbar, network, 512).unwrap();
    assert!(
        report.is_valid(),
        "{}: {:?}",
        network.name(),
        report.mismatches
    );
}

#[test]
fn c17_verilog_parses_and_synthesizes() {
    let n = verilog::parse(&testdata("c17.v")).unwrap();
    assert_eq!(n.name(), "c17");
    assert_eq!(n.num_inputs(), 5);
    assert_eq!(n.num_outputs(), 2);
    // Known c17 vector: all-ones input gives N22=0 (N10=0? no: check by
    // simulation against the NAND equations directly).
    let eval = |v: [bool; 5]| n.simulate(&v).unwrap();
    for bits in 0u32..32 {
        let v = [
            bits & 1 != 0,
            bits & 2 != 0,
            bits & 4 != 0,
            bits & 8 != 0,
            bits & 16 != 0,
        ];
        let (n1, n2, n3, n6, n7) = (v[0], v[1], v[2], v[3], v[4]);
        let n10 = !(n1 && n3);
        let n11 = !(n3 && n6);
        let n16 = !(n2 && n11);
        let n19 = !(n11 && n7);
        assert_eq!(eval(v), vec![!(n10 && n16), !(n16 && n19)], "{bits:05b}");
    }
    synthesize_and_verify(&n);
}

#[test]
fn adder4_blif_parses_and_synthesizes() {
    let n = blif::parse(&testdata("adder4.blif")).unwrap();
    assert_eq!(n.num_inputs(), 9);
    assert_eq!(n.num_outputs(), 5);
    // Full arithmetic check.
    for a in 0u32..16 {
        for b in 0u32..16 {
            for cin in 0..2u32 {
                let mut v = Vec::new();
                for i in 0..4 {
                    v.push(a >> i & 1 == 1);
                    v.push(b >> i & 1 == 1);
                }
                v.push(cin == 1);
                let out = n.simulate(&v).unwrap();
                let got: u32 = (0..5).map(|i| (out[i] as u32) << i).sum();
                assert_eq!(got, a + b + cin, "{a}+{b}+{cin}");
            }
        }
    }
    synthesize_and_verify(&n);
}

#[test]
fn seg7_pla_parses_and_synthesizes() {
    let n = pla::parse(&testdata("seg7.pla")).unwrap();
    assert_eq!(n.num_inputs(), 4);
    assert_eq!(n.num_outputs(), 7);
    // Digit 8 lights every segment; digit 1 only b and c.
    let digit = |d: u32| -> Vec<bool> {
        let v: Vec<bool> = (0..4).map(|i| d >> i & 1 == 1).collect();
        n.simulate(&v).unwrap()
    };
    assert!(digit(8).iter().all(|&s| s));
    assert_eq!(
        digit(1),
        vec![false, true, true, false, false, false, false]
    );
    synthesize_and_verify(&n);
}

#[test]
fn sample_files_convert_between_formats() {
    let c17 = verilog::parse(&testdata("c17.v")).unwrap();
    let as_blif = blif::write(&c17);
    let back = blif::parse(&as_blif).unwrap();
    for bits in 0u32..32 {
        let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        assert_eq!(back.simulate(&v).unwrap(), c17.simulate(&v).unwrap());
    }
}

//! Failure-injection tests: the verification machinery must catch broken
//! designs, not just bless good ones. Each test damages a synthesized
//! crossbar in a specific way and checks that functional verification
//! reports the defect. The second half injects faults into the *solvers*
//! (exhausted budgets, panics) and checks that the synthesis supervisor
//! degrades to a valid design instead of aborting.

use std::time::{Duration, Instant};

use flowc::budget::Budget;
use flowc::compact::supervisor::{synthesize_with_budget, Rung, Trigger};
use flowc::compact::{synthesize, Config};
use flowc::conform::fixtures::{fig2_network, fig2_pair, two_output_network};
use flowc::logic::bench_suite;
use flowc::xbar::verify::verify_functional;
use flowc::xbar::{Crossbar, DeviceAssignment};

#[test]
fn every_stuck_open_literal_fault_is_caught_on_fig2() {
    // Every literal device in a minimal design is load-bearing: forcing it
    // permanently off must change the function.
    let (network, crossbar) = fig2_pair();
    let faults: Vec<(usize, usize)> = crossbar
        .programmed_devices()
        .filter(|(_, _, a)| a.is_literal())
        .map(|(r, c, _)| (r, c))
        .collect();
    assert!(!faults.is_empty());
    for (r, c) in faults {
        let mut broken = crossbar.clone();
        broken.set(r, c, DeviceAssignment::Off).unwrap();
        let report = verify_functional(&broken, &network, 64).unwrap();
        assert!(
            !report.is_valid(),
            "stuck-open at ({r},{c}) was not detected"
        );
    }
}

#[test]
fn stuck_closed_faults_are_caught_unless_logically_masked() {
    // Forcing a literal device permanently on creates spurious sneak paths.
    // Some such faults are logically masked — e.g. shorting the ¬a edge
    // into node c of the Fig. 2 BDD yields f ∨ c = f — so the check is:
    // each fault is either detected, or exhaustively proven equivalent
    // (which the verifier's clean pass over all 2³ assignments is).
    let (network, crossbar) = fig2_pair();
    let mut detected = 0usize;
    let mut masked = 0usize;
    for (r, c, a) in crossbar.programmed_devices().collect::<Vec<_>>() {
        if !a.is_literal() {
            continue;
        }
        let mut broken = crossbar.clone();
        broken.set(r, c, DeviceAssignment::On).unwrap();
        let report = verify_functional(&broken, &network, 64).unwrap();
        assert_eq!(report.checked, 8, "3 inputs are checked exhaustively");
        if report.is_valid() {
            masked += 1;
        } else {
            detected += 1;
        }
    }
    assert!(detected >= 3, "most stuck-closed faults must be visible");
    assert!(
        masked <= 2,
        "fig2 has at most the ¬a-into-c class of maskings"
    );
}

#[test]
fn vh_bridge_faults_are_caught_on_fig2() {
    // Breaking the always-on bridge of a VH node splits a wire in two.
    let (network, crossbar) = fig2_pair();
    let bridges: Vec<(usize, usize)> = crossbar
        .programmed_devices()
        .filter(|(_, _, a)| *a == DeviceAssignment::On)
        .map(|(r, c, _)| (r, c))
        .collect();
    assert!(!bridges.is_empty(), "the Fig. 2 design has a VH node");
    for (r, c) in bridges {
        let mut broken = crossbar.clone();
        broken.set(r, c, DeviceAssignment::Off).unwrap();
        let report = verify_functional(&broken, &network, 64).unwrap();
        assert!(
            !report.is_valid(),
            "broken bridge at ({r},{c}) not detected"
        );
    }
}

#[test]
fn negated_literal_faults_are_caught_on_ctrl() {
    // Flip the polarity of a sample of devices on a real benchmark.
    let b = bench_suite::by_name("ctrl").unwrap();
    let network = b.network().unwrap();
    let design = synthesize(&network, &Config::default()).unwrap();
    let literals: Vec<(usize, usize, DeviceAssignment)> = design
        .crossbar
        .programmed_devices()
        .filter(|(_, _, a)| a.is_literal())
        .collect();
    let mut caught = 0usize;
    let sample: Vec<_> = literals.iter().step_by(3).collect();
    for &&(r, c, a) in &sample {
        let DeviceAssignment::Literal { input, negated } = a else {
            unreachable!("filtered to literals");
        };
        let mut broken = design.crossbar.clone();
        broken
            .set(
                r,
                c,
                DeviceAssignment::Literal {
                    input,
                    negated: !negated,
                },
            )
            .unwrap();
        let report = verify_functional(&broken, &network, 128).unwrap();
        if !report.is_valid() {
            caught += 1;
        }
    }
    // Polarity flips must be overwhelmingly visible (a rare flip can be
    // logically masked, but not many).
    assert!(
        caught * 10 >= sample.len() * 9,
        "only {caught}/{} polarity faults detected",
        sample.len()
    );
}

#[test]
fn wrong_input_port_is_caught() {
    let (network, mut crossbar) = fig2_pair();
    // Drive an output row instead of the terminal row.
    let out_row = crossbar.outputs()[0].row;
    crossbar.set_input_row(out_row).unwrap();
    let report = verify_functional(&crossbar, &network, 64).unwrap();
    assert!(!report.is_valid());
}

#[test]
fn swapped_outputs_are_caught_on_multi_output_designs() {
    let n = two_output_network();
    let design = synthesize(&n, &Config::default()).unwrap();
    // Rebind the ports in swapped order on a fresh crossbar clone.
    let mut swapped = design.crossbar.clone();
    let rows: Vec<usize> = swapped.outputs().iter().map(|p| p.row).collect();
    // Crossbar has no port-removal API (ports are append-only), so rebuild.
    let mut rebuilt = Crossbar::new(swapped.rows(), swapped.cols(), swapped.num_inputs());
    for (r, c, dev) in swapped.programmed_devices() {
        rebuilt.set(r, c, dev).unwrap();
    }
    rebuilt.set_input_row(swapped.input_row().unwrap()).unwrap();
    rebuilt.add_output("f", rows[1]).unwrap();
    rebuilt.add_output("g", rows[0]).unwrap();
    swapped = rebuilt;
    let report = verify_functional(&swapped, &n, 16).unwrap();
    assert!(!report.is_valid(), "swapped ports must be detected");
}

// ---------------------------------------------------------------------------
// Supervisor fault injection: damaged budgets and panicking solvers.
// ---------------------------------------------------------------------------

#[test]
fn zero_deadline_yields_a_degraded_but_valid_crossbar() {
    let n = fig2_network();
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let r = synthesize_with_budget(&n, &Config::default(), &budget)
        .expect("an exhausted budget must not abort synthesis");
    let report = r.degradation.as_ref().unwrap();
    assert!(report.degraded, "{}", report.summary());
    assert!(report.exhausted.is_some());
    assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
}

#[test]
fn one_node_bdd_ceiling_is_lifted_and_synthesis_recovers() {
    let n = fig2_network();
    let budget = Budget::unlimited().with_max_bdd_nodes(1);
    let r = synthesize_with_budget(&n, &Config::default(), &budget)
        .expect("a tiny BDD ceiling must not abort synthesis");
    let report = r.degradation.as_ref().unwrap();
    assert!(report.bdd_budget_lifted, "{}", report.summary());
    assert!(report.degraded);
    assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
}

#[test]
fn injected_solver_panics_degrade_but_never_abort() {
    // FLOWC_CHAOS_PANIC makes the named supervisor stages panic on entry.
    // The env var is process-global: concurrent tests that synthesize may
    // degrade past their exact rung while it is set, which is harmless —
    // every rung still produces functionally valid designs.
    let n = fig2_network();
    std::env::set_var("FLOWC_CHAOS_PANIC", "exact-mip,anytime-mip");
    let outcome = std::panic::catch_unwind(|| {
        synthesize_with_budget(&n, &Config::default(), &Budget::unlimited())
    });
    std::env::remove_var("FLOWC_CHAOS_PANIC");
    let r = outcome
        .expect("the supervisor must isolate injected panics")
        .expect("degradation must produce a design");
    let report = r.degradation.as_ref().unwrap();
    assert_eq!(report.rung, Rung::HeuristicOct, "{}", report.summary());
    assert!(report.degraded);
    let panicked: Vec<Rung> = report
        .attempts
        .iter()
        .filter(|a| matches!(a.trigger, Some(Trigger::Panicked(_))))
        .map(|a| a.rung)
        .collect();
    assert_eq!(panicked, vec![Rung::ExactMip, Rung::AnytimeMip]);
    assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
}

#[test]
fn injected_bdd_panic_is_answered_by_an_unbudgeted_rebuild() {
    let n = fig2_network();
    std::env::set_var("FLOWC_CHAOS_PANIC", "bdd");
    let outcome = std::panic::catch_unwind(|| {
        synthesize_with_budget(&n, &Config::default(), &Budget::unlimited())
    });
    std::env::remove_var("FLOWC_CHAOS_PANIC");
    let r = outcome
        .expect("a BDD-stage panic must be isolated")
        .expect("the rebuild must recover");
    let report = r.degradation.as_ref().unwrap();
    assert!(report.bdd_budget_lifted, "{}", report.summary());
    assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
}

#[test]
fn cancellation_mid_flight_aborts_with_typed_error() {
    // Explicit cancellation is a stop order, not a resource ceiling: it
    // must abort with `CompactError::Cancelled` instead of degrading
    // into the budget-lift rebuild the deadline/node ceilings use.
    let n = fig2_network();
    let budget = Budget::unlimited();
    budget.cancel_handle().cancel();
    let err = synthesize_with_budget(&n, &Config::default(), &budget).unwrap_err();
    assert!(
        matches!(err, flowc::compact::CompactError::Cancelled),
        "{err}"
    );
}

#[test]
fn deadline_overrun_is_bounded_on_a_real_benchmark() {
    // The acceptance bar: the wall clock must not blow past the deadline
    // (10% plus a small constant for scheduling noise; the ladder's
    // fallback rungs are all sub-second on these sizes).
    let b = bench_suite::by_name("ctrl").unwrap();
    let network = b.network().unwrap();
    let deadline = Duration::from_millis(200);
    let budget = Budget::unlimited().with_deadline(deadline);
    let t0 = Instant::now();
    let r = synthesize_with_budget(&network, &Config::default(), &budget).unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < deadline.mul_f64(1.1) + Duration::from_millis(500),
        "synthesis took {elapsed:?} against a {deadline:?} deadline"
    );
    assert!(verify_functional(&r.crossbar, &network, 128)
        .unwrap()
        .is_valid());
}

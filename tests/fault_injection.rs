//! Failure-injection tests: the verification machinery must catch broken
//! designs, not just bless good ones. Each test damages a synthesized
//! crossbar in a specific way and checks that functional verification
//! reports the defect.

use flowc::compact::{synthesize, Config};
use flowc::logic::bench_suite;
use flowc::logic::{GateKind, Network};
use flowc::xbar::verify::verify_functional;
use flowc::xbar::{Crossbar, DeviceAssignment};

fn fig2_pair() -> (Network, Crossbar) {
    let mut n = Network::new("fig2");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
    let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
    n.mark_output(f);
    let design = synthesize(&n, &Config::default()).unwrap();
    (n, design.crossbar)
}

#[test]
fn every_stuck_open_literal_fault_is_caught_on_fig2() {
    // Every literal device in a minimal design is load-bearing: forcing it
    // permanently off must change the function.
    let (network, crossbar) = fig2_pair();
    let faults: Vec<(usize, usize)> = crossbar
        .programmed_devices()
        .filter(|(_, _, a)| a.is_literal())
        .map(|(r, c, _)| (r, c))
        .collect();
    assert!(!faults.is_empty());
    for (r, c) in faults {
        let mut broken = crossbar.clone();
        broken.set(r, c, DeviceAssignment::Off).unwrap();
        let report = verify_functional(&broken, &network, 64).unwrap();
        assert!(
            !report.is_valid(),
            "stuck-open at ({r},{c}) was not detected"
        );
    }
}

#[test]
fn stuck_closed_faults_are_caught_unless_logically_masked() {
    // Forcing a literal device permanently on creates spurious sneak paths.
    // Some such faults are logically masked — e.g. shorting the ¬a edge
    // into node c of the Fig. 2 BDD yields f ∨ c = f — so the check is:
    // each fault is either detected, or exhaustively proven equivalent
    // (which the verifier's clean pass over all 2³ assignments is).
    let (network, crossbar) = fig2_pair();
    let mut detected = 0usize;
    let mut masked = 0usize;
    for (r, c, a) in crossbar.programmed_devices().collect::<Vec<_>>() {
        if !a.is_literal() {
            continue;
        }
        let mut broken = crossbar.clone();
        broken.set(r, c, DeviceAssignment::On).unwrap();
        let report = verify_functional(&broken, &network, 64).unwrap();
        assert_eq!(report.checked, 8, "3 inputs are checked exhaustively");
        if report.is_valid() {
            masked += 1;
        } else {
            detected += 1;
        }
    }
    assert!(detected >= 3, "most stuck-closed faults must be visible");
    assert!(masked <= 2, "fig2 has at most the ¬a-into-c class of maskings");
}

#[test]
fn vh_bridge_faults_are_caught_on_fig2() {
    // Breaking the always-on bridge of a VH node splits a wire in two.
    let (network, crossbar) = fig2_pair();
    let bridges: Vec<(usize, usize)> = crossbar
        .programmed_devices()
        .filter(|(_, _, a)| *a == DeviceAssignment::On)
        .map(|(r, c, _)| (r, c))
        .collect();
    assert!(!bridges.is_empty(), "the Fig. 2 design has a VH node");
    for (r, c) in bridges {
        let mut broken = crossbar.clone();
        broken.set(r, c, DeviceAssignment::Off).unwrap();
        let report = verify_functional(&broken, &network, 64).unwrap();
        assert!(!report.is_valid(), "broken bridge at ({r},{c}) not detected");
    }
}

#[test]
fn negated_literal_faults_are_caught_on_ctrl() {
    // Flip the polarity of a sample of devices on a real benchmark.
    let b = bench_suite::by_name("ctrl").unwrap();
    let network = b.network().unwrap();
    let design = synthesize(&network, &Config::default()).unwrap();
    let literals: Vec<(usize, usize, DeviceAssignment)> = design
        .crossbar
        .programmed_devices()
        .filter(|(_, _, a)| a.is_literal())
        .collect();
    let mut caught = 0usize;
    let sample: Vec<_> = literals.iter().step_by(3).collect();
    for &&(r, c, a) in &sample {
        let DeviceAssignment::Literal { input, negated } = a else {
            unreachable!("filtered to literals");
        };
        let mut broken = design.crossbar.clone();
        broken
            .set(r, c, DeviceAssignment::Literal { input, negated: !negated })
            .unwrap();
        let report = verify_functional(&broken, &network, 128).unwrap();
        if !report.is_valid() {
            caught += 1;
        }
    }
    // Polarity flips must be overwhelmingly visible (a rare flip can be
    // logically masked, but not many).
    assert!(
        caught * 10 >= sample.len() * 9,
        "only {caught}/{} polarity faults detected",
        sample.len()
    );
}

#[test]
fn wrong_input_port_is_caught() {
    let (network, mut crossbar) = fig2_pair();
    // Drive an output row instead of the terminal row.
    let out_row = crossbar.outputs()[0].row;
    crossbar.set_input_row(out_row).unwrap();
    let report = verify_functional(&crossbar, &network, 64).unwrap();
    assert!(!report.is_valid());
}

#[test]
fn swapped_outputs_are_caught_on_multi_output_designs() {
    let mut n = Network::new("two");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
    let g = n.add_gate(GateKind::Or, &[a, b], "g").unwrap();
    n.mark_output(f);
    n.mark_output(g);
    let design = synthesize(&n, &Config::default()).unwrap();
    // Rebind the ports in swapped order on a fresh crossbar clone.
    let mut swapped = design.crossbar.clone();
    let rows: Vec<usize> = swapped.outputs().iter().map(|p| p.row).collect();
    // Crossbar has no port-removal API (ports are append-only), so rebuild.
    let mut rebuilt = Crossbar::new(swapped.rows(), swapped.cols(), swapped.num_inputs());
    for (r, c, dev) in swapped.programmed_devices() {
        rebuilt.set(r, c, dev).unwrap();
    }
    rebuilt.set_input_row(swapped.input_row().unwrap()).unwrap();
    rebuilt.add_output("f", rows[1]).unwrap();
    rebuilt.add_output("g", rows[0]).unwrap();
    swapped = rebuilt;
    let report = verify_functional(&swapped, &n, 16).unwrap();
    assert!(!report.is_valid(), "swapped ports must be detected");
}

//! Defect-tolerance properties, end to end: for *any* seeded defect map,
//! the repair ladder either ships a design that verifies with zero
//! mismatches on the defective array, or reports a typed
//! `RepairError::Irreparable` with its attempt log — it never panics and
//! never ships an unverified placement.

use flowc::compact::{
    repair_placement, repair_with_resynthesis, synthesize, Config, RepairConfig, RepairError,
    RepairStrategy,
};
use flowc::logic::{bench_suite, GateKind, Network};
use flowc::xbar::fault::{apply_defects, inject, DefectMap, DefectRates, Fault};
use flowc::xbar::verify::verify_functional;
use flowc::xbar::Crossbar;

fn synthesized(name: &str) -> (Network, Crossbar) {
    let b = bench_suite::by_name(name).expect("benchmark exists");
    let n = b.network().expect("benchmark builds");
    let design = synthesize(&n, &Config::default()).expect("synthesis succeeds");
    (n, design.crossbar)
}

/// The central property: a repaired design has zero mismatches under its
/// defect map, and irreparable outcomes are typed results, across a sweep
/// of seeds and densities.
#[test]
fn repaired_designs_verify_and_irreparable_is_typed() {
    let (network, design) = synthesized("ctrl");
    let cfg = RepairConfig {
        verify_samples: 128,
        ..RepairConfig::default()
    };
    let mut repaired_count = 0;
    let mut irreparable_count = 0;
    for seed in 0..12u64 {
        for &rate in &[0.005, 0.02, 0.08] {
            let map = inject(
                design.rows() + 1,
                design.cols() + 1,
                &DefectRates::uniform(rate),
                seed * 1000 + (rate * 1000.0) as u64,
            );
            match repair_placement(&network, &design, &map, &cfg) {
                Ok(repaired) => {
                    repaired_count += 1;
                    let faulty = apply_defects(&repaired.crossbar, &map).expect("dims match");
                    let report = verify_functional(&faulty, &network, 256).expect("evaluable");
                    assert!(
                        report.mismatches.is_empty(),
                        "shipped repair mismatches under its own defect map \
                         (seed {seed}, rate {rate}): {:?}",
                        repaired.report.summary()
                    );
                    assert!(!repaired.report.attempts.is_empty());
                    assert!(repaired.report.attempts.last().unwrap().success);
                }
                Err(RepairError::Irreparable { attempts, defects }) => {
                    irreparable_count += 1;
                    assert!(defects > 0, "an empty map is always repairable");
                    assert!(
                        attempts.iter().all(|a| !a.success),
                        "irreparable log may not contain a successful rung"
                    );
                }
                Err(other) => panic!("unexpected repair error: {other}"),
            }
        }
    }
    assert!(repaired_count > 0, "sweep exercised no successful repair");
    assert!(
        irreparable_count > 0,
        "sweep exercised no irreparable case — densities too low"
    );
}

/// CI smoke invariant: at a low defect density with two spare lines each
/// way, every seeded trial is repairable (100% post-repair yield).
#[test]
fn low_density_smoke_has_full_post_repair_yield() {
    let (network, design) = synthesized("ctrl");
    let cfg = RepairConfig {
        verify_samples: 128,
        ..RepairConfig::default()
    };
    for seed in 100..110u64 {
        let map = inject(
            design.rows() + 2,
            design.cols() + 2,
            &DefectRates::uniform(0.004),
            seed,
        );
        let repaired = repair_placement(&network, &design, &map, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed} must be repairable at 0.4%: {e}"));
        let faulty = apply_defects(&repaired.crossbar, &map).expect("dims match");
        assert!(verify_functional(&faulty, &network, 256)
            .expect("evaluable")
            .mismatches
            .is_empty());
    }
}

/// The resynthesis rung composes with the PR-1 supervisor: a fully dead
/// identity footprint forces later rungs, and the outcome is still either
/// a verified design or a typed error.
#[test]
fn resynthesis_rung_never_panics_and_verifies() {
    let mut n = Network::new("fig2");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
    let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
    n.mark_output(f);
    let config = Config::default();
    let design = synthesize(&n, &config).unwrap().crossbar;
    // Generous spares, but a fault on every cell of the original footprint.
    let mut map = DefectMap::new(design.rows() + 2, design.cols() + 2);
    for r in 0..design.rows() {
        for col in 0..design.cols() {
            map.add(Fault::StuckOff { row: r, col }).unwrap();
        }
    }
    let budget =
        flowc::budget::Budget::unlimited().with_deadline(std::time::Duration::from_secs(10));
    match repair_with_resynthesis(
        &n,
        &config,
        &design,
        &map,
        &RepairConfig::default(),
        &budget,
    ) {
        Ok(repaired) => {
            let faulty = apply_defects(&repaired.crossbar, &map).expect("dims match");
            assert!(verify_functional(&faulty, &n, 256)
                .expect("evaluable")
                .mismatches
                .is_empty());
            assert_ne!(repaired.report.strategy, RepairStrategy::Benign);
        }
        Err(RepairError::Irreparable { attempts, .. }) => {
            assert!(attempts.len() > 1, "the whole ladder must have been tried");
        }
        Err(other) => panic!("unexpected repair error: {other}"),
    }
}

/// Defect-map files round-trip, and malformed files fail with a
/// line-numbered parse error (the CLI `--defect-map` path).
#[test]
fn defect_map_text_round_trip_and_errors() {
    let mut map = DefectMap::new(6, 5);
    map.add(Fault::StuckOff { row: 1, col: 2 }).unwrap();
    map.add(Fault::StuckOn { row: 0, col: 4 }).unwrap();
    map.add(Fault::OpenWordline { row: 5 }).unwrap();
    let text = map.to_string();
    let parsed = DefectMap::parse(&text).expect("own rendering parses");
    assert_eq!(parsed.to_string(), text);
    let err = DefectMap::parse("dims 4 4\nstuck-off 9 0\n").unwrap_err();
    assert_eq!(err.line, 2, "error points at the offending line");
}

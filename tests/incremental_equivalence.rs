//! Equivalence suite for the permutation-repair relabeling path
//! (`compact::incremental`), mirroring `labeling_equivalence.rs`: on
//! small (≤8-gate) conform-seeded networks, every single-edit kind must
//! leave the incremental session indistinguishable from cold synthesis —
//! same optimality verdict, same semiperimeter, same weighted objective
//! as the exhaustive 3^n enumeration on graphs small enough to enumerate
//! — and the repaired labeling itself must always be a valid, aligned
//! incumbent.

use flowc::compact::{
    repair_labeling, synthesize, BddGraph, Config, EditResolution, EditSession, EditSessionConfig,
    EditableNetlist, NetlistEdit,
};
use flowc::conform::{EditStreamGen, NetworkGen, Rng};
use flowc::logic::{GateKind, Network};
use flowc::xbar::verify::verify_functional;

/// Small conform-seeded base networks (≤ 8 gates).
fn small_shape() -> NetworkGen {
    NetworkGen {
        num_inputs: 4,
        max_gates: 8,
        max_outputs: 3,
    }
}

/// Exhaustive weighted-objective optimum over all 3^n VH-labelings of
/// `graph` that satisfy edge feasibility (Eq. 2) *and* alignment (Eq. 7)
/// — the full constraint set the pipeline solves under.
fn enumerate_aligned_optimum(graph: &BddGraph, gamma: f64) -> f64 {
    let n = graph.num_nodes();
    assert!(n <= 12, "enumeration is 3^n");
    let mut aligned_nodes: Vec<usize> = graph.roots.iter().flatten().copied().collect();
    if let Some(t) = graph.terminal {
        aligned_nodes.push(t);
    }
    let mut best = f64::INFINITY;
    let mut state = vec![0u8; n]; // 0 = V, 1 = H, 2 = VH
    loop {
        let has_v = |i: usize| state[i] != 1;
        let has_h = |i: usize| state[i] != 0;
        let feasible = graph
            .graph
            .edges()
            .iter()
            .all(|&(i, j)| (has_v(i) && has_h(j)) || (has_h(i) && has_v(j)))
            && aligned_nodes.iter().all(|&r| has_h(r));
        if feasible {
            let rows = (0..n).filter(|&i| has_h(i)).count();
            let cols = (0..n).filter(|&i| has_v(i)).count();
            let obj = gamma * (rows + cols) as f64 + (1.0 - gamma) * rows.max(cols) as f64;
            best = best.min(obj);
        }
        let mut k = 0;
        while k < n {
            state[k] += 1;
            if state[k] < 3 {
                break;
            }
            state[k] = 0;
            k += 1;
        }
        if k == n {
            return best;
        }
    }
}

/// One representative edit of each kind against `netlist`, or `None`
/// when the state can't support the kind (e.g. nothing removable).
fn single_edits_of_every_kind(netlist: &EditableNetlist) -> Vec<NetlistEdit> {
    let mut edits = Vec::new();
    let first_input = netlist.inputs()[0].clone();
    // AddGate (live enough to exist; dead by construction).
    edits.push(NetlistEdit::AddGate {
        name: "probe".into(),
        kind: GateKind::Nand,
        inputs: vec![first_input.clone(), first_input.clone()],
    });
    // RemoveGate: first gate nothing references.
    if let Some(gate) = netlist.gates().iter().find(|g| {
        !netlist.outputs().contains(&g.name)
            && !netlist.gates().iter().any(|h| h.inputs.contains(&g.name))
    }) {
        edits.push(NetlistEdit::RemoveGate {
            name: gate.name.clone(),
        });
    }
    // RewireInput: last gate's pin 0 onto the first input (never a cycle).
    if let Some(gate) = netlist.gates().last() {
        edits.push(NetlistEdit::RewireInput {
            gate: gate.name.clone(),
            pin: 0,
            source: first_input.clone(),
        });
    }
    // RetargetOutput / AddOutput / DropOutput.
    edits.push(NetlistEdit::RetargetOutput {
        index: 0,
        target: first_input.clone(),
    });
    edits.push(NetlistEdit::AddOutput {
        target: first_input,
    });
    if netlist.outputs().len() > 1 {
        edits.push(NetlistEdit::DropOutput { index: 0 });
    }
    edits
}

/// Every single-edit kind, on several conform-seeded ≤8-gate networks:
/// the incremental result after the edit must match a cold synthesis of
/// the edited netlist in optimality, semiperimeter, and function.
#[test]
fn every_single_edit_kind_matches_cold_synthesis() {
    let shape = small_shape();
    let config = Config::default();
    for seed in 0..6u64 {
        let base = shape.generate(&mut Rng::new(seed));
        let netlist = EditableNetlist::from_network(&base);
        for edit in single_edits_of_every_kind(&netlist) {
            let mut session = EditSession::new(&base, EditSessionConfig::default()).unwrap();
            let outcome = session
                .apply(&edit)
                .unwrap_or_else(|e| panic!("seed {seed} `{edit}`: {e}"));

            let mut shadow = netlist.clone();
            shadow.apply(&edit).unwrap();
            let edited = shadow.materialize().unwrap();
            let cold = synthesize(&edited, &config).unwrap();

            assert_eq!(
                outcome.result.optimal, cold.optimal,
                "seed {seed} `{edit}`: optimality diverged"
            );
            if cold.optimal {
                assert_eq!(
                    outcome.result.stats.semiperimeter, cold.stats.semiperimeter,
                    "seed {seed} `{edit}`: incremental S={} vs cold S={}",
                    outcome.result.stats.semiperimeter, cold.stats.semiperimeter
                );
            }
            let report = verify_functional(&outcome.result.crossbar, &edited, 256).unwrap();
            assert!(
                report.mismatches.is_empty(),
                "seed {seed} `{edit}`: {} functional mismatches",
                report.mismatches.len()
            );
        }
    }
}

/// On graphs small enough to enumerate, the incremental result after an
/// edit achieves the exhaustive 3^n optimum — not merely cold-solver
/// agreement (mirrors `conform_seeded_labelings_match_exhaustive_enumeration`).
#[test]
fn incremental_results_achieve_the_exhaustive_optimum() {
    let shape = NetworkGen {
        num_inputs: 3,
        max_gates: 5,
        max_outputs: 2,
    };
    let gamma = 0.5;
    let config = Config::gamma(gamma);
    let mut enumerated = 0usize;
    for seed in 0..8u64 {
        let base = shape.generate(&mut Rng::new(seed));
        let netlist = EditableNetlist::from_network(&base);
        for edit in single_edits_of_every_kind(&netlist) {
            let mut session = EditSession::new(
                &base,
                EditSessionConfig {
                    synthesis: config.clone(),
                    ..EditSessionConfig::default()
                },
            )
            .unwrap();
            let outcome = match session.apply(&edit) {
                Ok(o) => o,
                Err(e) => panic!("seed {seed} `{edit}`: {e}"),
            };
            if !outcome.result.optimal || outcome.result.graph_nodes > 12 {
                continue; // enumeration infeasible; covered by the test above
            }
            let mut shadow = netlist.clone();
            shadow.apply(&edit).unwrap();
            let cold = synthesize(&shadow.materialize().unwrap(), &config).unwrap();
            // Rebuild the graph the solver saw via a cold pipeline run;
            // enumerate its aligned optimum and compare objectives.
            let graph = BddGraph::from_bdds(&flowc::bdd::build_sbdd(
                &shadow.materialize().unwrap(),
                None,
            ));
            let want = enumerate_aligned_optimum(&graph, gamma);
            let got = outcome.result.labeling.stats().objective(gamma);
            assert!(
                (got - want).abs() < 1e-6,
                "seed {seed} `{edit}`: incremental objective {got} vs exhaustive {want} \
                 (cold S={})",
                cold.stats.semiperimeter
            );
            enumerated += 1;
        }
    }
    assert!(enumerated > 0, "no case was small enough to enumerate");
}

/// The repair transfer itself: across random edit pairs, the repaired
/// labeling is always a valid, aligned incumbent for the new graph, and
/// repairing a graph onto itself is the identity transfer.
#[test]
fn repaired_labelings_are_always_valid_aligned_incumbents() {
    let gen = EditStreamGen {
        shape: small_shape(),
        edits: 4,
    };
    let config = Config::default();
    for seed in 0..6u64 {
        let case = gen.generate(&mut Rng::new(seed));
        let mut netlist = EditableNetlist::from_network(&case.base);
        let mut previous: Option<(BddGraph, flowc::compact::Labeling)> = None;
        for edit in &case.edits {
            if netlist.apply(edit).is_err() {
                continue;
            }
            let network = netlist.materialize().unwrap();
            let result = synthesize(&network, &config).unwrap();
            let graph = BddGraph::from_bdds(&flowc::bdd::build_sbdd(&network, None));
            if let Some((old_graph, old_labels)) = &previous {
                let (repaired, matched) = repair_labeling(old_graph, old_labels, &graph);
                assert!(
                    repaired.is_valid(&graph),
                    "seed {seed} `{edit}`: repaired labeling infeasible"
                );
                assert!(
                    repaired.is_aligned(&graph),
                    "seed {seed} `{edit}`: repaired labeling misaligned"
                );
                assert!(matched <= graph.num_nodes());
            }
            // Self-repair is the identity.
            let (same, matched) = repair_labeling(&graph, &result.labeling, &graph);
            assert_eq!(
                matched,
                graph.num_nodes(),
                "seed {seed}: self-match partial"
            );
            assert!(same.is_valid(&graph));
            previous = Some((graph, result.labeling.clone()));
        }
    }
}

/// A dead-logic edit stream never leaves the cache-hit rung, and a
/// live-edit stream keeps the session equal to cold synthesis at every
/// step while resolving most edits without cold solves.
#[test]
fn streams_resolve_incrementally_and_stay_equivalent() {
    let mut n = Network::new("pair");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
    let g = n.add_gate(GateKind::Xor, &[b, c], "g").unwrap();
    n.mark_output(f);
    n.mark_output(g);

    let mut session = EditSession::new(&n, EditSessionConfig::default()).unwrap();
    // Dead-logic churn: every edit is a Hit.
    for (i, edit) in [
        NetlistEdit::AddGate {
            name: "d0".into(),
            kind: GateKind::Or,
            inputs: vec!["a".into(), "c".into()],
        },
        NetlistEdit::AddGate {
            name: "d1".into(),
            kind: GateKind::Not,
            inputs: vec!["d0".into()],
        },
        NetlistEdit::RemoveGate { name: "d1".into() },
        NetlistEdit::RemoveGate { name: "d0".into() },
    ]
    .iter()
    .enumerate()
    {
        let out = session.apply(edit).unwrap();
        assert_eq!(
            out.resolution,
            EditResolution::Hit,
            "dead edit {i} left the hit rung"
        );
    }
    // A live edit, then its revert: solve + hit, still cold-equal.
    let out = session
        .apply(&NetlistEdit::RewireInput {
            gate: "f".into(),
            pin: 1,
            source: "c".into(),
        })
        .unwrap();
    assert_ne!(out.resolution, EditResolution::Hit);
    let cold = synthesize(
        &session.netlist().materialize().unwrap(),
        &Config::default(),
    )
    .unwrap();
    assert_eq!(out.result.stats.semiperimeter, cold.stats.semiperimeter);
    let out = session
        .apply(&NetlistEdit::RewireInput {
            gate: "f".into(),
            pin: 1,
            source: "b".into(),
        })
        .unwrap();
    assert_eq!(out.resolution, EditResolution::Hit, "revert missed cache");

    let stats = session.stats();
    assert_eq!(stats.edits, 6);
    assert!(
        stats.resolved_incrementally() * 2 > stats.edits,
        "most edits must resolve without cold solves: {stats:?}"
    );
}

//! Acceptance tests for the shared synthesis `Session` (DESIGN.md §11):
//! artifact-cache correctness across a γ sweep, batch-vs-sequential
//! determinism, and cached-vs-cold equivalence across seeds.

use std::sync::Arc;
use std::time::Duration;

use flowc::compact::{
    gamma_sweep_tasks, synthesize, synthesize_batch, synthesize_in, BatchConfig, Config, Session,
    SessionConfig, StageKind,
};
use flowc::logic::{bench_suite, GateKind, Network};

const GAMMAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn fig2_network() -> Network {
    let mut n = Network::new("fig2");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
    let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
    n.mark_output(f);
    n
}

/// The headline reuse property: a 5-point γ sweep through one session
/// performs exactly one BDD build and one graph extraction; every other
/// point is served from the cache.
#[test]
fn five_point_gamma_sweep_builds_the_bdd_once() {
    let network = fig2_network();
    let session = Session::default();
    for &gamma in &GAMMAS {
        synthesize_in(&session, &network, &Config::gamma(gamma)).unwrap();
    }
    let trace = session.trace();
    assert_eq!(trace.builds(StageKind::BddBuild), 1, "{}", trace.summary());
    assert_eq!(trace.hits(StageKind::BddBuild), GAMMAS.len() - 1);
    assert_eq!(trace.builds(StageKind::GraphExtract), 1);
    assert_eq!(trace.hits(StageKind::GraphExtract), GAMMAS.len() - 1);
    // Every point still ran its own labeling and mapping.
    assert_eq!(trace.builds(StageKind::VhLabel), GAMMAS.len());
    assert_eq!(trace.builds(StageKind::Map), GAMMAS.len());
    let cache = session.cache_stats();
    // One BDD artifact, one graph artifact, plus one cached labeling per γ
    // point (every point closes optimally on fig2, so each is stored).
    assert_eq!(cache.misses, 2 + GAMMAS.len(), "{}", trace.summary());
    assert_eq!(cache.hits, 2 * (GAMMAS.len() - 1));
}

/// Two γ points in the same session synthesize from byte-identical shared
/// artifacts, and each final crossbar matches what a cold (fresh-session)
/// synthesis of the same configuration produces — across seeds.
#[test]
fn cached_results_match_cold_synthesis_across_seeds() {
    let network = fig2_network();
    for seed in [0u64, 1, 0xDEAD_BEEF] {
        let session = Session::new(SessionConfig {
            seed,
            ..SessionConfig::default()
        });
        for &gamma in &[0.0, 1.0] {
            let cached = synthesize_in(&session, &network, &Config::gamma(gamma)).unwrap();
            let cold = synthesize(&network, &Config::gamma(gamma)).unwrap();
            assert_eq!(
                cached.crossbar, cold.crossbar,
                "seed {seed} γ={gamma}: cached and cold designs diverge"
            );
            assert_eq!(cached.stats, cold.stats);
        }
        // Both γ points drew from the same cached artifacts: the BDD and
        // graph keys recorded in the trace are identical across points.
        let trace = session.trace();
        let bdd_keys: Vec<_> = trace
            .records
            .iter()
            .filter(|r| r.kind == StageKind::BddBuild)
            .map(|r| r.key.expect("BDD stage is cacheable"))
            .collect();
        assert_eq!(bdd_keys.len(), 2);
        assert_eq!(bdd_keys[0], bdd_keys[1]);
    }
}

/// `synthesize_batch` at 4 threads returns results in task order and each
/// design is identical to the sequential (single-session, in-order) run.
#[test]
fn batch_at_four_threads_matches_sequential_order() {
    let b = bench_suite::by_name("ctrl").unwrap();
    let network = Arc::new(b.network().unwrap());
    let tasks = gamma_sweep_tasks(&network, &GAMMAS, Duration::from_secs(10));

    let sequential_session = Session::default();
    let sequential: Vec<_> = tasks
        .iter()
        .map(|t| synthesize_in(&sequential_session, &network, &t.config).unwrap())
        .collect();

    let batch_session = Session::default();
    let batched = synthesize_batch(
        &batch_session,
        &tasks,
        &BatchConfig {
            threads: 4,
            per_task_budget: None,
        },
    );
    assert_eq!(batched.len(), tasks.len());
    for (i, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
        let bat = bat
            .as_ref()
            .unwrap_or_else(|e| panic!("batched task {} ({}) failed: {e}", i, tasks[i].label));
        assert_eq!(
            seq.crossbar, bat.crossbar,
            "task {} ({}): batched design differs from sequential",
            i, tasks[i].label
        );
    }
    // Parallelism must not cost reuse: the batch still builds once.
    let trace = batch_session.trace();
    assert_eq!(trace.builds(StageKind::BddBuild), 1, "{}", trace.summary());
    assert_eq!(trace.builds(StageKind::GraphExtract), 1);
}

/// The cached sweep spends strictly less wall time in the BDD-build and
/// graph-extract stages than the cold sweep — the claim behind the
/// `results/BENCH_synthesis.json` artifact. Stage wall (not end-to-end
/// wall) is compared so the assertion is robust on loaded CI machines.
#[test]
fn cached_sweep_spends_less_stage_time_than_cold() {
    let b = bench_suite::by_name("int2float").unwrap();
    let network = b.network().unwrap();

    let mut cold_shared_stages = Duration::ZERO;
    for &gamma in &GAMMAS {
        let cold = Session::default();
        synthesize_in(&cold, &network, &Config::gamma(gamma)).unwrap();
        let t = cold.trace();
        cold_shared_stages +=
            t.total_wall(StageKind::BddBuild) + t.total_wall(StageKind::GraphExtract);
    }

    let cached = Session::default();
    for &gamma in &GAMMAS {
        synthesize_in(&cached, &network, &Config::gamma(gamma)).unwrap();
    }
    let t = cached.trace();
    let cached_shared_stages =
        t.total_wall(StageKind::BddBuild) + t.total_wall(StageKind::GraphExtract);

    assert!(
        cached_shared_stages < cold_shared_stages,
        "cached sweep must be cheaper on shared stages: cached {:?} vs cold {:?}",
        cached_shared_stages,
        cold_shared_stages
    );
}

// ---------------------------------------------------------------------------
// Cone-of-influence cache keys (compact::incremental)
// ---------------------------------------------------------------------------

/// A no-op edit — removing a gate and re-inserting it identically — must
/// leave the combined cone key byte-stable, so the incremental cache
/// can't silently over-invalidate on edits that change nothing.
#[test]
fn cone_key_is_stable_across_a_noop_edit() {
    use flowc::compact::{EditableNetlist, NetlistEdit};

    let mut nl = EditableNetlist::from_network(&fig2_network());
    let key = nl.combined_cone_key();
    let cones = nl.output_cone_hashes();

    // Add a dead gate, then re-insert an identical copy under another
    // name: neither touches any output cone.
    nl.apply(&NetlistEdit::AddGate {
        name: "spare".into(),
        kind: GateKind::Xor,
        inputs: vec!["a".into(), "c".into()],
    })
    .unwrap();
    assert_eq!(nl.combined_cone_key(), key, "dead insert changed the key");
    nl.apply(&NetlistEdit::RemoveGate {
        name: "spare".into(),
    })
    .unwrap();
    nl.apply(&NetlistEdit::AddGate {
        name: "spare2".into(),
        kind: GateKind::Xor,
        inputs: vec!["a".into(), "c".into()],
    })
    .unwrap();
    assert_eq!(
        nl.combined_cone_key(),
        key,
        "identical re-insert changed the key"
    );
    assert_eq!(nl.output_cone_hashes(), cones);

    // Re-inserting a *live* cone identically is also a no-op: retarget
    // the output at an identical duplicate of its driver.
    nl.apply(&NetlistEdit::AddGate {
        name: "f2".into(),
        kind: GateKind::Or,
        inputs: vec!["ab".into(), "c".into()],
    })
    .unwrap();
    nl.apply(&NetlistEdit::RetargetOutput {
        index: 0,
        target: "f2".into(),
    })
    .unwrap();
    assert_eq!(
        nl.combined_cone_key(),
        key,
        "identical duplicate cone changed the key"
    );
}

/// A live edit moves only the affected output's cone hash; untouched
/// outputs keep theirs, so invalidation is exactly per-cone.
#[test]
fn live_edits_invalidate_exactly_the_affected_cones() {
    use flowc::compact::{EditableNetlist, NetlistEdit};

    let mut n = Network::new("two-cones");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
    let g = n.add_gate(GateKind::Or, &[b, c], "g").unwrap();
    n.mark_output(f);
    n.mark_output(g);

    let mut nl = EditableNetlist::from_network(&n);
    let cones = nl.output_cone_hashes();
    nl.apply(&NetlistEdit::RewireInput {
        gate: "g".into(),
        pin: 1,
        source: "a".into(),
    })
    .unwrap();
    let after = nl.output_cone_hashes();
    assert_eq!(after[0], cones[0], "untouched cone was invalidated");
    assert_ne!(after[1], cones[1], "edited cone kept its hash");
    assert_ne!(nl.combined_cone_key(), {
        let fresh = EditableNetlist::from_network(&n);
        fresh.combined_cone_key()
    });
}

/// The `EditSession` resolves a no-op edit as a cache hit — no new BDD
/// build, no new solve — proving the cone key actually gates the
/// artifact pipeline.
#[test]
fn edit_session_serves_noop_edits_from_cache() {
    use flowc::compact::{EditResolution, EditSession, EditSessionConfig, NetlistEdit};

    let mut session = EditSession::new(&fig2_network(), EditSessionConfig::default()).unwrap();
    let builds_before = session.session().trace().builds(StageKind::BddBuild);
    let out = session
        .apply(&NetlistEdit::AddGate {
            name: "spare".into(),
            kind: GateKind::Nand,
            inputs: vec!["a".into(), "b".into()],
        })
        .unwrap();
    assert_eq!(out.resolution, EditResolution::Hit);
    assert_eq!(
        session.session().trace().builds(StageKind::BddBuild),
        builds_before,
        "a no-op edit rebuilt the BDD"
    );
    assert_eq!(session.stats().hits, 1);
    assert_eq!(session.stats().cold_solves, 0);
}

//! Backend-matrix integration tests: every [`Backend`] variant maps the
//! same fixed circuits through the one enum-dispatched `MappingBackend`
//! trait, each design sample-verifies against simulation, and the
//! partitioned backend's tile schedule is differentially checked against
//! the monolithic COMPACT design. The CI backend-matrix smoke job runs
//! exactly this suite.

use std::time::Duration;

use flowc::baselines::{
    partitioned_with_tile, Backend, BackendError, DesignArtifact, MappingBackend, SynthesisCtx,
};
use flowc::budget::Budget;
use flowc::compact::constrained::{synthesize_constrained, ConstraintError, SizeLimits};
use flowc::conform::oracle::{differential_check, BackendOracle, DiffConfig, Oracle};
use flowc::logic::{bench_suite, blif, Network};

/// A circuit small enough to fit a 16x16 tile monolithically.
fn small_circuit() -> Network {
    let text = std::fs::read_to_string("testdata/adder4.blif").expect("testdata/adder4.blif");
    blif::parse(&text).expect("adder4 parses")
}

/// A circuit whose joint SBDD cannot fit a 16x16 tile: the 8-input
/// 256-output decoder needs hundreds of rows monolithically.
fn large_circuit() -> Network {
    bench_suite::by_name("dec")
        .expect("dec benchmark")
        .network()
        .expect("dec builds")
}

fn ctx() -> SynthesisCtx<'static> {
    SynthesisCtx::default().with_budget(Budget::unlimited().with_deadline(Duration::from_secs(60)))
}

/// Every backend maps the small circuit and sample-verifies.
#[test]
fn every_backend_maps_the_small_circuit() {
    let network = small_circuit();
    for name in Backend::NAMES {
        let backend = Backend::parse(name).expect("listed names parse");
        let design = backend
            .synthesize(&network, &ctx())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(design.backend, *name);
        assert!(design.metrics.rows > 0, "{name}: empty design");
        backend
            .verify(&design, &network, 256)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Every backend maps the oversized circuit too; the partitioned backend
/// must actually split it, with per-tile bounds respected and transfer
/// accounting present.
#[test]
fn every_backend_maps_the_circuit_that_overflows_a_tile() {
    let network = large_circuit();
    for name in Backend::NAMES {
        let backend = match Backend::parse(name).expect("listed names parse") {
            Backend::Partitioned(_) => partitioned_with_tile(16, 16),
            other => other,
        };
        let design = backend
            .synthesize(&network, &ctx())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        backend
            .verify(&design, &network, 128)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if let DesignArtifact::Tiled(schedule) = &design.artifact {
            assert!(
                schedule.tiles.len() > 1,
                "dec must not fit one 16x16 tile ({} tiles)",
                schedule.tiles.len()
            );
            for tile in &schedule.tiles {
                assert!(tile.crossbar.rows() <= 16 && tile.crossbar.cols() <= 16);
            }
            assert_eq!(design.metrics.tiles, schedule.tiles.len());
            assert!(
                design.metrics.transfer_ops > 0,
                "shared inputs re-broadcast"
            );
        }
    }
}

/// Partitioned-vs-monolithic equivalence through the conformance
/// machinery: the tile schedule and the single-crossbar COMPACT design
/// are differential oracles over the same network, and must agree on
/// every checked assignment (exhaustively here — 9 inputs).
#[test]
fn partitioned_agrees_with_monolithic_compact_via_conform() {
    let network = small_circuit();
    let oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(BackendOracle::new(Backend::default())),
        // 16x16: the smallest power-of-two tile that holds adder4's
        // widest output cone (one cone alone needs S >= 21).
        Box::new(BackendOracle::new(partitioned_with_tile(16, 16))),
    ];
    let cfg = DiffConfig {
        max_exhaustive_inputs: 9,
        symbolic: false,
        ..DiffConfig::default()
    };
    differential_check(&network, &oracles, &cfg)
        .unwrap_or_else(|d| panic!("partitioned disagrees with compact: {d}"));
}

/// Constrained synthesis failures are typed, not panics: a provably
/// impossible tile reports `Infeasible` with the semiperimeter bound, a
/// merely-unreached tile reports `NotFound` with the best shape seen.
#[test]
fn constrained_synthesis_failures_are_typed() {
    let network = small_circuit();
    let limits = SizeLimits {
        max_rows: 1,
        max_cols: 1,
    };
    match synthesize_constrained(&network, limits, Duration::from_secs(5)) {
        Err(ConstraintError::Infeasible {
            semiperimeter_lower_bound,
            limits: reported,
        }) => {
            assert!(semiperimeter_lower_bound > 2);
            assert_eq!(reported, limits);
        }
        other => panic!("1x1 must be provably infeasible, got {other:?}"),
    }
}

/// The same typed infeasibility surfaces through the backend trait: a
/// partitioned backend whose tile cannot hold even one output cone
/// answers `BackendError::Infeasible`, and the feasible/infeasible edge
/// is sharp (the same network synthesizes on a tile one notch larger).
#[test]
fn partitioned_infeasibility_is_typed_through_the_trait() {
    let network = small_circuit();
    let backend = partitioned_with_tile(2, 2);
    match backend.synthesize(&network, &ctx()) {
        Err(BackendError::Infeasible(_)) => {}
        other => panic!("2x2 tiles must be typed-infeasible, got {other:?}"),
    }
    partitioned_with_tile(16, 16)
        .synthesize(&network, &ctx())
        .expect("16x16 tiles fit adder4 cones");
}

//! Concurrency acceptance tests for the shared synthesis `Session`:
//! the artifact cache stays bounded (FIFO eviction) under many writer
//! threads, and concurrent identical jobs dedupe through the
//! single-flight claims — one build, every sibling a cache hit.

use std::sync::{Arc, Barrier};

use flowc::compact::pipeline::VhStrategy;
use flowc::compact::{synthesize_in, Config, Session, SessionConfig, StageKind};
use flowc::logic::{GateKind, Network};
use flowc::xbar::verify::verify_functional;

/// The heuristic strategy: these tests pin cache semantics, not labeling
/// quality, and the solver-free path keeps them fast under contention.
fn heuristic_config() -> Config {
    Config {
        strategy: VhStrategy::Heuristic { gamma: 0.5 },
        ..Config::default()
    }
}

/// A parity chain over `width` inputs — a cheap family of structurally
/// distinct networks (distinct artifact keys) for cache-pressure tests.
fn parity_chain(width: usize) -> Network {
    let mut n = Network::new(format!("parity{width}"));
    let inputs: Vec<_> = (0..width).map(|i| n.add_input(format!("x{i}"))).collect();
    let mut acc = inputs[0];
    for (i, &x) in inputs.iter().enumerate().skip(1) {
        acc = n
            .add_gate(GateKind::Xor, &[acc, x], format!("p{i}"))
            .unwrap();
    }
    n.mark_output(acc);
    n
}

/// 16 structurally distinct networks pushed through a capacity-4 session
/// by 8 threads: the cache never exceeds its bound, the eviction count is
/// exactly (inserts − capacity) per artifact kind regardless of thread
/// interleaving, and every design stays functionally valid.
#[test]
fn eviction_stays_bounded_fifo_under_many_threads() {
    const CAPACITY: usize = 4;
    const NETWORKS: usize = 16;
    const THREADS: usize = 8;

    let session = Session::new(SessionConfig {
        cache_capacity: CAPACITY,
        ..SessionConfig::default()
    });
    let networks: Vec<Network> = (2..2 + NETWORKS).map(parity_chain).collect();
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = &session;
            let networks = &networks;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for network in networks.iter().skip(t).step_by(THREADS) {
                    let r = synthesize_in(session, network, &heuristic_config()).unwrap();
                    let report = verify_functional(&r.crossbar, network, 64).unwrap();
                    assert!(report.is_valid(), "{}", network.name());
                }
            });
        }
    });

    let stats = session.cache_stats();
    // Each of the 16 distinct networks built one BDD, one graph, and one
    // (deterministic, hence cacheable) heuristic labeling; a capacity-4
    // cache per artifact kind retains 4 of each and evicted the other 12
    // of each, whatever order the threads ran in.
    assert_eq!(stats.misses, 3 * NETWORKS);
    assert_eq!(stats.hits, 0, "all keys are distinct");
    assert_eq!(stats.entries, 3 * CAPACITY);
    assert_eq!(stats.evicted, 3 * (NETWORKS - CAPACITY));

    let trace = session.trace();
    assert_eq!(trace.builds(StageKind::BddBuild), NETWORKS);
    assert_eq!(trace.builds(StageKind::GraphExtract), NETWORKS);
}

/// The single-flight pin: two (and more) concurrent identical jobs
/// released simultaneously share one BDD build and one graph extraction —
/// a single `builds`, all sibling executions `hits`. Before single-flight
/// claims this raced: both threads could miss the cache probe and build
/// the same artifact twice.
#[test]
fn concurrent_identical_jobs_share_one_build() {
    const THREADS: usize = 8;

    let network = Arc::new(parity_chain(6));
    let session = Session::default();
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let session = &session;
            let network = Arc::clone(&network);
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let r = synthesize_in(session, &network, &heuristic_config()).unwrap();
                assert!(verify_functional(&r.crossbar, &network, 64)
                    .unwrap()
                    .is_valid());
            });
        }
    });

    let trace = session.trace();
    assert_eq!(trace.runs(StageKind::BddBuild), THREADS);
    assert_eq!(trace.builds(StageKind::BddBuild), 1, "{}", trace.summary());
    assert_eq!(trace.hits(StageKind::BddBuild), THREADS - 1);
    assert_eq!(trace.builds(StageKind::GraphExtract), 1);
    assert_eq!(trace.hits(StageKind::GraphExtract), THREADS - 1);
    assert_eq!(trace.builds(StageKind::VhLabel), 1, "{}", trace.summary());
    assert_eq!(trace.hits(StageKind::VhLabel), THREADS - 1);
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 3, "one BDD + one graph + one labeling");
    assert_eq!(stats.hits, 3 * (THREADS - 1));
}

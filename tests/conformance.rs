//! End-to-end conformance: every shipped oracle must agree on seeded
//! random cases, the shrinker must produce minimal still-failing networks,
//! and the counterexample corpus must round-trip through BLIF. This is the
//! in-tree slice of what `conform-fuzz` runs for longer in CI.

use std::time::Duration;

use flowc::budget::Budget;
use flowc::conform::{
    differential_check, shipped_oracles, shrink_network, DiffConfig, Harness, NetworkGen, Rng,
};
use flowc::logic::{blif, GateKind, Network};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn harness(name: &str) -> Harness {
    Harness::new(name).with_corpus(corpus_dir())
}

#[test]
fn all_shipped_oracles_agree_on_seeded_random_networks() {
    // The in-tree smoke slice of the CI `conform-fuzz` acceptance run:
    // sim, SBDD, every crossbar strategy and γ, and all three baselines
    // must produce identical truth tables on every generated case.
    let oracles = shipped_oracles(&[0.0, 1.0]);
    assert!(oracles.len() >= 8, "the shipped matrix must stay wide");
    harness("all_shipped_oracles_agree_on_seeded_random_networks")
        .with_cases(24)
        .check_network(&NetworkGen::new(4, 9), |network, _rng| {
            let outcome = differential_check(network, &oracles, &DiffConfig::default())
                .unwrap_or_else(|d| panic!("{d}"));
            assert_eq!(outcome.oracles, oracles.len());
            assert!(outcome.assignments > 0);
        });
}

#[test]
fn differential_check_reports_a_disagreement_with_provenance() {
    // A deliberately wrong oracle: claims every output is constant false.
    struct ZeroOracle;
    impl flowc::conform::Oracle for ZeroOracle {
        fn name(&self) -> String {
            "zero".into()
        }
        fn table(
            &self,
            network: &Network,
            assignments: &[Vec<bool>],
        ) -> Result<Vec<Vec<bool>>, String> {
            Ok(assignments
                .iter()
                .map(|_| vec![false; network.num_outputs()])
                .collect())
        }
    }
    let mut n = Network::new("or2");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let f = n.add_gate(GateKind::Or, &[a, b], "f").unwrap();
    n.mark_output(f);
    let mut oracles = shipped_oracles(&[0.5]);
    oracles.push(Box::new(ZeroOracle));
    let cfg = DiffConfig {
        symbolic: false,
        ..DiffConfig::default()
    };
    let d = differential_check(&n, &oracles, &cfg).expect_err("zero oracle must be flagged");
    assert_eq!(d.left, "sim", "the reference oracle is always the left arm");
    assert_eq!(d.right, "zero");
    assert_ne!(d.left_output, d.right_output);
    // The recorded assignment must actually witness the disagreement.
    let sim = n.simulate(&d.assignment).unwrap();
    assert_eq!(sim, d.left_output);
    assert!(d.to_string().contains("zero"), "{d}");
}

#[test]
fn shrinking_a_single_gate_failure_reaches_one_gate() {
    // Failure condition: "some output depends on an Xor gate". The minimal
    // network satisfying it has exactly one gate; greedy delta debugging
    // must find it no matter how much irrelevant structure surrounds it.
    let mut rng = Rng::new(0xD1FF_0000_0000_0001);
    let gen = NetworkGen::new(4, 10);
    let mut shrunk_sizes = Vec::new();
    for _ in 0..32 {
        let network = gen.generate(&mut rng);
        let has_xor = |n: &Network| n.gates().iter().any(|g| g.kind == GateKind::Xor);
        if !has_xor(&network) {
            continue;
        }
        let result = shrink_network(&network, &mut |c| has_xor(c), &Budget::unlimited());
        assert!(has_xor(&result.network), "shrunk case must still fail");
        assert!(result.network.num_gates() <= network.num_gates());
        shrunk_sizes.push(result.network.num_gates());
    }
    assert!(!shrunk_sizes.is_empty(), "the seed must produce Xor cases");
    assert!(
        shrunk_sizes.iter().all(|&g| g == 1),
        "an Xor-presence failure always shrinks to one gate, got {shrunk_sizes:?}"
    );
}

#[test]
fn shrinking_respects_its_deadline() {
    let mut rng = Rng::new(0xD1FF_0000_0000_0002);
    let network = NetworkGen::new(5, 12).generate(&mut rng);
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let result = shrink_network(&network, &mut |_| true, &budget);
    assert!(result.budget_exhausted);
    assert_eq!(
        result.steps, 0,
        "a zero deadline must not accept any candidate"
    );
}

#[test]
fn shrunk_counterexamples_round_trip_through_blif() {
    // The corpus persists shrunk cases as BLIF; a written-then-parsed
    // network must compute the same function, or replays are meaningless.
    let mut rng = Rng::new(0xD1FF_0000_0000_0003);
    let gen = NetworkGen::new(4, 8);
    for _ in 0..16 {
        let network = gen.generate(&mut rng);
        let result = shrink_network(
            &network,
            &mut |c| c.num_gates() >= 1,
            &Budget::unlimited().with_deadline(Duration::from_secs(10)),
        );
        let text = blif::write(&result.network);
        let reparsed = blif::parse(&text).expect("shrunk output must be valid BLIF");
        assert_eq!(reparsed.num_inputs(), result.network.num_inputs());
        let k = reparsed.num_inputs();
        for bits in 0..1usize << k {
            let a: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                reparsed.simulate(&a).unwrap(),
                result.network.simulate(&a).unwrap(),
                "BLIF round-trip changed the function"
            );
        }
    }
}

#[test]
fn persisted_seed_corpus_is_replayed_before_fresh_cases() {
    // A harness pointed at a corpus directory containing a persisted seed
    // must replay that exact seed first, even with zero fresh cases.
    let dir = std::env::temp_dir().join(format!(
        "flowc-conformance-replay-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = flowc::conform::Corpus::new(&dir);
    corpus.persist_seed("persisted_seed_corpus_is_replayed_before_fresh_cases", 42);
    let seen = std::cell::Cell::new(0usize);
    Harness::new("persisted_seed_corpus_is_replayed_before_fresh_cases")
        .with_corpus(&dir)
        .with_cases(0)
        .check_network(&NetworkGen::default(), |network, _rng| {
            // Regenerating from the persisted seed must be deterministic:
            // the replayed network equals a fresh generation from seed 42.
            let mut replay = Rng::new(42);
            let expected = NetworkGen::default().generate(&mut replay);
            assert_eq!(blif::write(network), blif::write(&expected));
            seen.set(seen.get() + 1);
        });
    assert_eq!(seen.get(), 1, "exactly the one persisted seed runs");
    let _ = std::fs::remove_dir_all(&dir);
}

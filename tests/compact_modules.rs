//! Outside-in coverage for the `compact` modules the other suites only
//! exercise indirectly: the γ-sweep Pareto machinery (`compact::pareto`),
//! the orientation balancer (`compact::balance`), and the symbolic verifier
//! (`compact::formal`) — each cross-checked against the conformance
//! harness's generators and the truth-table oracle.

use std::collections::HashSet;
use std::time::Duration;

use flowc::bdd::build_sbdd;
use flowc::compact::balance::{balanced_labeling, boxed_labeling};
use flowc::compact::pareto::{gamma_sweep, non_dominated, SweepPoint};
use flowc::compact::{synthesize, verify_symbolic, BddGraph, Config};
use flowc::conform::{Harness, NetworkGen};
use flowc::graph::{odd_cycle_transversal, OctConfig};
use flowc::xbar::DeviceAssignment;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn harness(name: &str) -> Harness {
    Harness::new(name).with_corpus(corpus_dir())
}

// ---------------------------------------------------------------------------
// compact::pareto
// ---------------------------------------------------------------------------

#[test]
fn gamma_sweep_points_are_mutually_non_dominated_after_filtering() {
    harness("gamma_sweep_points_are_mutually_non_dominated_after_filtering")
        .with_cases(8)
        .check_network(&NetworkGen::new(4, 8), |network, _rng| {
            let pts = gamma_sweep(network, 4, Duration::from_secs(5));
            assert!(!pts.is_empty(), "sweep must produce points");
            let nd = non_dominated(&pts);
            assert!(!nd.is_empty());
            // Every kept shape occurs in the input.
            for p in &nd {
                assert!(
                    pts.iter().any(|q| q.rows == p.rows && q.cols == p.cols),
                    "frontier invented shape ({}, {})",
                    p.rows,
                    p.cols
                );
            }
            // Pairwise non-domination, no duplicate shapes, sorted by rows.
            for (i, p) in nd.iter().enumerate() {
                for (j, q) in nd.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    assert!(
                        !(q.rows <= p.rows
                            && q.cols <= p.cols
                            && (q.rows < p.rows || q.cols < p.cols)),
                        "({}, {}) dominates kept ({}, {})",
                        q.rows,
                        q.cols,
                        p.rows,
                        p.cols
                    );
                    assert!(
                        !(p.rows == q.rows && p.cols == q.cols),
                        "duplicate shape survived"
                    );
                }
            }
            for w in nd.windows(2) {
                assert!(w[0].rows < w[1].rows, "frontier not sorted by rows");
            }
        });
}

#[test]
fn non_dominated_is_idempotent_and_order_insensitive() {
    let pts = vec![
        SweepPoint {
            gamma: 0.0,
            rows: 7,
            cols: 3,
        },
        SweepPoint {
            gamma: 0.2,
            rows: 3,
            cols: 7,
        },
        SweepPoint {
            gamma: 0.4,
            rows: 5,
            cols: 5,
        },
        SweepPoint {
            gamma: 0.6,
            rows: 8,
            cols: 8,
        },
        SweepPoint {
            gamma: 0.8,
            rows: 7,
            cols: 3,
        },
    ];
    let nd = non_dominated(&pts);
    let again = non_dominated(&nd);
    let shapes =
        |v: &[SweepPoint]| -> Vec<(usize, usize)> { v.iter().map(|p| (p.rows, p.cols)).collect() };
    assert_eq!(shapes(&nd), shapes(&again), "filter must be idempotent");
    let mut reversed = pts.clone();
    reversed.reverse();
    assert_eq!(
        shapes(&nd),
        shapes(&non_dominated(&reversed)),
        "result must not depend on presentation order"
    );
    assert_eq!(shapes(&nd), vec![(3, 7), (5, 5), (7, 3)]);
}

// ---------------------------------------------------------------------------
// compact::balance
// ---------------------------------------------------------------------------

#[test]
fn balanced_labelings_are_valid_aligned_and_balanced() {
    harness("balanced_labelings_are_valid_aligned_and_balanced")
        .with_cases(16)
        .check_network(&NetworkGen::new(5, 10), |network, _rng| {
            let graph = BddGraph::from_bdds(&build_sbdd(network, None));
            if graph.num_nodes() == 0 {
                return;
            }
            let oct = odd_cycle_transversal(
                &graph.graph,
                &OctConfig {
                    time_limit: Duration::from_secs(5),
                    threads: 1,
                },
            );
            let vh: HashSet<usize> = oct.transversal.iter().copied().collect();
            let labeling = balanced_labeling(&graph, &vh, true);
            assert!(labeling.is_valid(&graph), "labeling must cover every edge");
            assert!(labeling.is_aligned(&graph), "align=true must align");
            let stats = labeling.stats();
            assert_eq!(stats.semiperimeter, stats.rows + stats.cols);
            // Balancing minimizes D over component orientations; it can
            // never exceed the trivial bound where every node is a row.
            assert!(stats.max_dimension <= graph.num_nodes() + stats.num_vh);
            // VH assignments at least cover the transversal (alignment may
            // upgrade more).
            assert!(stats.num_vh >= vh.len());
        });
}

#[test]
fn boxed_labeling_fits_the_box_whenever_the_balanced_one_does() {
    harness("boxed_labeling_fits_the_box_whenever_the_balanced_one_does")
        .with_cases(16)
        .check_network(&NetworkGen::new(5, 10), |network, _rng| {
            let graph = BddGraph::from_bdds(&build_sbdd(network, None));
            if graph.num_nodes() == 0 {
                return;
            }
            let oct = odd_cycle_transversal(
                &graph.graph,
                &OctConfig {
                    time_limit: Duration::from_secs(5),
                    threads: 1,
                },
            );
            let vh: HashSet<usize> = oct.transversal.iter().copied().collect();
            let balanced = balanced_labeling(&graph, &vh, true);
            let s = balanced.stats();
            // A box exactly as large as the balanced shape must be satisfiable.
            let boxed = boxed_labeling(&graph, &vh, true, s.rows, s.cols);
            assert!(boxed.is_valid(&graph));
            assert!(boxed.is_aligned(&graph));
            let b = boxed.stats();
            assert!(
                b.rows <= s.rows && b.cols <= s.cols,
                "boxed ({}, {}) must fit the feasible box ({}, {})",
                b.rows,
                b.cols,
                s.rows,
                s.cols
            );
            // Boxing constrains orientation, never the transversal: S can
            // only grow through alignment upgrades, not shrink.
            assert!(b.semiperimeter >= graph.num_nodes() + vh.len());
        });
}

// ---------------------------------------------------------------------------
// compact::formal
// ---------------------------------------------------------------------------

#[test]
fn symbolic_verification_agrees_with_the_truth_table_oracle() {
    harness("symbolic_verification_agrees_with_the_truth_table_oracle")
        .with_cases(12)
        .check_network(&NetworkGen::new(4, 8), |network, _rng| {
            let design = synthesize(network, &Config::default()).expect("synthesis succeeds");
            let report = verify_symbolic(&design.crossbar, network);
            // The truth-table verdict over all 2^k assignments.
            let k = network.num_inputs();
            let table_equivalent = (0..1usize << k).all(|bits| {
                let a: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                network.simulate(&a).unwrap() == design.crossbar.evaluate(&a).unwrap()
            });
            assert_eq!(
                report.equivalent, table_equivalent,
                "symbolic and exhaustive-table verdicts disagree"
            );
            assert!(report.equivalent, "synthesis must produce valid designs");
            assert!(report.iterations >= 1);
        });
}

#[test]
fn symbolic_counterexamples_are_real_on_damaged_designs() {
    harness("symbolic_counterexamples_are_real_on_damaged_designs")
        .with_cases(12)
        .check_network(&NetworkGen::new(4, 8), |network, _rng| {
            let design = synthesize(network, &Config::default()).expect("synthesis succeeds");
            // Stuck-open the first literal device.
            let Some((r, c, _)) = design
                .crossbar
                .programmed_devices()
                .find(|(_, _, a)| a.is_literal())
            else {
                return; // constant designs carry no literals to break
            };
            let mut broken = design.crossbar.clone();
            broken.set(r, c, DeviceAssignment::Off).unwrap();
            let report = verify_symbolic(&broken, network);
            if report.equivalent {
                // The fault is logically masked; the truth table must agree.
                let k = network.num_inputs();
                for bits in 0..1usize << k {
                    let a: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                    assert_eq!(
                        network.simulate(&a).unwrap(),
                        broken.evaluate(&a).unwrap(),
                        "symbolic blessed a fault the table rejects"
                    );
                }
            } else {
                // Every reported counterexample must actually separate the
                // damaged crossbar from the specification.
                let witness = report
                    .first_counterexample()
                    .expect("inequivalence must come with a witness");
                assert_ne!(
                    network.simulate(witness).unwrap(),
                    broken.evaluate(witness).unwrap(),
                    "counterexample does not separate spec from damaged design"
                );
            }
        });
}

//! Cross-format integration: benchmark circuits survive round-trips through
//! every supported interchange format (BLIF, PLA, structural Verilog) with
//! their semantics — and therefore their synthesized crossbars — intact.

use flowc::bdd::build_sbdd;
use flowc::conform::Rng;
use flowc::logic::{bench_suite, blif, pla, verilog, Network};

fn random_assignments(n: usize, count: usize) -> Vec<Vec<bool>> {
    let mut rng = Rng::new(0xF0F0_1234_5678_9ABC ^ (n as u64));
    (0..count)
        .map(|_| (0..n).map(|_| rng.coin()).collect())
        .collect()
}

fn assert_equivalent(a: &Network, b: &Network, samples: usize) {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    for assignment in random_assignments(a.num_inputs(), samples) {
        assert_eq!(
            a.simulate(&assignment).unwrap(),
            b.simulate(&assignment).unwrap(),
            "mismatch on {assignment:?}"
        );
    }
}

#[test]
fn blif_roundtrip_on_benchmarks() {
    for name in ["ctrl", "int2float", "cavlc", "c432", "router"] {
        let n = bench_suite::by_name(name).unwrap().network().unwrap();
        let text = blif::write(&n);
        let back = blif::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_equivalent(&n, &back, 100);
    }
}

#[test]
fn verilog_roundtrip_on_benchmarks() {
    for name in ["ctrl", "int2float", "cavlc", "priority"] {
        let n = bench_suite::by_name(name).unwrap().network().unwrap();
        let text = verilog::write(&n);
        let back = verilog::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_equivalent(&n, &back, 100);
    }
}

#[test]
fn pla_roundtrip_on_small_benchmarks() {
    // PLA writing enumerates minterms: keep to narrow-input circuits.
    for name in ["ctrl", "int2float", "cavlc"] {
        let n = bench_suite::by_name(name).unwrap().network().unwrap();
        let text = pla::write(&n).unwrap();
        let back = pla::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_equivalent(&n, &back, 100);
    }
}

#[test]
fn chained_conversion_preserves_bdd_size_reasonably() {
    // BLIF → Verilog → BLIF: identical function, hence identical SBDD (the
    // SBDD is canonical for a fixed order; the round trip preserves input
    // order).
    let n = bench_suite::by_name("ctrl").unwrap().network().unwrap();
    let v = verilog::write(&n);
    let n2 = verilog::parse(&v).unwrap();
    let b = blif::write(&n2);
    let n3 = blif::parse(&b).unwrap();
    assert_equivalent(&n, &n3, 128);
    let s1 = build_sbdd(&n, None).shared_size();
    let s3 = build_sbdd(&n3, None).shared_size();
    assert_eq!(s1, s3, "canonical SBDD must survive the round trip");
}

#[test]
fn synthesized_design_is_format_independent() {
    use flowc::compact::{synthesize, Config};
    let n = bench_suite::by_name("int2float")
        .unwrap()
        .network()
        .unwrap();
    let via_verilog = verilog::parse(&verilog::write(&n)).unwrap();
    let d1 = synthesize(&n, &Config::gamma(1.0)).unwrap();
    let d2 = synthesize(&via_verilog, &Config::gamma(1.0)).unwrap();
    // Same function + same variable order ⇒ same BDD graph ⇒ same minimal
    // semiperimeter.
    assert_eq!(d1.graph_nodes, d2.graph_nodes);
    assert_eq!(d1.stats.semiperimeter, d2.stats.semiperimeter);
}

//! Cross-crate integration tests: the full COMPACT flow from circuit
//! formats through BDDs, labeling, mapping, and both evaluation models,
//! checked against the paper's structural claims.

use std::time::Duration;

use flowc::baselines::magic::{map_magic, MagicConfig};
use flowc::baselines::robdd_diagonal::{compact_per_output, staircase_per_output};
use flowc::baselines::staircase::staircase_map;
use flowc::bdd::build_sbdd;
use flowc::compact::pipeline::{synthesize, Config, VhStrategy};
use flowc::compact::BddGraph;
use flowc::logic::bench_suite;
use flowc::xbar::metrics::CrossbarMetrics;
use flowc::xbar::verify::verify_functional;

/// The benchmark subset small enough for fast integration runs.
const FAST: &[&str] = &["ctrl", "int2float", "cavlc", "dec", "c432", "priority"];

fn quick_config(gamma: f64) -> Config {
    Config {
        strategy: VhStrategy::Weighted {
            gamma,
            time_limit: Duration::from_secs(5),
            exact_node_limit: 60,
        },
        align: true,
        var_order: None,
        label_threads: 1,
    }
}

#[test]
fn compact_designs_are_valid_on_fast_benchmarks() {
    for name in FAST {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let r = synthesize(&n, &quick_config(0.5)).unwrap();
        let report = verify_functional(&r.crossbar, &n, 300).unwrap();
        assert!(report.is_valid(), "{name}: {:?}", report.mismatches);
    }
}

#[test]
fn staircase_baseline_is_valid_on_fast_benchmarks() {
    for name in FAST {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let names: Vec<String> = n
            .outputs()
            .iter()
            .map(|&o| n.net_name(o).to_string())
            .collect();
        let x = staircase_map(&g, &names);
        let report = verify_functional(&x, &n, 300).unwrap();
        assert!(report.is_valid(), "{name}");
    }
}

#[test]
fn compact_beats_staircase_on_every_metric() {
    // The paper's Table IV shape: COMPACT reduces S, D, and area against
    // the [16] baseline on every benchmark.
    for name in FAST {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let ours = synthesize(&n, &quick_config(0.5)).unwrap();
        let base = staircase_per_output(&n);
        let bm = CrossbarMetrics::of(&base.crossbar);
        assert!(
            ours.stats.semiperimeter < bm.semiperimeter,
            "{name}: S {} !< {}",
            ours.stats.semiperimeter,
            bm.semiperimeter
        );
        assert!(
            ours.stats.max_dimension < bm.max_dimension,
            "{name}: D {} !< {}",
            ours.stats.max_dimension,
            bm.max_dimension
        );
        assert!(ours.metrics.area < bm.area, "{name}: area");
        assert!(ours.metrics.delay_steps < bm.delay_steps, "{name}: delay");
    }
}

#[test]
fn semiperimeter_coefficient_matches_paper_shape() {
    // Paper: S ≈ 1.11·n for COMPACT vs ≈ 1.9·n for the baseline. Allow a
    // generous band: COMPACT < 1.4n, baseline = 2n exactly by construction.
    for name in FAST {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let ours = synthesize(&n, &quick_config(0.5)).unwrap();
        let coeff = ours.stats.semiperimeter as f64 / ours.graph_nodes as f64;
        assert!(
            coeff < 1.4,
            "{name}: S/n = {coeff:.3} is too far from the paper's ≈1.11"
        );
        assert!(coeff >= 1.0, "{name}: S/n below the n lower bound");
    }
}

#[test]
fn sbdd_flow_never_worse_than_robdd_flow() {
    for name in ["ctrl", "dec", "int2float"] {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let shared = synthesize(&n, &quick_config(0.5)).unwrap();
        let separate = compact_per_output(&n, &quick_config(0.5)).unwrap();
        let sm = CrossbarMetrics::of(&separate.crossbar);
        assert!(shared.graph_nodes <= separate.merged_nodes, "{name}: nodes");
        assert!(
            shared.stats.semiperimeter <= sm.semiperimeter,
            "{name}: S {} > {}",
            shared.stats.semiperimeter,
            sm.semiperimeter
        );
        // The merged design stays functionally valid too.
        let report = verify_functional(&separate.crossbar, &n, 200).unwrap();
        assert!(report.is_valid(), "{name}");
    }
}

#[test]
fn magic_baseline_is_slower_on_epfl_control() {
    // Figure 13 shape: CONTRA-style delay far exceeds COMPACT's on the
    // control circuits.
    for name in ["ctrl", "int2float", "cavlc"] {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let ours = synthesize(&n, &quick_config(0.5)).unwrap();
        let magic = map_magic(&n, &MagicConfig::default());
        assert!(
            magic.delay_steps > ours.metrics.delay_steps,
            "{name}: magic {} vs compact {}",
            magic.delay_steps,
            ours.metrics.delay_steps
        );
    }
}

#[test]
fn blif_source_flows_through_the_whole_pipeline() {
    let blif = "\
.model priority4
.inputs r0 r1 r2 r3
.outputs g0 g1 any
.names r0 g0
1 1
.names r0 r1 g1
01 1
.names r0 r1 r2 r3 any
1--- 1
-1-- 1
--1- 1
---1 1
.end
";
    let n = flowc::logic::blif::parse(blif).unwrap();
    let r = synthesize(&n, &Config::default()).unwrap();
    let report = verify_functional(&r.crossbar, &n, 16).unwrap();
    assert!(report.is_valid());
    assert_eq!(
        r.crossbar.evaluate(&[false, true, false, false]).unwrap(),
        vec![false, true, true]
    );
}

#[test]
fn pla_source_flows_through_the_whole_pipeline() {
    let pla = "\
.i 3
.o 2
.ilb x y z
.ob f g
.p 3
11- 10
--1 01
111 11
.e
";
    let n = flowc::logic::pla::parse(pla).unwrap();
    let r = synthesize(&n, &Config::default()).unwrap();
    let report = verify_functional(&r.crossbar, &n, 8).unwrap();
    assert!(report.is_valid());
}

#[test]
fn gamma_extremes_trade_s_for_d() {
    // γ = 1 minimizes S; γ = 0 never has larger D than the γ = 1 design.
    let b = bench_suite::by_name("int2float").unwrap();
    let n = b.network().unwrap();
    let min_s = synthesize(&n, &quick_config(1.0)).unwrap();
    let min_d = synthesize(&n, &quick_config(0.0)).unwrap();
    assert!(min_s.stats.semiperimeter <= min_d.stats.semiperimeter);
    assert!(min_d.stats.max_dimension <= min_s.stats.max_dimension);
}

#[test]
fn alignment_constraints_hold_on_every_fast_benchmark() {
    for name in FAST {
        let b = bench_suite::by_name(name).unwrap();
        let n = b.network().unwrap();
        let r = synthesize(&n, &quick_config(0.5)).unwrap();
        // Outputs on wordlines, input on the bottom wordline.
        assert_eq!(
            r.crossbar.input_row(),
            Some(r.crossbar.rows() - 1),
            "{name}: input must be the bottom-most wordline"
        );
        assert_eq!(r.crossbar.outputs().len(), n.num_outputs(), "{name}");
    }
}

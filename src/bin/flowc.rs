//! `flowc` — command-line front end for the COMPACT synthesis flow.
//!
//! ```text
//! flowc list
//! flowc synth <circuit.{blif,pla,v}> [options]
//! flowc bench <name> [options]
//! flowc convert <in.{blif,pla,v}> <out.{blif,pla,v}>
//! flowc remote <submit|status|result|cancel|metrics> [args] [options]
//! flowc help
//!
//! options:
//!   --backend <name>      mapping backend: compact (default), staircase,
//!                         robdd-diagonal, magic-nor, or partitioned
//!   --tile-rows <n>       tile bounds for `--backend partitioned`
//!   --tile-cols <n>       (default 64 x 64)
//!   --tile-backend <name> backend mapping each tile (default compact)
//!   --gamma <0..1>        trade-off weight (default 0.5)
//!   --gamma-sweep <n>     synthesize n evenly spaced γ points through one
//!                         shared session (the BDD and graph are built
//!                         once) and print each design's shape plus the
//!                         per-stage trace and cache statistics
//!   --strategy <weighted|min-s|heuristic|staircase>
//!   --label-threads <n>   worker threads for the labeling branch & bound
//!                         (default 1; the optimum is identical at any
//!                         thread count)
//!   --edit-stream <file>  after the initial synthesis, apply a netlist
//!                         edit script (one edit per line, `#` comments)
//!                         through one incremental edit session, printing
//!                         each edit's resolution (hit / repaired /
//!                         warm-started / cold) and the final design
//!   --time-limit <secs>   solver budget (default 30)
//!   --deadline <secs>     hard wall-clock budget for the whole synthesis;
//!                         on exhaustion a degraded (but valid) design is
//!                         returned and the exit code is 2
//!   --max-bdd-nodes <n>   BDD node ceiling; exceeding it degrades too
//!   --no-align            drop the Eq. 7 alignment constraints
//!   --render              print the device matrix (small designs)
//!   --svg <file>          write an SVG rendering of the design
//!   --validate <n>        check n assignments against simulation
//!   --defect-map <file>   repair the design against a defect map file
//!   --defect-rate <p>     inject random defects at per-cell rate p and
//!                         repair (mutually exclusive with --defect-map)
//!   --seed <n>            defect-injection seed (default 1)
//!   --spare-rows <n>      spare wordlines for --defect-rate arrays
//!   --spare-cols <n>      spare bitlines for --defect-rate arrays
//! ```
//!
//! With defects, the exit code distinguishes outcomes: 0 when all defects
//! were benign, 2 when the design needed repair (a repaired, verified
//! design was produced), 1 when the array is irreparable.
//!
//! `flowc remote` is the client side of `flowc-serve`: it submits
//! circuits to a running service, polls status, fetches results, cancels
//! jobs, and scrapes `/metrics` (see `flowc help`).

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use flowc::baselines::{Backend, DesignArtifact, MappingBackend, SynthesisCtx};
use flowc::budget::Budget;
use flowc::compact::pipeline::{Config, VhStrategy};
use flowc::compact::supervisor::synthesize_with_budget;
use flowc::compact::{repair_with_resynthesis, RepairConfig, RepairError, RepairStrategy};
use flowc::logic::{blif, pla, verilog, Network};
use flowc::xbar::fault::{inject, DefectMap, DefectRates};
use flowc::xbar::verify::verify_functional;

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let parsed = match ext {
        "blif" => blif::parse(&text),
        "pla" => pla::parse(&text),
        "v" | "verilog" => verilog::parse(&text),
        other => {
            return Err(format!(
                "unknown circuit extension `.{other}` (use .blif/.pla/.v)"
            ))
        }
    };
    parsed.map_err(|e| format!("{path}: {e}"))
}

fn save(network: &Network, path: &str) -> Result<(), String> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let text = match ext {
        "blif" => blif::write(network),
        "pla" => pla::write(network).map_err(|e| e.to_string())?,
        "v" | "verilog" => verilog::write(network),
        other => return Err(format!("unknown output extension `.{other}`")),
    };
    flowc_report::write_atomic(Path::new(path), &text).map_err(|e| format!("{path}: {e}"))
}

struct Options {
    gamma: f64,
    gamma_sweep: Option<usize>,
    strategy: String,
    time_limit: Duration,
    align: bool,
    render: bool,
    validate: Option<usize>,
    svg: Option<String>,
    deadline: Option<Duration>,
    max_bdd_nodes: Option<usize>,
    defect_map: Option<String>,
    defect_rate: Option<f64>,
    seed: u64,
    spare_rows: usize,
    spare_cols: usize,
    label_threads: usize,
    edit_stream: Option<String>,
    backend: String,
    tile_rows: Option<usize>,
    tile_cols: Option<usize>,
    tile_backend: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options {
            gamma: 0.5,
            gamma_sweep: None,
            strategy: "weighted".to_string(),
            time_limit: Duration::from_secs(30),
            align: true,
            render: false,
            validate: None,
            svg: None,
            deadline: None,
            max_bdd_nodes: None,
            defect_map: None,
            defect_rate: None,
            seed: 1,
            spare_rows: 0,
            spare_cols: 0,
            label_threads: 1,
            edit_stream: None,
            backend: "compact".to_string(),
            tile_rows: None,
            tile_cols: None,
            tile_backend: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--gamma" => {
                    opts.gamma = value("--gamma")?
                        .parse::<f64>()
                        .map_err(|e| format!("--gamma: {e}"))?;
                    if !(0.0..=1.0).contains(&opts.gamma) {
                        return Err("--gamma must be within [0, 1]".into());
                    }
                }
                "--gamma-sweep" => {
                    let steps = value("--gamma-sweep")?
                        .parse::<usize>()
                        .map_err(|e| format!("--gamma-sweep: {e}"))?;
                    if steps < 2 {
                        return Err("--gamma-sweep needs at least 2 points".into());
                    }
                    opts.gamma_sweep = Some(steps);
                }
                "--strategy" => opts.strategy = value("--strategy")?,
                "--time-limit" => {
                    opts.time_limit = Duration::from_secs(
                        value("--time-limit")?
                            .parse::<u64>()
                            .map_err(|e| format!("--time-limit: {e}"))?,
                    )
                }
                "--deadline" => {
                    let secs = value("--deadline")?
                        .parse::<f64>()
                        .map_err(|e| format!("--deadline: {e}"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err("--deadline must be a non-negative number of seconds".into());
                    }
                    opts.deadline = Some(Duration::from_secs_f64(secs));
                }
                "--max-bdd-nodes" => {
                    opts.max_bdd_nodes = Some(
                        value("--max-bdd-nodes")?
                            .parse::<usize>()
                            .map_err(|e| format!("--max-bdd-nodes: {e}"))?,
                    )
                }
                "--no-align" => opts.align = false,
                "--svg" => opts.svg = Some(value("--svg")?),
                "--render" => opts.render = true,
                "--validate" => {
                    opts.validate = Some(
                        value("--validate")?
                            .parse::<usize>()
                            .map_err(|e| format!("--validate: {e}"))?,
                    )
                }
                "--defect-map" => opts.defect_map = Some(value("--defect-map")?),
                "--defect-rate" => {
                    let rate = value("--defect-rate")?
                        .parse::<f64>()
                        .map_err(|e| format!("--defect-rate: {e}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err("--defect-rate must be within [0, 1]".into());
                    }
                    opts.defect_rate = Some(rate);
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse::<u64>()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--spare-rows" => {
                    opts.spare_rows = value("--spare-rows")?
                        .parse::<usize>()
                        .map_err(|e| format!("--spare-rows: {e}"))?
                }
                "--spare-cols" => {
                    opts.spare_cols = value("--spare-cols")?
                        .parse::<usize>()
                        .map_err(|e| format!("--spare-cols: {e}"))?
                }
                "--label-threads" => {
                    opts.label_threads = value("--label-threads")?
                        .parse::<usize>()
                        .map_err(|e| format!("--label-threads: {e}"))?
                        .max(1)
                }
                "--edit-stream" => opts.edit_stream = Some(value("--edit-stream")?),
                "--backend" => opts.backend = value("--backend")?,
                "--tile-rows" => {
                    opts.tile_rows = Some(
                        value("--tile-rows")?
                            .parse::<usize>()
                            .map_err(|e| format!("--tile-rows: {e}"))?,
                    )
                }
                "--tile-cols" => {
                    opts.tile_cols = Some(
                        value("--tile-cols")?
                            .parse::<usize>()
                            .map_err(|e| format!("--tile-cols: {e}"))?,
                    )
                }
                "--tile-backend" => opts.tile_backend = Some(value("--tile-backend")?),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        if opts.defect_map.is_some() && opts.defect_rate.is_some() {
            return Err("--defect-map and --defect-rate are mutually exclusive".into());
        }
        Ok(opts)
    }

    fn config(&self) -> Result<Config, String> {
        let strategy = match self.strategy.as_str() {
            "weighted" => VhStrategy::Weighted {
                gamma: self.gamma,
                time_limit: self.time_limit,
                exact_node_limit: 80,
            },
            "min-s" => VhStrategy::MinSemiperimeter {
                time_limit: self.time_limit,
            },
            "heuristic" => VhStrategy::Heuristic { gamma: self.gamma },
            "staircase" => VhStrategy::Staircase,
            other => return Err(format!("unknown strategy `{other}`")),
        };
        Ok(Config {
            strategy,
            align: self.align,
            var_order: None,
            label_threads: self.label_threads,
        })
    }

    fn budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(deadline) = self.deadline {
            budget = budget.with_deadline(deadline);
        }
        if let Some(nodes) = self.max_bdd_nodes {
            budget = budget.with_max_bdd_nodes(nodes);
        }
        budget
    }

    /// Resolves `--backend` plus the tile knobs into a [`Backend`].
    fn backend(&self) -> Result<Backend, String> {
        let mut backend = Backend::parse(&self.backend)?;
        if !matches!(backend, Backend::Partitioned(_))
            && (self.tile_rows.is_some() || self.tile_cols.is_some() || self.tile_backend.is_some())
        {
            return Err(format!(
                "--tile-rows/--tile-cols/--tile-backend only apply to \
                 `--backend partitioned` (got `{}`)",
                backend.name()
            ));
        }
        if let Backend::Partitioned(p) = &mut backend {
            if let Some(rows) = self.tile_rows {
                if rows == 0 {
                    return Err("--tile-rows must be at least 1".into());
                }
                p.tile.max_rows = rows;
            }
            if let Some(cols) = self.tile_cols {
                if cols == 0 {
                    return Err("--tile-cols must be at least 1".into());
                }
                p.tile.max_cols = cols;
            }
            if let Some(inner) = &self.tile_backend {
                *p.inner = Backend::parse(inner).map_err(|e| format!("--tile-backend: {e}"))?;
            }
            p.per_tile_time = self.time_limit;
        }
        Ok(backend)
    }
}

/// Runs `--gamma-sweep`: every γ point goes through one shared [`Session`],
/// so the whole sweep performs a single BDD build and graph extraction
/// (the per-stage trace printed at the end proves it).
fn gamma_sweep(network: &Network, steps: usize, opts: &Options) -> Result<bool, String> {
    use flowc::compact::{
        gamma_sweep_tasks, synthesize_batch, BatchConfig, Session, SessionConfig,
    };

    let session = Session::new(SessionConfig {
        budget: opts.budget(),
        warm_labels: true, // sequential sweep: each point seeds the next
        ..SessionConfig::default()
    });
    let gammas: Vec<f64> = (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect();
    let network = std::sync::Arc::new(network.clone());
    // Tasks come back ordered by descending γ (warm-start chaining);
    // sequential execution preserves that order so each point seeds the
    // next. Results are re-sorted to ascending γ for display.
    let mut tasks = gamma_sweep_tasks(&network, &gammas, opts.time_limit);
    for task in &mut tasks {
        task.config.label_threads = opts.label_threads;
    }
    let results = synthesize_batch(
        &session,
        &tasks,
        &BatchConfig {
            threads: 1, // sequential: adjacent γ points share warm starts
            per_task_budget: None,
        },
    );
    println!("circuit    : {}", network.name());
    println!(
        "{:>6} | {:>5} {:>5} {:>5} {:>5} {:>4} | {:>7} {:>7} {:>6} {:>6}",
        "γ", "R", "C", "D", "S", "opt", "nodes", "gap", "warm", "cache"
    );
    let mut degraded = false;
    let mut rows: Vec<(&flowc::compact::BatchTask, &flowc::compact::CompactResult)> = Vec::new();
    for (task, result) in tasks.iter().zip(&results) {
        match result {
            Ok(r) => rows.push((task, r)),
            Err(e) => return Err(format!("{}: {e}", task.label)),
        }
    }
    rows.sort_by(|a, b| {
        let gamma = |t: &flowc::compact::BatchTask| match &t.config.strategy {
            VhStrategy::Weighted { gamma, .. } => *gamma,
            _ => f64::NAN,
        };
        gamma(a.0).total_cmp(&gamma(b.0))
    });
    for (task, r) in rows {
        let report = r.degradation.as_ref();
        println!(
            "{:>6} | {:>5} {:>5} {:>5} {:>5} {:>4} | {:>7} {:>6.2}% {:>6} {:>6}",
            task.label.trim_start_matches("γ="),
            r.stats.rows,
            r.stats.cols,
            r.stats.max_dimension,
            r.stats.semiperimeter,
            if r.optimal { "yes" } else { "no" },
            report.map_or(0, |d| d.solver_nodes),
            100.0 * r.relative_gap,
            report.map_or("-", |d| match d.warm_start {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "-",
            }),
            if report.is_some_and(|d| d.label_cached) {
                "hit"
            } else {
                "-"
            },
        );
        degraded |= report.is_some_and(|d| d.degraded);
    }
    let trace = session.trace();
    println!("\nstage trace:");
    for part in trace.summary().split("; ") {
        println!("  {part}");
    }
    let cache = session.cache_stats();
    println!(
        "cache      : {} hit(s), {} miss(es), {} entr{}",
        cache.hits,
        cache.misses,
        cache.entries,
        if cache.entries == 1 { "y" } else { "ies" }
    );
    Ok(degraded)
}

/// Returns whether the synthesis degraded (exit code 2).
/// Runs `--edit-stream`: synthesizes the circuit once, then replays a
/// netlist edit script through one incremental [`EditSession`], printing
/// how each edit was resolved (cache hit, label repair, warm start, or
/// cold solve) and the final design's shape and counters.
fn edit_stream(network: &Network, script: &str, opts: &Options) -> Result<bool, String> {
    use flowc::compact::{parse_edit_script, EditSession, EditSessionConfig};
    let text = std::fs::read_to_string(script).map_err(|e| format!("{script}: {e}"))?;
    let edits = parse_edit_script(&text).map_err(|e| format!("{script}: {e}"))?;
    let config = EditSessionConfig {
        synthesis: opts.config()?,
        ..EditSessionConfig::default()
    };
    let mut session =
        EditSession::new(network, config).map_err(|e| format!("initial synthesis: {e}"))?;
    let base = session.result();
    println!("circuit    : {}", network.name());
    println!(
        "base       : S={} ({} x {}), optimal {} in {:.2}s",
        base.stats.semiperimeter,
        base.stats.rows,
        base.stats.cols,
        base.optimal,
        base.synthesis_time.as_secs_f64()
    );
    let budget = opts.budget();
    for (i, edit) in edits.iter().enumerate() {
        let outcome = session
            .apply_budgeted(edit, &budget)
            .map_err(|e| format!("edit {} (`{edit}`): {e}", i + 1))?;
        println!(
            "edit {:>2}/{:<2} : {:<32} {:<12} S={:<5} {} cone(s) invalidated, {:.1}ms",
            i + 1,
            edits.len(),
            edit.to_string(),
            outcome.resolution.name(),
            outcome.result.stats.semiperimeter,
            outcome.outputs_invalidated,
            outcome.wall.as_secs_f64() * 1e3
        );
    }
    let stats = session.stats();
    println!(
        "resolved   : {} of {} edits without a cold solve ({} hit / {} repaired / {} warm-started / {} cold)",
        stats.resolved_incrementally(),
        stats.edits,
        stats.hits,
        stats.repairs,
        stats.warm_starts,
        stats.cold_solves
    );
    let result = session.result();
    println!("crossbar   : {} x {}", result.stats.rows, result.stats.cols);
    println!("semiperim. : {}", result.stats.semiperimeter);
    println!(
        "optimal    : {} (gap {:.2}%)",
        result.optimal,
        100.0 * result.relative_gap
    );
    Ok(result.degradation.as_ref().is_some_and(|d| d.degraded))
}

/// Synthesizes through a non-COMPACT [`Backend`] and prints the unified
/// metric block. Compact-only features error out loudly instead of being
/// silently ignored.
fn synth_backend(network: &Network, backend: &Backend, opts: &Options) -> Result<bool, String> {
    let name = backend.name();
    if opts.gamma_sweep.is_some() {
        return Err(format!(
            "--gamma-sweep needs `--backend compact` (got `{name}`)"
        ));
    }
    if opts.edit_stream.is_some() {
        return Err(format!(
            "--edit-stream needs `--backend compact` (got `{name}`)"
        ));
    }
    if opts.defect_map.is_some() || opts.defect_rate.is_some() {
        return Err(format!(
            "defect repair needs `--backend compact` (got `{name}`)"
        ));
    }
    let ctx = SynthesisCtx::new(opts.config()?).with_budget(opts.budget());
    let design = backend
        .synthesize(network, &ctx)
        .map_err(|e| e.to_string())?;
    let m = &design.metrics;
    println!("circuit    : {}", network.name());
    println!("backend    : {}", design.backend);
    println!("inputs     : {}", network.num_inputs());
    println!("outputs    : {}", network.num_outputs());
    println!("crossbar   : {} x {}", m.rows, m.cols);
    println!("semiperim. : {}", m.semiperimeter);
    println!("max dim    : {}", m.max_dimension);
    println!("area       : {}", m.area);
    println!("power      : {} active devices", m.active_devices);
    println!("delay      : {} steps", m.delay_steps);
    if let DesignArtifact::Tiled(schedule) = &design.artifact {
        println!(
            "tiles      : {} (each within {} x {})",
            m.tiles, schedule.limits.max_rows, schedule.limits.max_cols
        );
        println!(
            "transfers  : {} inter-tile input deliveries",
            m.transfer_ops
        );
    }
    if opts.render {
        match design.crossbar() {
            Some(xbar) => println!("\ndevice matrix:\n{}", xbar.render()),
            None => {
                return Err(format!(
                    "--render needs a single-crossbar design; backend `{name}` \
                     produced a {} (try `--backend compact`)",
                    match &design.artifact {
                        DesignArtifact::Tiled(_) => "tile schedule",
                        _ => "NOR program",
                    }
                ))
            }
        }
    }
    if let Some(path) = &opts.svg {
        match design.crossbar() {
            Some(xbar) => {
                let svg = flowc::xbar::svg::to_svg(xbar, &flowc::xbar::svg::SvgOptions::default());
                flowc_report::write_atomic(Path::new(path), &svg)
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("svg        : wrote {path}");
            }
            None => return Err(format!("--svg needs a single-crossbar design (`{name}`)")),
        }
    }
    if let Some(samples) = opts.validate {
        backend
            .verify(&design, network, samples)
            .map_err(|e| format!("validation: {e}"))?;
        println!("validation : {samples} assignments, all match");
    }
    Ok(false)
}

fn synth(network: &Network, opts: &Options) -> Result<bool, String> {
    let backend = opts.backend()?;
    if !matches!(backend, Backend::Compact(_)) {
        return synth_backend(network, &backend, opts);
    }
    if let Some(steps) = opts.gamma_sweep {
        return gamma_sweep(network, steps, opts);
    }
    if let Some(script) = &opts.edit_stream {
        return edit_stream(network, script, opts);
    }
    let cfg = opts.config()?;
    let result =
        synthesize_with_budget(network, &cfg, &opts.budget()).map_err(|e| e.to_string())?;
    println!("circuit    : {}", network.name());
    println!("inputs     : {}", network.num_inputs());
    println!("outputs    : {}", network.num_outputs());
    println!("BDD nodes  : {}", result.graph_nodes);
    println!("BDD edges  : {}", result.graph_edges);
    println!("crossbar   : {} x {}", result.stats.rows, result.stats.cols);
    println!(
        "semiperim. : {} ({:.3} per node)",
        result.stats.semiperimeter,
        result.stats.semiperimeter as f64 / result.graph_nodes.max(1) as f64
    );
    println!("max dim    : {}", result.stats.max_dimension);
    println!("area       : {}", result.metrics.area);
    println!("VH nodes   : {}", result.stats.num_vh);
    println!(
        "power      : {} active devices",
        result.metrics.active_devices
    );
    println!("delay      : {} steps", result.metrics.delay_steps);
    println!(
        "optimal    : {} (gap {:.2}%)",
        result.optimal,
        100.0 * result.relative_gap
    );
    println!("synth time : {:.2}s", result.synthesis_time.as_secs_f64());
    let degraded = result.degradation.as_ref().is_some_and(|d| d.degraded);
    if let Some(report) = &result.degradation {
        println!("rung       : {}", report.rung);
        if report.degraded {
            println!("degraded   : {}", report.summary());
            for attempt in &report.attempts {
                if let Some(trigger) = &attempt.trigger {
                    println!(
                        "             {} after {:.2}s: {}",
                        attempt.rung,
                        attempt.wall.as_secs_f64(),
                        trigger
                    );
                }
            }
        }
    }
    if opts.render {
        println!("\ndevice matrix:\n{}", result.crossbar.render());
    }
    if let Some(path) = &opts.svg {
        let svg =
            flowc::xbar::svg::to_svg(&result.crossbar, &flowc::xbar::svg::SvgOptions::default());
        flowc_report::write_atomic(Path::new(path), &svg).map_err(|e| format!("{path}: {e}"))?;
        println!("svg        : wrote {path}");
    }
    if let Some(samples) = opts.validate {
        let report =
            verify_functional(&result.crossbar, network, samples).map_err(|e| e.to_string())?;
        println!(
            "validation : {} assignments, {}",
            report.checked,
            if report.is_valid() {
                "all match"
            } else {
                "MISMATCH"
            }
        );
        if !report.is_valid() {
            return Err("design mismatches the source circuit".into());
        }
    }
    let mut outcome = degraded;
    if opts.defect_map.is_some() || opts.defect_rate.is_some() {
        let design = &result.crossbar;
        let map = if let Some(path) = &opts.defect_map {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            DefectMap::parse(&text).map_err(|e| format!("{path}: {e}"))?
        } else {
            let rate = opts.defect_rate.expect("one source checked above");
            inject(
                design.rows() + opts.spare_rows,
                design.cols() + opts.spare_cols,
                &DefectRates::uniform(rate),
                opts.seed,
            )
        };
        println!(
            "defects    : {} faults on a {}x{} physical array",
            map.len(),
            map.rows(),
            map.cols()
        );
        let repair_cfg = RepairConfig::default();
        match repair_with_resynthesis(network, &cfg, design, &map, &repair_cfg, &opts.budget()) {
            Ok(repaired) => {
                println!("repair     : {}", repaired.report.summary());
                for attempt in &repaired.report.attempts {
                    println!(
                        "             {} — {}: {}",
                        attempt.action,
                        if attempt.success { "ok" } else { "failed" },
                        attempt.detail
                    );
                }
                if repaired.report.strategy != RepairStrategy::Benign {
                    outcome = true;
                }
            }
            Err(RepairError::Irreparable { attempts, defects }) => {
                eprintln!("repair     : irreparable under {defects} defects");
                for attempt in &attempts {
                    eprintln!(
                        "             {} — failed: {}",
                        attempt.action, attempt.detail
                    );
                }
                return Err("no rung of the repair ladder produced a working design".into());
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(outcome)
}

const HELP: &str = "\
flowc — COMPACT flow-based crossbar synthesis

USAGE:
    flowc list
    flowc synth <circuit.{blif,pla,v}> [options]
    flowc bench <name> [options]
    flowc convert <in.{blif,pla,v}> <out.{blif,pla,v}>
    flowc remote <submit|status|result|cancel|metrics> [args] [options]
    flowc help | -h | --help

SYNTHESIS OPTIONS (synth/bench):
    --backend <name>       mapping backend: compact (default), staircase,
                           robdd-diagonal, magic-nor, partitioned
    --tile-rows/--tile-cols <n>   tile bounds for `partitioned` (64 x 64)
    --tile-backend <name>  backend mapping each tile (default compact)
    --gamma <0..1>         trade-off weight (default 0.5)
    --gamma-sweep <n>      n γ points through one shared session
    --strategy <weighted|min-s|heuristic|staircase>
    --label-threads <n>    labeling branch & bound workers (default 1;
                           same optimum at any thread count)
    --edit-stream <file>   apply a netlist edit script incrementally
                           after the initial synthesis (synth only);
                           prints each edit's resolution and counters
    --time-limit <secs>    solver budget (default 30)
    --deadline <secs>      hard wall-clock budget; exhaustion degrades
    --max-bdd-nodes <n>    BDD node ceiling; exceeding it degrades
    --no-align             drop the Eq. 7 alignment constraints
    --render / --svg <f>   print or write the device matrix
    --validate <n>         check n assignments against simulation
    --defect-map <f> | --defect-rate <p>   repair against defects
    --seed/--spare-rows/--spare-cols       defect-injection knobs

REMOTE (client for a running flowc-serve):
    flowc remote submit <circuit file | bench:<name>> [--server <addr>]
          [--gamma g] [--strategy s] [--backend b] [--tile-rows n]
          [--tile-cols n] [--deadline secs] [--priority 0..9]
          [--label text] [--job-key key] [--wait]
          (--job-key makes resubmission idempotent on a journaled server:
           a key the server has seen returns the original job id)
    flowc remote status <id> | result <id> | cancel <id> | metrics
          [--server <addr>]          (default server 127.0.0.1:7878)

EXIT CODES (shared flowc convention):
    0  success — a clean, non-degraded design (or the command's output)
    2  valid but degraded — the budget ran out and a lower rung shipped,
       the BDD ceiling was lifted, or defects forced a repair; with
       `remote`, the service admitted or finished the job degraded
    1  hard failure — parse error, infeasible deadline, irreparable
       array, cancelled/failed remote job, or an unreachable server
";

/// Formats the body of `remote submit`: reads the circuit (or names a
/// built-in benchmark) and carries the optional knobs through verbatim —
/// the server revalidates everything.
struct RemoteOptions {
    server: String,
    gamma: Option<f64>,
    strategy: Option<String>,
    deadline: Option<Duration>,
    priority: Option<u64>,
    label: Option<String>,
    job_key: Option<String>,
    backend: Option<String>,
    tile_rows: Option<u64>,
    tile_cols: Option<u64>,
    wait: bool,
    positional: Vec<String>,
}

impl RemoteOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = RemoteOptions {
            server: "127.0.0.1:7878".to_string(),
            gamma: None,
            strategy: None,
            deadline: None,
            priority: None,
            label: None,
            job_key: None,
            backend: None,
            tile_rows: None,
            tile_cols: None,
            wait: false,
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--server" => opts.server = value("--server")?,
                "--gamma" => {
                    opts.gamma = Some(
                        value("--gamma")?
                            .parse::<f64>()
                            .map_err(|e| format!("--gamma: {e}"))?,
                    )
                }
                "--strategy" => opts.strategy = Some(value("--strategy")?),
                "--deadline" => {
                    let secs = value("--deadline")?
                        .parse::<f64>()
                        .map_err(|e| format!("--deadline: {e}"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err("--deadline must be a non-negative number of seconds".into());
                    }
                    opts.deadline = Some(Duration::from_secs_f64(secs));
                }
                "--priority" => {
                    opts.priority = Some(
                        value("--priority")?
                            .parse::<u64>()
                            .map_err(|e| format!("--priority: {e}"))?,
                    )
                }
                "--label" => opts.label = Some(value("--label")?),
                "--job-key" => opts.job_key = Some(value("--job-key")?),
                "--backend" => opts.backend = Some(value("--backend")?),
                "--tile-rows" => {
                    opts.tile_rows = Some(
                        value("--tile-rows")?
                            .parse::<u64>()
                            .map_err(|e| format!("--tile-rows: {e}"))?,
                    )
                }
                "--tile-cols" => {
                    opts.tile_cols = Some(
                        value("--tile-cols")?
                            .parse::<u64>()
                            .map_err(|e| format!("--tile-cols: {e}"))?,
                    )
                }
                "--wait" => opts.wait = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown option `{other}`"))
                }
                other => opts.positional.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    fn job_id(&self, action: &str) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| format!("remote {action} needs a job id"))
    }
}

/// Builds the `POST /submit` body from a circuit file or `bench:<name>`.
fn submit_body(target: &str, opts: &RemoteOptions) -> Result<String, String> {
    use flowc_report::Json;
    let (circuit, format) = if let Some(name) = target.strip_prefix("bench:") {
        (name.to_string(), "bench")
    } else {
        let ext = Path::new(target)
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("");
        let format = match ext {
            "blif" => "blif",
            "pla" => "pla",
            "v" | "verilog" => "verilog",
            other => {
                return Err(format!(
                    "unknown circuit extension `.{other}` (use .blif/.pla/.v or bench:<name>)"
                ))
            }
        };
        let text = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
        (text, format)
    };
    let mut fields = vec![
        ("circuit".to_string(), Json::str(circuit)),
        ("format".to_string(), Json::str(format)),
    ];
    if let Some(g) = opts.gamma {
        fields.push(("gamma".to_string(), Json::Num(g)));
    }
    if let Some(s) = &opts.strategy {
        fields.push(("strategy".to_string(), Json::str(s.as_str())));
    }
    if let Some(d) = opts.deadline {
        fields.push(("deadline_ms".to_string(), Json::Num(d.as_millis() as f64)));
    }
    if let Some(p) = opts.priority {
        fields.push(("priority".to_string(), Json::Num(p as f64)));
    }
    if let Some(l) = &opts.label {
        fields.push(("label".to_string(), Json::str(l.as_str())));
    }
    if let Some(k) = &opts.job_key {
        fields.push(("job_key".to_string(), Json::str(k.as_str())));
    }
    if let Some(b) = &opts.backend {
        fields.push(("backend".to_string(), Json::str(b.as_str())));
    }
    if let Some(r) = opts.tile_rows {
        fields.push(("tile_rows".to_string(), Json::Num(r as f64)));
    }
    if let Some(c) = opts.tile_cols {
        fields.push(("tile_cols".to_string(), Json::Num(c as f64)));
    }
    Ok(Json::Obj(fields).to_compact())
}

/// The `flowc remote` client: talks to a running `flowc-serve`. Returns
/// whether the outcome was degraded (exit code 2), mirroring local synth.
fn remote(action: &str, args: &[String]) -> Result<bool, String> {
    use flowc::serve::client::{describe_error, request};
    use flowc_report::Json;

    let opts = RemoteOptions::parse(args)?;
    let server = opts.server.as_str();
    match action {
        "submit" => {
            let target = opts
                .positional
                .first()
                .ok_or("remote submit needs a circuit file or bench:<name>")?;
            let body = submit_body(target, &opts)?;
            let (status, resp) = request(server, "POST", "/submit", &body)?;
            if status != 200 {
                return Err(describe_error(status, &resp));
            }
            let id = resp
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("server response is missing `id`")?;
            let degraded_admission = resp.get("degraded").and_then(Json::as_bool) == Some(true);
            println!("id         : {id}");
            if resp.get("duplicate").and_then(Json::as_bool) == Some(true) {
                println!("duplicate  : job key already submitted; this is the original job");
            }
            if let Some(rung) = resp.get("rung").and_then(Json::as_str) {
                println!(
                    "rung       : {rung}{}",
                    if degraded_admission {
                        " (degraded at admission)"
                    } else {
                        ""
                    }
                );
            }
            if let Some(est) = resp.get("estimated_ms").and_then(Json::as_u64) {
                println!("estimate   : {est} ms");
            }
            if !opts.wait {
                return Ok(degraded_admission);
            }
            // Poll until terminal, then fetch and print the outcome.
            let state = loop {
                let (status, resp) = request(server, "GET", &format!("/status?id={id}"), "")?;
                if status != 200 {
                    return Err(describe_error(status, &resp));
                }
                let state = resp
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                if !matches!(state.as_str(), "queued" | "running") {
                    break state;
                }
                std::thread::sleep(Duration::from_millis(200));
            };
            let (status, resp) = request(server, "GET", &format!("/result?id={id}"), "")?;
            if status != 200 {
                return Err(describe_error(status, &resp));
            }
            println!("{}", resp.to_pretty());
            match state.as_str() {
                "done" => {
                    let degraded = resp
                        .get("outcome")
                        .and_then(|o| o.get("degraded"))
                        .and_then(Json::as_bool)
                        == Some(true);
                    Ok(degraded || degraded_admission)
                }
                other => Err(format!("job {id} ended `{other}`")),
            }
        }
        "status" | "result" => {
            let id = opts.job_id(action)?;
            let (status, resp) = request(server, "GET", &format!("/{action}?id={id}"), "")?;
            if status != 200 {
                return Err(describe_error(status, &resp));
            }
            println!("{}", resp.to_pretty());
            Ok(false)
        }
        "cancel" => {
            let id = opts.job_id("cancel")?;
            let (status, resp) = request(server, "POST", "/cancel", &format!("{{\"id\": {id}}}"))?;
            if status != 200 {
                return Err(describe_error(status, &resp));
            }
            println!("{}", resp.to_pretty());
            Ok(false)
        }
        "metrics" => {
            let (status, resp) = request(server, "GET", "/metrics", "")?;
            if status != 200 {
                return Err(describe_error(status, &resp));
            }
            println!("{}", resp.to_pretty());
            Ok(false)
        }
        other => Err(format!(
            "unknown remote action `{other}` (submit|status|result|cancel|metrics)"
        )),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("-h") | Some("--help") => {
            print!("{HELP}");
            Ok(false)
        }
        Some("list") => {
            println!("{:<11} {:>7} {:>8} suite", "name", "inputs", "outputs");
            for b in flowc::logic::bench_suite::all() {
                println!(
                    "{:<11} {:>7} {:>8} {}",
                    b.name,
                    b.paper.inputs,
                    b.paper.outputs,
                    b.suite.name()
                );
            }
            Ok(false)
        }
        Some("synth") => {
            let path = args.get(1).ok_or("synth needs a circuit file")?;
            let network = load(path)?;
            let opts = Options::parse(&args[2..])?;
            synth(&network, &opts)
        }
        Some("bench") => {
            let name = args.get(1).ok_or("bench needs a benchmark name")?;
            let bench = flowc::logic::bench_suite::by_name(name)
                .ok_or_else(|| format!("unknown benchmark `{name}` (try `flowc list`)"))?;
            let network = bench.network().map_err(|e| e.to_string())?;
            let opts = Options::parse(&args[2..])?;
            synth(&network, &opts)
        }
        Some("convert") => {
            let input = args.get(1).ok_or("convert needs an input file")?;
            let output = args.get(2).ok_or("convert needs an output file")?;
            let network = load(input)?;
            save(&network, output)?;
            println!("wrote {output}");
            Ok(false)
        }
        Some("remote") => {
            let action = args
                .get(1)
                .ok_or("remote needs an action: submit|status|result|cancel|metrics")?;
            remote(action, &args[2..])
        }
        _ => {
            Err("usage: flowc <list|synth|bench|convert|remote|help> …  (see `flowc help`)".into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        // 0: clean synthesis; 2: a valid but degraded design was produced
        // (budget exhausted, ladder stepped down, or BDD ceiling lifted);
        // 1: hard failure, nothing usable was produced.
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(2),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

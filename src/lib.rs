//! # flowc — flow-based in-memory computing on nanoscale crossbars
//!
//! A from-scratch Rust reproduction of *COMPACT: Flow-Based Computing on
//! Nanoscale Crossbars with Minimal Semiperimeter and Maximum Dimension*
//! (Thijssen, Jha, Ewetz — DATE 2021), together with every substrate the
//! paper's flow depends on:
//!
//! - [`logic`]: gate-level networks, BLIF/PLA I/O, simulation, and the
//!   benchmark circuit generators;
//! - [`bdd`]: a ROBDD/SBDD package (the CUDD stand-in);
//! - [`graph`]: bipartiteness, matching, minimum vertex cover, and the odd
//!   cycle transversal of the paper's Lemma 1;
//! - [`milp`]: a 0-1 MILP solver with simplex LP relaxation and branch &
//!   bound (the CPLEX stand-in), including convergence traces;
//! - [`xbar`]: the memristor crossbar model with sneak-path flow evaluation
//!   and DC nodal analysis (the SPICE stand-in);
//! - [`compact`]: the COMPACT framework itself — graph preprocessing,
//!   VH-labeling (odd-cycle-transversal and weighted-MIP solvers), and
//!   crossbar mapping;
//! - [`baselines`]: the prior-art staircase mapping, the per-output ROBDD
//!   flow, and a CONTRA-style MAGIC comparator;
//! - [`serve`]: the fault-contained synthesis service (`flowc-serve`)
//!   with admission control, a bounded priority queue, a circuit breaker,
//!   and panic-isolated workers (plus the `flowc remote` client mode);
//! - [`conform`]: the conformance subsystem — multi-oracle differential
//!   fuzzing with delta-debugging shrinking and a persisted counterexample
//!   corpus (plus the `conform-fuzz` binary).
//!
//! # Quickstart
//!
//! ```
//! use flowc::logic::{Network, GateKind};
//! use flowc::compact::{synthesize, Config};
//!
//! // f = (a ∧ b) ∨ c — the paper's running example.
//! let mut n = Network::new("fig2");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let ab = n.add_gate(GateKind::And, &[a, b], "ab")?;
//! let f = n.add_gate(GateKind::Or, &[ab, c], "f")?;
//! n.mark_output(f);
//!
//! let design = synthesize(&n, &Config::default())?;
//! assert_eq!(design.crossbar.evaluate(&[true, true, false])?, vec![true]);
//! println!(
//!     "crossbar: {} × {} (S = {}, D = {})",
//!     design.stats.rows, design.stats.cols,
//!     design.stats.semiperimeter, design.stats.max_dimension,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flowc_baselines as baselines;
pub use flowc_bdd as bdd;
pub use flowc_budget as budget;
pub use flowc_compact as compact;
pub use flowc_conform as conform;
pub use flowc_graph as graph;
pub use flowc_logic as logic;
pub use flowc_milp as milp;
pub use flowc_serve as serve;
pub use flowc_xbar as xbar;

//! Deterministic failure-injection points for crash-recovery testing.
//!
//! A *failpoint* is a named site in production code where a test can
//! inject a failure: a process crash (`abort`, indistinguishable from
//! `kill -9` to the recovery path) or a synthetic error the call site
//! maps to its own error type. Sites are compiled behind the `enabled`
//! feature — the default build inlines every hit to `Action::Nothing`
//! with zero registry, zero atomics, zero branches on config.
//!
//! Configuration is a spec string, usually from the `FLOWC_FAILPOINTS`
//! environment variable so a spawned server binary can be armed by its
//! test harness:
//!
//! ```text
//! FLOWC_FAILPOINTS="serve.journal.torn=crash@3,report.write.temp=error"
//! ```
//!
//! Each entry is `name=action[@n]` where `action` is `crash` or `error`
//! and `@n` (1-based) fires the action on exactly the *n*-th hit of that
//! site — every other hit is a no-op. Without `@n` the action fires on
//! every hit. Hit counting is per-process and deterministic, so a test
//! that arms `crash@3` kills the process at the same program point on
//! every run.
//!
//! This is the same discipline as the conform crate's `broken-oracle`
//! plant (a deliberate bug behind a feature gate, used to prove the
//! harness catches it): the failpoints exist to prove the journal and
//! atomic writers actually survive the failures they claim to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// What a failpoint hit asks the call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not armed (or armed for a different hit count): proceed normally.
    Nothing,
    /// Fail this operation with an injected error.
    Error,
    /// Crash the process here. Call sites that need to misbehave *before*
    /// dying (e.g. write half a record to simulate a torn tail) observe
    /// this and abort themselves; plain sites use [`maybe_crash`].
    Crash,
}

#[cfg(feature = "enabled")]
mod registry {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Debug, Clone)]
    struct Arm {
        action: Action,
        /// 1-based hit that fires; `None` fires every hit.
        at: Option<u64>,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Arm>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Arm>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("FLOWC_FAILPOINTS") {
                parse_into(&spec, &mut map);
            }
            Mutex::new(map)
        })
    }

    fn parse_into(spec: &str, map: &mut HashMap<String, Arm>) {
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((name, rhs)) = entry.split_once('=') else {
                continue;
            };
            let (action, at) = match rhs.split_once('@') {
                Some((a, n)) => (a, n.parse::<u64>().ok()),
                None => (rhs, None),
            };
            let action = match action.trim() {
                "crash" | "abort" => Action::Crash,
                "error" | "err" => Action::Error,
                _ => continue,
            };
            map.insert(
                name.trim().to_string(),
                Arm {
                    action,
                    at,
                    hits: 0,
                },
            );
        }
    }

    pub fn configure(spec: &str) {
        let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
        parse_into(spec, &mut map);
    }

    pub fn reset() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    pub fn hit(name: &str) -> Action {
        let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
        let Some(arm) = map.get_mut(name) else {
            return Action::Nothing;
        };
        arm.hits += 1;
        match arm.at {
            Some(at) if arm.hits != at => Action::Nothing,
            _ => arm.action,
        }
    }
}

/// Records one hit of the failpoint `name` and returns the armed action
/// (if the hit count matches the arm). With the `enabled` feature off
/// this is a free inline no-op.
#[cfg(feature = "enabled")]
pub fn hit(name: &str) -> Action {
    registry::hit(name)
}

/// Records one hit of the failpoint `name` and returns the armed action.
/// This build has failpoints compiled out: always [`Action::Nothing`].
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hit(_name: &str) -> Action {
    Action::Nothing
}

/// Hits `name` and aborts the process if it is armed to crash. The abort
/// is raw (`std::process::abort`) so no destructor, flush, or unwind
/// runs — exactly the guarantee-free death a `kill -9` delivers.
#[inline]
pub fn maybe_crash(name: &str) {
    if hit(name) == Action::Crash {
        std::process::abort();
    }
}

/// Hits `name` and reports whether the call site should fail with an
/// injected error. A `crash` arm still aborts here.
#[inline]
pub fn should_fail(name: &str) -> bool {
    match hit(name) {
        Action::Nothing => false,
        Action::Error => true,
        Action::Crash => std::process::abort(),
    }
}

/// Arms failpoints from a spec string (same grammar as `FLOWC_FAILPOINTS`).
/// No-op when failpoints are compiled out.
pub fn configure(spec: &str) {
    #[cfg(feature = "enabled")]
    registry::configure(spec);
    #[cfg(not(feature = "enabled"))]
    let _ = spec;
}

/// Disarms every failpoint and zeroes the hit counters. No-op when
/// failpoints are compiled out.
pub fn reset() {
    #[cfg(feature = "enabled")]
    registry::reset();
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    /// One test body: the registry is process-global, so separate `#[test]`
    /// functions would race each other's `reset()` calls.
    #[test]
    fn registry_arms_count_and_fire_deterministically() {
        reset();
        // Unarmed points do nothing.
        assert_eq!(hit("nope"), Action::Nothing);
        assert!(!should_fail("nope"));

        // `@n` arms fire on exactly the n-th hit, once.
        configure("t.exact=error@3");
        assert!(!should_fail("t.exact"));
        assert!(!should_fail("t.exact"));
        assert!(should_fail("t.exact"));
        assert!(!should_fail("t.exact"), "one-shot: only the 3rd hit fires");

        // Unconditional arms fire every hit.
        configure("t.every=error");
        assert!(should_fail("t.every"));
        assert!(should_fail("t.every"));

        // Malformed entries are ignored; valid siblings still parse.
        configure("garbage,no-equals,x=warp@2,z=error@1");
        assert_eq!(hit("garbage"), Action::Nothing);
        assert_eq!(hit("x"), Action::Nothing);
        assert!(should_fail("z"));

        reset();
        assert!(!should_fail("t.every"), "reset disarms everything");
    }
}

//! Edit-stream generation and the incremental-vs-cold differential oracle.
//!
//! The conformance suite's other oracles compare *algorithms* on one
//! frozen netlist. This module compares *histories*: it drives a
//! [`EditSession`](flowc_compact::EditSession) through a generated stream
//! of netlist edits and checks, after every single edit, that the
//! incrementally-maintained design is indistinguishable from a cold
//! synthesis of the same netlist — same optimality verdict, same
//! objective value (the semiperimeter, or its γ-weighted blend with the
//! max dimension under the weighted strategy), same input/output
//! behavior. Any divergence is a bug in
//! the cone-hash keying or the label-repair ladder, and is reported with
//! first-disagreement provenance (the edit index and the exact check that
//! split).
//!
//! Counterexamples persist as `<test>.<seed>.edits` files: a provenance
//! header, the `edit:`-prefixed stream, and the base netlist as BLIF —
//! replayable before fresh cases exactly like the network corpus.

use std::path::PathBuf;

use flowc_budget::Budget;
use flowc_compact::{
    parse_edit, synthesize, Config, EditError, EditSession, EditSessionConfig, EditableNetlist,
    IncrementalStats, NetlistEdit, SessionConfig, VhStrategy,
};
use flowc_logic::{blif, GateKind, Network};
use flowc_xbar::verify::verify_functional;

use crate::corpus::Corpus;
use crate::gen::NetworkGen;
use crate::rng::Rng;

/// One fuzz case: a base netlist plus the edit stream applied to it.
#[derive(Debug, Clone)]
pub struct EditCase {
    /// The starting netlist.
    pub base: Network,
    /// The edits, applied in order.
    pub edits: Vec<NetlistEdit>,
}

/// Generates [`EditCase`]s: a base network from [`NetworkGen`] and a
/// stream of structurally-valid random edits against it. Every draw is a
/// pure function of the [`Rng`] state, so a seed reproduces the exact
/// case.
#[derive(Debug, Clone)]
pub struct EditStreamGen {
    /// Base-network shape.
    pub shape: NetworkGen,
    /// Edits per case.
    pub edits: usize,
}

impl Default for EditStreamGen {
    fn default() -> Self {
        EditStreamGen {
            shape: NetworkGen::default(),
            edits: 8,
        }
    }
}

impl EditStreamGen {
    /// Draws one case. Edits are validated against a scratch netlist as
    /// they are drawn, so the produced stream always applies cleanly.
    pub fn generate(&self, rng: &mut Rng) -> EditCase {
        let base = self.shape.generate(rng);
        self.stream_for(base, rng)
    }

    /// Draws an edit stream against a caller-provided base network
    /// (`self.shape` is ignored). The bench harness uses this to replay
    /// streams over the paper's benchmark circuits instead of generated
    /// ones; the same validate-as-drawn guarantee applies.
    pub fn stream_for(&self, base: Network, rng: &mut Rng) -> EditCase {
        let mut scratch = EditableNetlist::from_network(&base);
        let mut edits = Vec::with_capacity(self.edits);
        let mut fresh = 0usize;
        while edits.len() < self.edits {
            let edit = self.draw_edit(&scratch, rng, &mut fresh);
            if scratch.apply(&edit).is_ok() {
                edits.push(edit);
            }
        }
        EditCase { base, edits }
    }

    /// Draws a *replay-profile* stream against `base`: the edit mix of an
    /// interactive editing session rather than a uniform adversarial
    /// draw. Real edit logs are dominated by locality — equivalence
    /// rewires (repointing one consumer at a freshly duplicated,
    /// functionally identical gate, the shape of optimizer rewrites),
    /// dead scaffolding, and undo churn — with only an occasional
    /// committed functional change. This is the workload the
    /// `bench_synthesis` edit-replay benchmark measures; the uniform
    /// [`stream_for`](Self::stream_for) mix remains the fuzzer's default.
    ///
    /// The same validate-as-drawn guarantee applies: every emitted edit
    /// applies cleanly in order.
    pub fn replay_for(&self, base: Network, rng: &mut Rng) -> EditCase {
        let mut scratch = EditableNetlist::from_network(&base);
        let mut edits: Vec<NetlistEdit> = Vec::with_capacity(self.edits);
        // Inverse edits for the undo draw, most recent last.
        let mut undo: Vec<NetlistEdit> = Vec::new();
        // Duplicate gates minted so far: (duplicate net, original net).
        let mut dups: Vec<(String, String)> = Vec::new();
        let mut fresh = 0usize;
        let mut guard = 0usize;
        while edits.len() < self.edits {
            guard += 1;
            if guard > self.edits * 64 {
                break; // degenerate base; ship what we have
            }
            let roll = rng.below(10);
            let edit = if roll < 2 {
                // Undo: pop the most recent recorded inverse. A stale
                // inverse (its gate became live, its pin moved on) is
                // simply refused by the scratch and dropped.
                match undo.pop() {
                    Some(e) => e,
                    None => self.draw_edit(&scratch, rng, &mut fresh),
                }
            } else if roll < 7 {
                // Equivalence rewire: repoint one consumer of an already
                // duplicated gate at its duplicate (function-preserving,
                // so the BDD — and the labeling problem — is unchanged),
                // minting the duplicate first when none has a consumer
                // left to move.
                match self.equivalence_step(&scratch, rng, &mut dups, &mut fresh) {
                    Some(e) => e,
                    None => self.draw_edit(&scratch, rng, &mut fresh),
                }
            } else if roll < 9 {
                // Probe churn: observe an already-observed net on a
                // second output slot (attaching a debug probe). The cone
                // key changes but the labeling model does not, so the
                // edit session resolves it by perfect label transfer.
                let outputs = scratch.outputs();
                if outputs.is_empty() {
                    self.scaffold(&scratch, rng, &mut fresh)
                } else {
                    NetlistEdit::AddOutput {
                        target: outputs[rng.below(outputs.len())].clone(),
                    }
                }
            } else {
                // A committed functional change.
                self.draw_edit(&scratch, rng, &mut fresh)
            };
            let inverse = inverse_of(&scratch, &edit);
            if scratch.apply(&edit).is_ok() {
                if let Some(inv) = inverse {
                    undo.push(inv);
                }
                edits.push(edit);
            }
        }
        EditCase { base, edits }
    }

    /// One step of the equivalence-rewire drip: if some minted duplicate
    /// still has a consumer of its original to move, move it; otherwise
    /// mint a duplicate of a random gate that has at least one consumer.
    fn equivalence_step(
        &self,
        scratch: &EditableNetlist,
        rng: &mut Rng,
        dups: &mut Vec<(String, String)>,
        fresh: &mut usize,
    ) -> Option<NetlistEdit> {
        let gates = scratch.gates();
        // A duplicate only stays usable while it still mirrors its
        // original — a later edit may have rewired either side, and a
        // rewire onto a diverged duplicate would change the function.
        let mirrors = |dup: &str, orig: &str| -> bool {
            let d = gates.iter().find(|g| g.name == dup);
            let o = gates.iter().find(|g| g.name == orig);
            match (d, o) {
                (Some(d), Some(o)) => d.kind == o.kind && d.inputs == o.inputs,
                _ => false,
            }
        };
        dups.retain(|(dup, orig)| mirrors(dup, orig));
        // Prefer moving a consumer onto an existing duplicate.
        if !dups.is_empty() {
            let start = rng.below(dups.len());
            for i in 0..dups.len() {
                let (dup, orig) = &dups[(start + i) % dups.len()];
                let mut candidates: Vec<(String, usize)> = Vec::new();
                for g in gates {
                    if g.name == *dup {
                        continue;
                    }
                    for (pin, src) in g.inputs.iter().enumerate() {
                        if src == orig {
                            candidates.push((g.name.clone(), pin));
                        }
                    }
                }
                if !candidates.is_empty() {
                    let (gate, pin) = candidates[rng.below(candidates.len())].clone();
                    return Some(NetlistEdit::RewireInput {
                        gate,
                        pin,
                        source: dup.clone(),
                    });
                }
            }
        }
        // Mint a new duplicate of a gate some other gate reads.
        let mut read: Vec<usize> = Vec::new();
        for (i, g) in gates.iter().enumerate() {
            let has_consumer = gates
                .iter()
                .any(|h| h.name != g.name && h.inputs.iter().any(|s| s == &g.name));
            if has_consumer {
                read.push(i);
            }
        }
        if read.is_empty() {
            return None;
        }
        let g = &gates[read[rng.below(read.len())]];
        let name = format!("d{}", *fresh);
        *fresh += 1;
        dups.push((name.clone(), g.name.clone()));
        Some(NetlistEdit::AddGate {
            name,
            kind: g.kind,
            inputs: g.inputs.clone(),
        })
    }

    /// A dead scaffolding gate over random existing nets.
    fn scaffold(&self, scratch: &EditableNetlist, rng: &mut Rng, fresh: &mut usize) -> NetlistEdit {
        let net_names: Vec<String> = scratch
            .inputs()
            .iter()
            .cloned()
            .chain(scratch.gates().iter().map(|g| g.name.clone()))
            .collect();
        let kind = match rng.below(3) {
            0 => GateKind::And,
            1 => GateKind::Or,
            _ => GateKind::Xor,
        };
        let name = format!("e{}", *fresh);
        *fresh += 1;
        NetlistEdit::AddGate {
            name,
            kind,
            inputs: (0..2)
                .map(|_| net_names[rng.below(net_names.len())].clone())
                .collect(),
        }
    }

    /// One random edit attempt against the current scratch state; the
    /// caller retries on refusal. Mirrors [`NetworkGen`]'s kind weights.
    fn draw_edit(
        &self,
        scratch: &EditableNetlist,
        rng: &mut Rng,
        fresh: &mut usize,
    ) -> NetlistEdit {
        let net_names: Vec<String> = scratch
            .inputs()
            .iter()
            .cloned()
            .chain(scratch.gates().iter().map(|g| g.name.clone()))
            .collect();
        let pick = |rng: &mut Rng| net_names[rng.below(net_names.len())].clone();
        match rng.below(8) {
            0 | 1 => {
                let kind = match rng.below(7) {
                    0 => GateKind::Not,
                    1 => GateKind::And,
                    2 => GateKind::Or,
                    3 => GateKind::Xor,
                    4 => GateKind::Nand,
                    5 => GateKind::Nor,
                    _ => GateKind::Mux,
                };
                let arity = match kind {
                    GateKind::Not => 1,
                    GateKind::Mux => 3,
                    _ => rng.range(2, 4),
                };
                let name = format!("e{}", *fresh);
                *fresh += 1;
                NetlistEdit::AddGate {
                    name,
                    kind,
                    inputs: (0..arity).map(|_| pick(rng)).collect(),
                }
            }
            2 => {
                // Aim at a random gate; the scratch refuses live ones and
                // the caller retries, so this biases toward dead logic
                // without a fanout scan.
                let gates = scratch.gates();
                if gates.is_empty() {
                    return NetlistEdit::AddOutput { target: pick(rng) };
                }
                NetlistEdit::RemoveGate {
                    name: gates[rng.below(gates.len())].name.clone(),
                }
            }
            3 | 4 => {
                let gates = scratch.gates();
                if gates.is_empty() {
                    return NetlistEdit::AddOutput { target: pick(rng) };
                }
                let gate = &gates[rng.below(gates.len())];
                NetlistEdit::RewireInput {
                    gate: gate.name.clone(),
                    pin: rng.below(gate.inputs.len().max(1)),
                    source: pick(rng),
                }
            }
            5 => NetlistEdit::RetargetOutput {
                index: rng.below(scratch.outputs().len().max(1)),
                target: pick(rng),
            },
            6 => NetlistEdit::AddOutput { target: pick(rng) },
            _ => NetlistEdit::DropOutput {
                index: rng.below(scratch.outputs().len().max(1)),
            },
        }
    }
}

/// The inverse of `edit` against the pre-application `scratch` state,
/// when one exists and is expressible in the edit vocabulary. Used by
/// the replay profile's undo draw; a recorded inverse that has gone
/// stale by the time it is replayed is refused by the scratch netlist
/// and silently dropped.
fn inverse_of(scratch: &EditableNetlist, edit: &NetlistEdit) -> Option<NetlistEdit> {
    match edit {
        NetlistEdit::AddGate { name, .. } => Some(NetlistEdit::RemoveGate { name: name.clone() }),
        NetlistEdit::RewireInput { gate, pin, .. } => {
            let g = scratch.gates().iter().find(|g| &g.name == gate)?;
            let old = g.inputs.get(*pin)?.clone();
            Some(NetlistEdit::RewireInput {
                gate: gate.clone(),
                pin: *pin,
                source: old,
            })
        }
        NetlistEdit::RetargetOutput { index, .. } => {
            let old = scratch.outputs().get(*index)?.clone();
            Some(NetlistEdit::RetargetOutput {
                index: *index,
                target: old,
            })
        }
        NetlistEdit::AddOutput { .. } => Some(NetlistEdit::DropOutput {
            index: scratch.outputs().len(),
        }),
        _ => None,
    }
}

/// Differential-check tuning for edit streams.
#[derive(Debug, Clone)]
pub struct EditCheckConfig {
    /// The synthesis configuration both sides run under.
    pub synthesis: Config,
    /// The incremental side's artifact-session configuration.
    pub session: SessionConfig,
    /// Functional-equivalence samples for wide networks (≤16 inputs are
    /// checked exhaustively by the crossbar verifier regardless).
    pub samples: usize,
}

impl Default for EditCheckConfig {
    fn default() -> Self {
        EditCheckConfig {
            synthesis: Config::default(),
            session: SessionConfig::default(),
            samples: 128,
        }
    }
}

/// What a clean edit-stream check covered.
#[derive(Debug, Clone, Copy)]
pub struct EditStreamOutcome {
    /// Edits both sides accepted and checked.
    pub edits_checked: usize,
    /// Edits both sides consistently refused (invalid after shrinking).
    pub edits_skipped: usize,
    /// The incremental session's resolution counters.
    pub stats: IncrementalStats,
}

/// An incremental-vs-cold divergence, with first-disagreement provenance.
#[derive(Debug, Clone)]
pub struct EditStreamFailure {
    /// Index of the edit after which the divergence appeared; `None`
    /// means the base-state synthesis itself diverged.
    pub edit_index: Option<usize>,
    /// The edit at that index.
    pub edit: Option<NetlistEdit>,
    /// Stable failure tag: `refusal-divergence`, `optimality-divergence`,
    /// `objective-divergence` (weighted strategy), `semiperimeter-divergence`
    /// (all other strategies), `functional-divergence`, `synthesis`.
    pub kind: String,
    /// Human-readable specifics (values on both sides, witness inputs).
    pub detail: String,
}

impl std::fmt::Display for EditStreamFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.edit_index, &self.edit) {
            (Some(i), Some(e)) => {
                write!(f, "after edit {i} (`{e}`): {}: {}", self.kind, self.detail)
            }
            _ => write!(f, "at the base state: {}: {}", self.kind, self.detail),
        }
    }
}

fn failure(
    index: Option<usize>,
    edit: Option<&NetlistEdit>,
    kind: &str,
    detail: String,
) -> Box<EditStreamFailure> {
    Box::new(EditStreamFailure {
        edit_index: index,
        edit: edit.cloned(),
        kind: kind.to_string(),
        detail,
    })
}

/// Checks one netlist state: the incremental result against a cold
/// synthesis of `netlist`'s materialization.
fn check_state(
    incremental: &flowc_compact::CompactResult,
    netlist: &EditableNetlist,
    cfg: &EditCheckConfig,
    index: Option<usize>,
    edit: Option<&NetlistEdit>,
) -> Result<(), Box<EditStreamFailure>> {
    let network = netlist
        .materialize()
        .map_err(|e| failure(index, edit, "synthesis", format!("materialize: {e}")))?;
    let cold = synthesize(&network, &cfg.synthesis)
        .map_err(|e| failure(index, edit, "synthesis", format!("cold synthesis: {e}")))?;
    if incremental.optimal != cold.optimal {
        return Err(failure(
            index,
            edit,
            "optimality-divergence",
            format!(
                "incremental optimal={} (gap {:.4}) vs cold optimal={} (gap {:.4})",
                incremental.optimal, incremental.relative_gap, cold.optimal, cold.relative_gap
            ),
        ));
    }
    if incremental.optimal {
        // Both sides are proven optimal, so they must agree on the value
        // of the objective they optimized. Under the weighted strategy
        // that is γ·S + (1−γ)·D, *not* S alone: the perfect-transfer
        // fast path can legitimately ship a different equally-optimal
        // (S, D) split than the cold solve's tie-break picks. For every
        // other strategy the objective is the semiperimeter itself.
        let diverged = match &cfg.synthesis.strategy {
            VhStrategy::Weighted { gamma, .. } => {
                let (a, b) = (
                    incremental.stats.objective(*gamma),
                    cold.stats.objective(*gamma),
                );
                ((a - b).abs() > 1e-6).then(|| {
                    (
                        "objective-divergence",
                        format!(
                            "incremental objective={a:.4} vs cold objective={b:.4} (γ={gamma})"
                        ),
                    )
                })
            }
            _ => (incremental.stats.semiperimeter != cold.stats.semiperimeter).then(|| {
                (
                    "semiperimeter-divergence",
                    format!(
                        "incremental S={} ({}x{}) vs cold S={} ({}x{})",
                        incremental.stats.semiperimeter,
                        incremental.stats.rows,
                        incremental.stats.cols,
                        cold.stats.semiperimeter,
                        cold.stats.rows,
                        cold.stats.cols
                    ),
                )
            }),
        };
        if let Some((kind, detail)) = diverged {
            return Err(failure(index, edit, kind, detail));
        }
    }
    let report = verify_functional(&incremental.crossbar, &network, cfg.samples)
        .map_err(|e| failure(index, edit, "functional-divergence", format!("verify: {e}")))?;
    if let Some(witness) = report.mismatches.first() {
        let bits: String = witness.iter().map(|&b| if b { '1' } else { '0' }).collect();
        return Err(failure(
            index,
            edit,
            "functional-divergence",
            format!(
                "crossbar and netlist disagree on x={bits} ({} of {} assignments diverge)",
                report.mismatches.len(),
                report.checked
            ),
        ));
    }
    Ok(())
}

/// Replays `case` through an [`EditSession`] and proves it equivalent to
/// cold synthesis after the base state and after **every** edit.
///
/// Edits both sides refuse are skipped (so the shrinker may drop stream
/// prefixes freely); an edit only *one* side refuses is itself a
/// divergence.
///
/// # Errors
///
/// The first [`EditStreamFailure`], boxed (it carries full provenance).
pub fn check_edit_stream(
    case: &EditCase,
    cfg: &EditCheckConfig,
) -> Result<EditStreamOutcome, Box<EditStreamFailure>> {
    let mut session = EditSession::new(
        &case.base,
        EditSessionConfig {
            synthesis: cfg.synthesis.clone(),
            session: cfg.session.clone(),
            ..EditSessionConfig::default()
        },
    )
    .map_err(|e| failure(None, None, "synthesis", format!("base synthesis: {e}")))?;
    let mut shadow = EditableNetlist::from_network(&case.base);
    check_state(session.result(), &shadow, cfg, None, None)?;

    let mut checked = 0usize;
    let mut skipped = 0usize;
    for (i, edit) in case.edits.iter().enumerate() {
        let shadow_refusal: Option<EditError> = shadow.apply(edit).err();
        let incremental = session.apply(edit);
        match (shadow_refusal, incremental) {
            (Some(_), Err(_)) => skipped += 1,
            (Some(want), Ok(_)) => {
                return Err(failure(
                    Some(i),
                    Some(edit),
                    "refusal-divergence",
                    format!("cold side refused (`{want}`) but the session accepted"),
                ));
            }
            (None, Err(got)) => {
                return Err(failure(
                    Some(i),
                    Some(edit),
                    "refusal-divergence",
                    format!("session refused (`{got}`) but the edit is valid"),
                ));
            }
            (None, Ok(outcome)) => {
                check_state(&outcome.result, &shadow, cfg, Some(i), Some(edit))?;
                checked += 1;
            }
        }
    }
    Ok(EditStreamOutcome {
        edits_checked: checked,
        edits_skipped: skipped,
        stats: session.stats(),
    })
}

/// Shrinks a failing case over its edit stream: first truncates to the
/// shortest failing prefix, then drops individual edits while the failure
/// reproduces. The base network is left alone (edits name its nets).
pub fn shrink_edit_case<F>(case: &EditCase, budget: &Budget, still_fails: F) -> EditCase
where
    F: Fn(&EditCase) -> bool,
{
    if !still_fails(case) {
        return case.clone();
    }
    let mut best = case.clone();
    // Shortest failing prefix (the failure index bounds it, but the
    // closure is the only ground truth the shrinker trusts).
    for k in 0..best.edits.len() {
        if budget.check().is_err() {
            return best;
        }
        let candidate = EditCase {
            base: best.base.clone(),
            edits: best.edits[..k].to_vec(),
        };
        if still_fails(&candidate) {
            best = candidate;
            break;
        }
    }
    // Drop individual edits, rescanning until a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = best.edits.len();
        while i > 0 {
            i -= 1;
            if budget.check().is_err() {
                return best;
            }
            let mut edits = best.edits.clone();
            edits.remove(i);
            let candidate = EditCase {
                base: best.base.clone(),
                edits,
            };
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            }
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Corpus persistence (`<test>.<seed>.edits`)
// ---------------------------------------------------------------------------

/// Serializes an [`EditCase`] to the corpus text format: `edit:` lines
/// followed by the base netlist as BLIF.
pub fn write_edit_case(case: &EditCase) -> String {
    let mut text = String::new();
    for edit in &case.edits {
        text.push_str(&format!("edit: {edit}\n"));
    }
    text.push_str(&blif::write(&case.base));
    text
}

/// Parses the corpus text format (the inverse of [`write_edit_case`];
/// `#` comment lines are ignored everywhere).
///
/// # Errors
///
/// The first malformed edit line or the BLIF parse error.
pub fn parse_edit_case(text: &str) -> Result<EditCase, String> {
    let mut edits = Vec::new();
    let mut rest = String::new();
    for line in text.lines() {
        match line.trim().strip_prefix("edit:") {
            Some(edit) => edits.push(parse_edit(edit.trim())?),
            None => {
                rest.push_str(line);
                rest.push('\n');
            }
        }
    }
    let base = blif::parse(&rest).map_err(|e| format!("base netlist: {e}"))?;
    Ok(EditCase { base, edits })
}

/// Persists a shrunk edit-stream counterexample with a provenance header,
/// next to the corpus's network counterexamples. Returns the path, or
/// `None` when the corpus is unwritable (best-effort, like the rest of
/// the corpus).
pub fn persist_edit_case(
    corpus: &Corpus,
    test: &str,
    seed: u64,
    case: &EditCase,
    detail: &str,
) -> Option<PathBuf> {
    let path = corpus.dir().join(format!("{test}.{seed}.edits"));
    let _ = std::fs::create_dir_all(corpus.dir());
    let mut text = String::new();
    text.push_str("# shrunk incremental counterexample — replayed before fresh cases\n");
    text.push_str(&format!("# test: {test}\n# seed: {seed}\n"));
    for line in detail.lines() {
        text.push_str(&format!("# {line}\n"));
    }
    text.push_str(&write_edit_case(case));
    flowc_report::write_atomic(&path, &text).ok()?;
    Some(path)
}

/// Loads every persisted edit-stream counterexample for `test`, sorted by
/// path. Unparseable files surface as `Err` like the network corpus.
#[allow(clippy::type_complexity)]
pub fn load_edit_cases(corpus: &Corpus, test: &str) -> Vec<(PathBuf, Result<EditCase, String>)> {
    let prefix = format!("{test}.");
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(corpus.dir()) {
        Err(_) => return Vec::new(),
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "edits")
                    && p.file_name()
                        .and_then(|f| f.to_str())
                        .is_some_and(|f| f.starts_with(&prefix))
            })
            .collect(),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let case = std::fs::read_to_string(&p)
                .map_err(|e| e.to_string())
                .and_then(|text| parse_edit_case(&text));
            (p, case)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_streams_always_apply_cleanly() {
        let gen = EditStreamGen::default();
        for seed in 0..16 {
            let mut rng = Rng::new(seed);
            let case = gen.generate(&mut rng);
            assert_eq!(case.edits.len(), gen.edits);
            let mut nl = EditableNetlist::from_network(&case.base);
            for edit in &case.edits {
                nl.apply(edit)
                    .unwrap_or_else(|e| panic!("seed {seed}: `{edit}`: {e}"));
            }
            nl.materialize().unwrap().validate().unwrap();
        }
    }

    #[test]
    fn edit_cases_round_trip_through_the_corpus_format() {
        let mut rng = Rng::new(7);
        let case = EditStreamGen::default().generate(&mut rng);
        let text = write_edit_case(&case);
        let back = parse_edit_case(&text).unwrap();
        assert_eq!(back.edits, case.edits);
        assert_eq!(
            back.base.num_inputs(),
            case.base.num_inputs(),
            "blif round-trip lost inputs"
        );
        assert_eq!(back.base.num_outputs(), case.base.num_outputs());
    }

    #[test]
    fn a_small_stream_checks_clean() {
        let gen = EditStreamGen {
            shape: NetworkGen {
                num_inputs: 3,
                max_gates: 4,
                max_outputs: 2,
            },
            edits: 3,
        };
        let mut rng = Rng::new(42);
        let case = gen.generate(&mut rng);
        let outcome =
            check_edit_stream(&case, &EditCheckConfig::default()).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(outcome.edits_checked + outcome.edits_skipped, 3);
    }

    #[test]
    fn the_shrinker_reaches_a_minimal_failing_stream() {
        let mut rng = Rng::new(11);
        let case = EditStreamGen::default().generate(&mut rng);
        // A planted "bug": any stream containing a drop-output fails.
        let planted = |c: &EditCase| {
            c.edits
                .iter()
                .any(|e| matches!(e, NetlistEdit::DropOutput { .. }))
        };
        if !planted(&case) {
            return; // seed didn't draw one; other seeds cover it
        }
        let shrunk = shrink_edit_case(&case, &Budget::unlimited(), planted);
        assert_eq!(shrunk.edits.len(), 1, "{:?}", shrunk.edits);
        assert!(matches!(shrunk.edits[0], NetlistEdit::DropOutput { .. }));
    }
}

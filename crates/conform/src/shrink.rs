//! Delta-debugging shrinker for failing networks.
//!
//! Given a network on which a predicate fails, the shrinker greedily
//! applies structure-reducing rewrites — drop an output, delete a gate
//! (rewiring its uses to one of its operands), drop an operand of a wide
//! gate, prune logic unreachable from the outputs — re-running the
//! predicate after each candidate and keeping every reduction that still
//! fails. The result is a locally minimal counterexample: no single rewrite
//! can shrink it further.
//!
//! Candidates are materialized through [`flowc_logic::Network`]'s checked
//! constructors and validated before the predicate ever sees them, so a
//! shrunk netlist can never contain dangling `NetId`s.

use flowc_budget::Budget;
use flowc_logic::{GateKind, NetId, Network};

/// The outcome of a shrink run.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The locally minimal failing network.
    pub network: Network,
    /// Accepted reduction steps.
    pub steps: usize,
    /// Candidates evaluated (accepted + rejected).
    pub candidates_tried: usize,
    /// Whether the budget expired before reaching a local minimum.
    pub budget_exhausted: bool,
}

/// A mutable intermediate representation: signals are inputs first, then
/// one per gate, and gates may only reference earlier signals — exactly the
/// invariant `Network` enforces, kept explicit so rewrites stay total.
#[derive(Debug, Clone)]
struct Ir {
    name: String,
    num_inputs: usize,
    /// Gate `g` drives signal `num_inputs + g`.
    gates: Vec<(GateKind, Vec<usize>)>,
    outputs: Vec<usize>,
}

impl Ir {
    fn from_network(network: &Network) -> Ir {
        // Map net ids to signal indices. Inputs keep their input order;
        // gate outputs follow in gate order (inputs and gates may interleave
        // in net-id space, e.g. after BLIF parsing).
        let mut signal_of = vec![usize::MAX; network.num_nets()];
        for (i, &net) in network.inputs().iter().enumerate() {
            signal_of[net.index()] = i;
        }
        let base = network.num_inputs();
        for (g, gate) in network.gates().iter().enumerate() {
            signal_of[gate.output.index()] = base + g;
        }
        let gates = network
            .gates()
            .iter()
            .map(|gate| {
                let ops = gate.inputs.iter().map(|n| signal_of[n.index()]).collect();
                (gate.kind, ops)
            })
            .collect();
        let outputs = network
            .outputs()
            .iter()
            .map(|o| signal_of[o.index()])
            .collect();
        Ir {
            name: network.name().to_string(),
            num_inputs: base,
            gates,
            outputs,
        }
    }

    /// Materializes through the checked `Network` constructors. Returns
    /// `None` when a rewrite produced an illegal arity (the caller skips
    /// such candidates).
    fn to_network(&self) -> Option<Network> {
        let mut n = Network::new(self.name.clone());
        let mut ids: Vec<NetId> = (0..self.num_inputs)
            .map(|i| n.add_input(format!("x{i}")))
            .collect();
        for (g, (kind, ops)) in self.gates.iter().enumerate() {
            let operand_ids: Vec<NetId> = ops.iter().map(|&s| ids[s]).collect();
            let out = n.add_gate(*kind, &operand_ids, format!("g{g}")).ok()?;
            ids.push(out);
        }
        if self.outputs.is_empty() {
            return None;
        }
        for &o in &self.outputs {
            n.mark_output(ids[o]);
        }
        debug_assert!(
            n.validate().is_ok(),
            "shrinker materialized an invalid network: {:?}",
            n.validate()
        );
        n.validate().ok()?;
        Some(n)
    }

    /// Drops output `idx` (keeping at least one).
    fn drop_output(&self, idx: usize) -> Option<Ir> {
        if self.outputs.len() <= 1 {
            return None;
        }
        let mut next = self.clone();
        next.outputs.remove(idx);
        Some(next)
    }

    /// Deletes gate `g`, rewiring every use of its signal to `replacement`
    /// (one of its operands, hence an earlier signal).
    fn remove_gate(&self, g: usize, replacement: usize) -> Ir {
        let removed = self.num_inputs + g;
        debug_assert!(replacement < removed);
        let map = |s: usize| -> usize {
            if s == removed {
                replacement
            } else if s > removed {
                s - 1
            } else {
                s
            }
        };
        let mut next = self.clone();
        next.gates.remove(g);
        for (_, ops) in &mut next.gates {
            for s in ops.iter_mut() {
                *s = map(*s);
            }
        }
        for s in &mut next.outputs {
            *s = map(*s);
        }
        next
    }

    /// Drops operand `k` of gate `g` when the kind stays legal (n-ary kinds
    /// with more than two operands).
    fn drop_operand(&self, g: usize, k: usize) -> Option<Ir> {
        let (kind, ops) = &self.gates[g];
        let reducible = matches!(
            kind,
            GateKind::And
                | GateKind::Or
                | GateKind::Nand
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        );
        if !reducible || ops.len() <= 2 {
            return None;
        }
        let mut next = self.clone();
        next.gates[g].1.remove(k);
        Some(next)
    }

    /// Removes every gate and input unreachable from the outputs. Returns
    /// `None` when nothing is dead.
    fn prune_dead(&self) -> Option<Ir> {
        let total = self.num_inputs + self.gates.len();
        let mut live = vec![false; total];
        for &o in &self.outputs {
            live[o] = true;
        }
        for g in (0..self.gates.len()).rev() {
            if live[self.num_inputs + g] {
                for &s in &self.gates[g].1 {
                    live[s] = true;
                }
            }
        }
        if live.iter().all(|&l| l) {
            return None;
        }
        // Keep at least one input so the network stays a function of
        // something (zero-input networks trip nothing interesting and make
        // assignment handling degenerate).
        if !live[..self.num_inputs].iter().any(|&l| l) {
            live[0] = true;
        }
        let mut new_index = vec![usize::MAX; total];
        let mut next_input = 0usize;
        for i in 0..self.num_inputs {
            if live[i] {
                new_index[i] = next_input;
                next_input += 1;
            }
        }
        let mut gates = Vec::new();
        for (g, (kind, ops)) in self.gates.iter().enumerate() {
            let s = self.num_inputs + g;
            if live[s] {
                new_index[s] = next_input + gates.len();
                gates.push((*kind, ops.iter().map(|&o| new_index[o]).collect()));
            }
        }
        Some(Ir {
            name: self.name.clone(),
            num_inputs: next_input,
            gates,
            outputs: self.outputs.iter().map(|&o| new_index[o]).collect(),
        })
    }
}

/// Shrinks `network` to a locally minimal form on which `still_fails`
/// remains true. `still_fails` must be true for `network` itself (otherwise
/// the input is returned unchanged). The budget bounds the whole run: on
/// deadline/cancellation the best reduction found so far is returned with
/// `budget_exhausted` set.
pub fn shrink_network(
    network: &Network,
    still_fails: &mut dyn FnMut(&Network) -> bool,
    budget: &Budget,
) -> ShrinkResult {
    let mut current = Ir::from_network(network);
    // Must-stay clone: the caller keeps the original while shrinking
    // mutates candidates; `best` is the returned owned reduction.
    let mut best = network.clone();
    let mut steps = 0usize;
    let mut candidates_tried = 0usize;
    let mut budget_exhausted = false;

    'outer: loop {
        let mut accepted = false;
        for candidate in candidates(&current) {
            if budget.check().is_err() {
                budget_exhausted = true;
                break 'outer;
            }
            let Some(net) = candidate.to_network() else {
                continue;
            };
            candidates_tried += 1;
            if still_fails(&net) {
                current = candidate;
                best = net;
                steps += 1;
                accepted = true;
                break;
            }
        }
        if !accepted {
            break;
        }
    }

    debug_assert!(best.validate().is_ok());
    ShrinkResult {
        network: best,
        steps,
        candidates_tried,
        budget_exhausted,
    }
}

/// Candidate rewrites in decreasing aggressiveness: dead-logic pruning
/// first (free), then output drops, gate deletions (later gates first, each
/// operand as the replacement), then operand drops.
fn candidates(ir: &Ir) -> Vec<Ir> {
    let mut out = Vec::new();
    if let Some(pruned) = ir.prune_dead() {
        out.push(pruned);
    }
    for idx in 0..ir.outputs.len() {
        if let Some(c) = ir.drop_output(idx) {
            out.push(c);
        }
    }
    for g in (0..ir.gates.len()).rev() {
        let arity = ir.gates[g].1.len();
        if arity == 0 {
            // Constant gates have no replacement operand; deletable only
            // once dead (handled by prune_dead).
            continue;
        }
        for k in 0..arity {
            let replacement = ir.gates[g].1[k];
            out.push(ir.remove_gate(g, replacement));
        }
    }
    for g in 0..ir.gates.len() {
        for k in 0..ir.gates[g].1.len() {
            if let Some(c) = ir.drop_operand(g, k) {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::NetworkGen;
    use crate::rng::Rng;
    use flowc_logic::GateKind;

    /// Predicate: the network still contains an XOR gate (the shape of the
    /// `broken-oracle` fault).
    fn has_xor(n: &Network) -> bool {
        n.gates().iter().any(|g| g.kind == GateKind::Xor)
    }

    #[test]
    fn shrinks_xor_witness_to_a_couple_of_gates() {
        let shape = NetworkGen::new(5, 12);
        let mut found = 0usize;
        for seed in 0..64 {
            let net = shape.generate(&mut Rng::new(seed));
            if !has_xor(&net) {
                continue;
            }
            found += 1;
            let r = shrink_network(&net, &mut |n| has_xor(n), &Budget::unlimited());
            assert!(has_xor(&r.network), "seed {seed}: shrink lost the bug");
            r.network.validate().unwrap();
            assert!(
                r.network.num_gates() <= 2,
                "seed {seed}: {} gates survive shrinking",
                r.network.num_gates()
            );
            assert_eq!(r.network.num_outputs(), 1, "seed {seed}");
            assert!(!r.budget_exhausted);
        }
        assert!(found >= 5, "only {found}/64 seeds produced XOR gates");
    }

    #[test]
    fn semantic_predicate_shrinks_and_stays_valid() {
        // Predicate: output 0 is not a constant function (any dependence on
        // the inputs survives aggressive reduction).
        let depends_on_inputs = |n: &Network| -> bool {
            let k = n.num_inputs();
            let mut seen = std::collections::HashSet::new();
            for bits in 0..1usize << k.min(10) {
                let a: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                seen.insert(n.simulate(&a).unwrap()[0]);
            }
            seen.len() > 1
        };
        let shape = NetworkGen::new(4, 10);
        for seed in 0..16 {
            let net = shape.generate(&mut Rng::new(seed));
            if !depends_on_inputs(&net) {
                continue;
            }
            let r = shrink_network(&net, &mut |n| depends_on_inputs(n), &Budget::unlimited());
            r.network.validate().unwrap();
            assert!(depends_on_inputs(&r.network));
            // A single buffer/inverter over one input suffices: the minimum
            // is tiny.
            assert!(r.network.num_gates() <= 2, "seed {seed}");
        }
    }

    #[test]
    fn exhausted_budget_returns_the_original() {
        let shape = NetworkGen::new(4, 10);
        let net = shape.generate(&mut Rng::new(1));
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let r = shrink_network(&net, &mut |_| true, &budget);
        assert!(r.budget_exhausted);
        assert_eq!(r.network.num_gates(), net.num_gates());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn ir_roundtrip_preserves_semantics() {
        let shape = NetworkGen::default();
        for seed in 0..32 {
            let net = shape.generate(&mut Rng::new(seed));
            let back = Ir::from_network(&net).to_network().unwrap();
            let k = net.num_inputs();
            for bits in 0..1usize << k {
                let a: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    net.simulate(&a).unwrap(),
                    back.simulate(&a).unwrap(),
                    "seed {seed}"
                );
            }
        }
    }
}

//! Conformance subsystem: multi-oracle differential fuzzing with shrinking
//! and a persisted counterexample corpus.
//!
//! This crate is the testing backbone of the workspace. It packages what the
//! integration suites used to carry as private copies — the splitmix64
//! streams, the seeded case generators, the regression-seed persistence —
//! and builds the conformance machinery on top:
//!
//! - [`rng`] — deterministic `splitmix64` streams ([`Rng`]).
//! - [`env`] — lenient `PROPTEST_CASES` / `PROPTEST_SEED` parsing.
//! - [`gen`] — composable generators: networks ([`NetworkGen`]), BLIF/PLA
//!   sources, undirected graphs, defect maps.
//! - [`oracle`] — the multi-oracle differential checker: every case runs
//!   through the brute-force simulator, the shared-BDD evaluator, the full
//!   COMPACT pipeline under every [`flowc_compact::VhStrategy`] and a small
//!   γ sweep, and the three baseline mappers; the first disagreeing oracle
//!   pair is reported with full provenance ([`Disagreement`]).
//! - [`editstream`] — streaming-edit cases ([`EditStreamGen`]) and the
//!   incremental-vs-cold differential oracle for
//!   [`flowc_compact::EditSession`], with an edit-prefix shrinker and its
//!   own `.edits` corpus format.
//! - [`shrink`] — a delta-debugging minimizer for failing networks.
//! - [`corpus`] — the persisted corpus: regression seeds plus shrunk
//!   counterexamples as replayable BLIF, replayed before fresh cases.
//! - [`harness`] — the per-test driver tying the above together.
//! - [`fixtures`] — canonical circuits (the paper's Fig. 2, etc.).
//!
//! The `conform-fuzz` binary wraps the same machinery in a time-boxed
//! command-line fuzzer wired into [`flowc_budget`] deadlines.
//!
//! The `broken-oracle` cargo feature compiles in a deliberately miscompiled
//! oracle (XOR lowered as OR) used to prove, in CI, that the differential
//! loop actually finds, shrinks, and persists counterexamples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod editstream;
pub mod env;
pub mod fixtures;
pub mod gen;
pub mod harness;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use corpus::Corpus;
pub use editstream::{
    check_edit_stream, load_edit_cases, parse_edit_case, persist_edit_case, shrink_edit_case,
    write_edit_case, EditCase, EditCheckConfig, EditStreamFailure, EditStreamGen,
    EditStreamOutcome,
};
pub use gen::NetworkGen;
pub use harness::Harness;
pub use oracle::{
    default_gammas, differential_check, shipped_oracles, shipped_oracles_budgeted, BackendOracle,
    CaseOutcome, DiffConfig, Disagreement, Oracle,
};
pub use rng::{splitmix64, Rng};
pub use shrink::{shrink_network, ShrinkResult};

//! The deterministic case RNG shared by every property and fuzzing suite.
//!
//! The harness derives one statistically independent splitmix64 stream per
//! case from a sequential seed, so runs are reproducible bit-for-bit from a
//! single `u64`. This is the single source of randomness for conformance
//! testing — integration tests re-export [`Rng`] instead of keeping private
//! copies (the same consolidation `flowc_xbar::rng` did for the stochastic
//! analyses).

/// One splitmix64 step: advances `state` and returns the next output.
///
/// splitmix64 passes BigCrush and, unlike xorshift, has no weak seeds — any
/// `u64` (including 0) starts a usable stream, which matters because case
/// seeds are drawn sequentially.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic case-local random number generator.
///
/// Cloning snapshots the stream: the shrinker relies on this to replay a
/// property with the exact post-generation RNG state against every reduced
/// candidate.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, and `below`/`range` are the real API
    pub fn next(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next() % bound as u64) as usize
        }
    }

    /// Uniform value in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi.saturating_sub(lo))
    }

    /// A fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn clone_snapshots_state() {
        let mut a = Rng::new(9);
        a.next();
        let mut b = a.clone();
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn bounds_are_respected_and_degenerate_ranges_are_safe() {
        let mut r = Rng::new(3);
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(5, 5), 5);
        assert_eq!(r.range(5, 3), 5);
        for _ in 0..200 {
            assert!(r.below(7) < 7);
            let v = r.range(2, 9);
            assert!((2..9).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        // splitmix64 has no fixpoint at 0; the stream must move.
        let a = r.next();
        let b = r.next();
        assert_ne!(a, b);
    }
}

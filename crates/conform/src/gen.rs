//! Composable deterministic generators for conformance cases.
//!
//! Everything here is a pure function of an [`Rng`] stream, so any case can
//! be regenerated from its seed alone. The network generator is the one the
//! property suites have always used (promoted from
//! `tests/property_based.rs`), kept bit-compatible so existing regression
//! seeds keep designating the same circuits.

use flowc_graph::UGraph;
use flowc_logic::{blif, pla, GateKind, NetId, Network};
use flowc_xbar::fault::{inject, DefectMap, DefectRates};

use crate::rng::Rng;

/// Shape parameters for random combinational networks.
#[derive(Debug, Clone, Copy)]
pub struct NetworkGen {
    /// Primary inputs.
    pub num_inputs: usize,
    /// Upper bound (exclusive of 1) on the gate count; at least one gate is
    /// always created.
    pub max_gates: usize,
    /// Upper bound (exclusive of 1) on the output count; at least one net
    /// is always marked.
    pub max_outputs: usize,
}

impl Default for NetworkGen {
    fn default() -> Self {
        NetworkGen {
            num_inputs: 5,
            max_gates: 12,
            max_outputs: 5,
        }
    }
}

impl NetworkGen {
    /// A generator for networks of up to `max_gates` gates over
    /// `num_inputs` inputs (and up to 4 outputs, the historical default).
    pub fn new(num_inputs: usize, max_gates: usize) -> Self {
        NetworkGen {
            num_inputs,
            max_gates,
            ..Default::default()
        }
    }

    /// Draws a random combinational network. All gate kinds are reachable;
    /// outputs may repeat and may be primary inputs, matching everything
    /// the BLIF/PLA parsers can produce.
    pub fn generate(&self, rng: &mut Rng) -> Network {
        let mut n = Network::new("random");
        let mut nets: Vec<NetId> = (0..self.num_inputs)
            .map(|i| n.add_input(format!("x{i}")))
            .collect();
        let num_gates = rng.range(1, self.max_gates.max(2));
        for g in 0..num_gates {
            let arity = rng.range(1, 4);
            let operands: Vec<NetId> = (0..arity).map(|_| nets[rng.below(nets.len())]).collect();
            let kind_sel = rng.below(7) as u8;
            let out = match kind_sel {
                0 => n.add_gate(GateKind::Not, &operands[..1], format!("g{g}")),
                1 if operands.len() >= 2 => n.add_gate(GateKind::And, &operands, format!("g{g}")),
                2 if operands.len() >= 2 => n.add_gate(GateKind::Or, &operands, format!("g{g}")),
                3 if operands.len() >= 2 => n.add_gate(GateKind::Xor, &operands, format!("g{g}")),
                4 if operands.len() >= 2 => n.add_gate(GateKind::Nand, &operands, format!("g{g}")),
                5 if operands.len() >= 2 => n.add_gate(GateKind::Nor, &operands, format!("g{g}")),
                6 if operands.len() == 3 => n.add_gate(GateKind::Mux, &operands, format!("g{g}")),
                _ => n.add_gate(GateKind::Buf, &operands[..1], format!("g{g}")),
            }
            .expect("arities are satisfied by construction");
            nets.push(out);
        }
        for _ in 0..rng.range(1, self.max_outputs.max(2)) {
            let net = nets[rng.below(nets.len())];
            n.mark_output(net);
        }
        debug_assert!(n.validate().is_ok(), "generator emitted an invalid network");
        n
    }
}

/// A random simple undirected graph over `n` vertices with expected degree
/// up to ~6 (the regime where odd-cycle structure is rich).
pub fn gen_graph(rng: &mut Rng, n: usize) -> UGraph {
    let mut g = UGraph::new(n);
    for _ in 0..rng.below(3 * n) {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// A random defect map for a `rows × cols` crossbar with uniform per-class
/// defect rate `rate`, drawn deterministically from the case stream.
pub fn gen_defect_map(rng: &mut Rng, rows: usize, cols: usize, rate: f64) -> DefectMap {
    inject(rows, cols, &DefectRates::uniform(rate), rng.next())
}

/// A random BLIF source: a generated network serialized through the
/// production writer, so parser conformance cases exercise real `.names`
/// tables (including the writer's XOR/MUX decompositions).
pub fn gen_blif(rng: &mut Rng, shape: &NetworkGen) -> String {
    blif::write(&shape.generate(rng))
}

/// A random PLA source, when the generated function is materializable as a
/// minterm list (the PLA writer enumerates the onset, so wide-input shapes
/// may decline).
pub fn gen_pla(rng: &mut Rng, shape: &NetworkGen) -> Option<String> {
    pla::write(&shape.generate(rng)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networks_are_valid_and_deterministic() {
        let shape = NetworkGen::default();
        for seed in 0..64 {
            let a = shape.generate(&mut Rng::new(seed));
            let b = shape.generate(&mut Rng::new(seed));
            a.validate().unwrap();
            assert!(a.num_gates() >= 1 && a.num_outputs() >= 1);
            assert_eq!(blif::write(&a), blif::write(&b), "seed {seed}");
        }
    }

    #[test]
    fn generated_blif_reparses_equivalently() {
        let shape = NetworkGen::new(4, 8);
        for seed in 0..16 {
            let mut rng = Rng::new(seed);
            let net = shape.generate(&mut rng);
            let back = blif::parse(&blif::write(&net)).expect("own output parses");
            for bits in 0..1usize << 4 {
                let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    back.simulate(&a).unwrap(),
                    net.simulate(&a).unwrap(),
                    "seed {seed} assignment {a:?}"
                );
            }
        }
    }

    #[test]
    fn generated_pla_reparses_equivalently() {
        let shape = NetworkGen::new(4, 6);
        let mut produced = 0;
        for seed in 0..16 {
            let mut rng = Rng::new(seed);
            let net = shape.generate(&mut rng);
            let Ok(text) = pla::write(&net) else { continue };
            produced += 1;
            let back = pla::parse(&text).expect("own output parses");
            for bits in 0..1usize << 4 {
                let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(back.simulate(&a).unwrap(), net.simulate(&a).unwrap());
            }
        }
        assert!(produced > 0, "PLA generation never succeeded");
    }

    #[test]
    fn graphs_and_defect_maps_are_deterministic() {
        let g1 = gen_graph(&mut Rng::new(11), 12);
        let g2 = gen_graph(&mut Rng::new(11), 12);
        assert_eq!(g1.edges(), g2.edges());
        let d1 = gen_defect_map(&mut Rng::new(5), 8, 8, 0.05);
        let d2 = gen_defect_map(&mut Rng::new(5), 8, 8, 0.05);
        assert_eq!(d1.len(), d2.len());
    }
}

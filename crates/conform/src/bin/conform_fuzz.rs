//! `conform-fuzz` — time-boxed multi-oracle differential fuzzing.
//!
//! Generates random networks, runs each through every shipped oracle (see
//! `flowc_conform::oracle`), and on the first disagreement shrinks the
//! network to a local minimum and persists it (seed + BLIF) into the
//! regression corpus. Persisted corpus entries for the `conform-fuzz` test
//! name replay before any fresh case.
//!
//! The whole run is wired into a `flowc_budget` deadline: hitting it mid-run
//! is a *clean* exit (code 0, with a note), so CI jobs can pin wall-clock
//! without flaking. Exit codes: 0 = no disagreement, 1 = disagreement found
//! (counterexample persisted), 2 = usage error.

use std::process::ExitCode;
use std::time::Duration;

use flowc_budget::Budget;
use flowc_conform::corpus::Corpus;
use flowc_conform::gen::NetworkGen;
use flowc_conform::oracle::{
    default_gammas, differential_check, shipped_oracles_budgeted, DiffConfig, Disagreement, Oracle,
};
use flowc_conform::rng::{splitmix64, Rng};
use flowc_conform::shrink::shrink_network;
use flowc_logic::Network;

/// The corpus test-name under which this binary persists and replays.
const TEST_NAME: &str = "conform-fuzz";

#[derive(Debug)]
struct Options {
    cases: usize,
    deadline: Duration,
    seed: u64,
    corpus: std::path::PathBuf,
    max_inputs: usize,
    max_gates: usize,
    symbolic: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cases: 256,
            deadline: Duration::from_secs(60),
            seed: 0xC0F0_ACC5,
            corpus: std::path::PathBuf::from("tests/regressions"),
            max_inputs: 5,
            max_gates: 12,
            symbolic: true,
        }
    }
}

const USAGE: &str = "\
conform-fuzz — multi-oracle differential fuzzing for the COMPACT pipeline

USAGE:
    conform-fuzz [OPTIONS]

OPTIONS:
    --cases <N>        Fresh cases to attempt (default 256)
    --deadline <DUR>   Wall-clock budget, e.g. 60s, 500ms, 2m, or bare
                       seconds (default 60s); hitting it exits cleanly
    --seed <N>         Base seed for the case stream (default 0xC0F0ACC5;
                       decimal or 0x-hex)
    --corpus <DIR>     Corpus directory for replay + persistence
                       (default tests/regressions)
    --max-inputs <N>   Primary inputs per generated network (default 5)
    --max-gates <N>    Gate-count upper bound per network (default 12)
    --no-symbolic      Skip the symbolic equivalence arm
    --help             Show this help
";

/// Parses `60s` / `500ms` / `2m` / bare seconds.
fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (number, unit) = match text.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => text.split_at(i),
        None => (text, "s"),
    };
    let value: f64 = number
        .parse()
        .map_err(|_| format!("bad duration `{text}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("bad duration `{text}`"));
    }
    let secs = match unit {
        "ms" => value / 1000.0,
        "s" => value,
        "m" => value * 60.0,
        "h" => value * 3600.0,
        other => return Err(format!("unknown duration unit `{other}` in `{text}`")),
    };
    Ok(Duration::from_secs_f64(secs))
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let t = text.trim().replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad number `{text}`"))
    } else {
        t.parse().map_err(|_| format!("bad number `{text}`"))
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--cases" => opts.cases = parse_u64(value("--cases")?)? as usize,
            "--deadline" => opts.deadline = parse_duration(value("--deadline")?)?,
            "--seed" => opts.seed = parse_u64(value("--seed")?)?,
            "--corpus" => opts.corpus = value("--corpus")?.into(),
            "--max-inputs" => opts.max_inputs = parse_u64(value("--max-inputs")?)?.max(1) as usize,
            "--max-gates" => opts.max_gates = parse_u64(value("--max-gates")?)?.max(1) as usize,
            "--no-symbolic" => opts.symbolic = false,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Re-checks a candidate during shrinking: any disagreement keeps it.
fn disagrees(network: &Network, oracles: &[Box<dyn Oracle>], cfg: &DiffConfig) -> bool {
    differential_check(network, oracles, cfg).is_err()
}

fn report_and_persist(
    corpus: &Corpus,
    seed: u64,
    network: &Network,
    disagreement: &Disagreement,
    oracles: &[Box<dyn Oracle>],
    cfg: &DiffConfig,
    budget: &Budget,
) {
    eprintln!("conform-fuzz: DISAGREEMENT on seed {seed}");
    eprintln!("  {disagreement}");
    corpus.persist_seed(TEST_NAME, seed);
    // Shrink within what's left of the deadline (at least a short grace
    // window so a last-instant find still gets minimized a little).
    let shrink_budget = Budget::unlimited().with_deadline(
        budget
            .remaining()
            .unwrap_or(Duration::from_secs(30))
            .max(Duration::from_secs(2)),
    );
    let shrunk = shrink_network(
        network,
        &mut |candidate| disagrees(candidate, oracles, cfg),
        &shrink_budget,
    );
    eprintln!(
        "  shrunk {} → {} gates ({} candidates tried{})",
        network.num_gates(),
        shrunk.network.num_gates(),
        shrunk.candidates_tried,
        if shrunk.budget_exhausted {
            ", shrink budget exhausted"
        } else {
            ""
        }
    );
    let detail = format!(
        "{disagreement}\nshrunk from {} gates to {}",
        network.num_gates(),
        shrunk.network.num_gates()
    );
    match corpus.persist_counterexample(TEST_NAME, seed, &shrunk.network, &detail) {
        Some(path) => eprintln!("  counterexample persisted to {}", path.display()),
        None => eprintln!("  warning: could not persist counterexample (read-only corpus?)"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let corpus = Corpus::new(&opts.corpus);
    // The run deadline bounds every oracle's synthesis too (the panel
    // budget), so a pathological case cannot stall the campaign.
    let budget = Budget::unlimited().with_deadline(opts.deadline);
    let oracles = shipped_oracles_budgeted(&default_gammas(), &budget);
    let cfg = DiffConfig {
        symbolic: opts.symbolic,
        ..DiffConfig::default()
    };
    let shape = NetworkGen::new(opts.max_inputs, opts.max_gates);
    eprintln!(
        "conform-fuzz: {} oracles, {} cases, deadline {:?}, seed {:#x}, corpus {}",
        oracles.len(),
        opts.cases,
        opts.deadline,
        opts.seed,
        corpus.dir().display()
    );

    // Phase 1: replay persisted counterexamples (minimal known bugs first).
    for (path, loaded) in corpus.counterexamples(TEST_NAME) {
        let network = match loaded {
            Ok(n) => n,
            Err(e) => {
                eprintln!("conform-fuzz: corrupt corpus entry {}: {e}", path.display());
                return ExitCode::from(1);
            }
        };
        if let Err(d) = differential_check(&network, &oracles, &cfg) {
            eprintln!(
                "conform-fuzz: persisted counterexample {} still disagrees:\n  {d}",
                path.display()
            );
            return ExitCode::from(1);
        }
    }

    // Phase 2: replay persisted seeds, then fresh cases, under the deadline.
    let mut seeds = corpus.load_seeds(TEST_NAME);
    let replayed = seeds.len();
    let mut state = opts.seed;
    seeds.extend((0..opts.cases).map(|_| splitmix64(&mut state)));

    let mut run = 0usize;
    for (i, seed) in seeds.iter().copied().enumerate() {
        if budget.check().is_err() {
            eprintln!(
                "conform-fuzz: deadline reached after {run}/{} cases — clean so far",
                seeds.len()
            );
            return ExitCode::SUCCESS;
        }
        let network = shape.generate(&mut Rng::new(seed));
        if let Err(d) = differential_check(&network, &oracles, &cfg) {
            if i < replayed {
                eprintln!("conform-fuzz: persisted seed {seed} still disagrees:\n  {d}");
                return ExitCode::from(1);
            }
            report_and_persist(&corpus, seed, &network, &d, &oracles, &cfg, &budget);
            return ExitCode::from(1);
        }
        run += 1;
    }

    eprintln!(
        "conform-fuzz: OK — {run} cases ({replayed} replayed) × {} oracles agree",
        oracles.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("45").unwrap(), Duration::from_secs(45));
        assert!(parse_duration("soon").is_err());
        assert!(parse_duration("-3s").is_err());
    }

    #[test]
    fn args_parse() {
        let opts = parse_args(&[
            "--cases".into(),
            "64".into(),
            "--deadline".into(),
            "5s".into(),
            "--seed".into(),
            "0xBEEF".into(),
            "--no-symbolic".into(),
        ])
        .unwrap();
        assert_eq!(opts.cases, 64);
        assert_eq!(opts.deadline, Duration::from_secs(5));
        assert_eq!(opts.seed, 0xBEEF);
        assert!(!opts.symbolic);
        assert!(parse_args(&["--bogus".into()]).is_err());
    }
}

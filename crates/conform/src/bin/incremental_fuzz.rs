//! `incremental-fuzz` — the incremental-vs-cold differential edit-stream
//! fuzzer.
//!
//! Generates a base network plus a stream of netlist edits, replays the
//! stream through a `flowc_compact::EditSession`, and after *every* edit
//! checks the incrementally-maintained design against a cold synthesis of
//! the same netlist: same optimality verdict, same semiperimeter, same
//! functional behavior. On the first divergence the edit stream is shrunk
//! to a minimal failing prefix and persisted (seed + `.edits` file) into
//! the incremental regression corpus, which replays before fresh cases.
//!
//! Exit codes match `conform-fuzz`: 0 = clean (including a clean deadline
//! exit), 1 = divergence found (counterexample persisted), 2 = usage
//! error.

use std::process::ExitCode;
use std::time::Duration;

use flowc_budget::Budget;
use flowc_conform::corpus::Corpus;
use flowc_conform::editstream::{
    check_edit_stream, load_edit_cases, persist_edit_case, shrink_edit_case, EditCase,
    EditCheckConfig, EditStreamFailure, EditStreamGen,
};
use flowc_conform::gen::NetworkGen;
use flowc_conform::rng::{splitmix64, Rng};

/// The corpus test-name under which this binary persists and replays.
const TEST_NAME: &str = "incremental-fuzz";

#[derive(Debug)]
struct Options {
    cases: usize,
    deadline: Duration,
    seed: u64,
    corpus: std::path::PathBuf,
    max_inputs: usize,
    max_gates: usize,
    edits: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cases: 256,
            deadline: Duration::from_secs(60),
            seed: 0x01C0_FACE,
            corpus: std::path::PathBuf::from("tests/regressions/incremental"),
            max_inputs: 5,
            max_gates: 10,
            edits: 8,
        }
    }
}

const USAGE: &str = "\
incremental-fuzz — incremental-vs-cold differential fuzzing over edit streams

USAGE:
    incremental-fuzz [OPTIONS]

OPTIONS:
    --cases <N>        Fresh cases to attempt (default 256)
    --deadline <DUR>   Wall-clock budget, e.g. 60s, 500ms, 2m, or bare
                       seconds (default 60s); hitting it exits cleanly
    --seed <N>         Base seed for the case stream (default 0x1C0FACE;
                       decimal or 0x-hex)
    --corpus <DIR>     Corpus directory for replay + persistence
                       (default tests/regressions/incremental)
    --max-inputs <N>   Primary inputs per base network (default 5)
    --max-gates <N>    Gate-count upper bound per base network (default 10)
    --edits <N>        Edits per stream (default 8)
    --help             Show this help
";

/// Parses `60s` / `500ms` / `2m` / bare seconds.
fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (number, unit) = match text.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => text.split_at(i),
        None => (text, "s"),
    };
    let value: f64 = number
        .parse()
        .map_err(|_| format!("bad duration `{text}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("bad duration `{text}`"));
    }
    let secs = match unit {
        "ms" => value / 1000.0,
        "s" => value,
        "m" => value * 60.0,
        "h" => value * 3600.0,
        other => return Err(format!("unknown duration unit `{other}` in `{text}`")),
    };
    Ok(Duration::from_secs_f64(secs))
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let t = text.trim().replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad number `{text}`"))
    } else {
        t.parse().map_err(|_| format!("bad number `{text}`"))
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--cases" => opts.cases = parse_u64(value("--cases")?)? as usize,
            "--deadline" => opts.deadline = parse_duration(value("--deadline")?)?,
            "--seed" => opts.seed = parse_u64(value("--seed")?)?,
            "--corpus" => opts.corpus = value("--corpus")?.into(),
            "--max-inputs" => opts.max_inputs = parse_u64(value("--max-inputs")?)?.max(1) as usize,
            "--max-gates" => opts.max_gates = parse_u64(value("--max-gates")?)?.max(1) as usize,
            "--edits" => opts.edits = parse_u64(value("--edits")?)?.max(1) as usize,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn report_and_persist(
    corpus: &Corpus,
    seed: u64,
    case: &EditCase,
    failure: &EditStreamFailure,
    cfg: &EditCheckConfig,
    budget: &Budget,
) {
    eprintln!("incremental-fuzz: DIVERGENCE on seed {seed}");
    eprintln!("  {failure}");
    corpus.persist_seed(TEST_NAME, seed);
    let shrink_budget = Budget::unlimited().with_deadline(
        budget
            .remaining()
            .unwrap_or(Duration::from_secs(30))
            .max(Duration::from_secs(2)),
    );
    let shrunk = shrink_edit_case(case, &shrink_budget, |candidate| {
        check_edit_stream(candidate, cfg).is_err()
    });
    eprintln!(
        "  shrunk {} → {} edits",
        case.edits.len(),
        shrunk.edits.len()
    );
    let detail = format!(
        "{failure}\nshrunk from {} edits to {}",
        case.edits.len(),
        shrunk.edits.len()
    );
    match persist_edit_case(corpus, TEST_NAME, seed, &shrunk, &detail) {
        Some(path) => eprintln!("  counterexample persisted to {}", path.display()),
        None => eprintln!("  warning: could not persist counterexample (read-only corpus?)"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let corpus = Corpus::new(&opts.corpus);
    let cfg = EditCheckConfig::default();
    let gen = EditStreamGen {
        shape: NetworkGen::new(opts.max_inputs, opts.max_gates),
        edits: opts.edits,
    };
    let budget = Budget::unlimited().with_deadline(opts.deadline);
    eprintln!(
        "incremental-fuzz: {} cases × {} edits, deadline {:?}, seed {:#x}, corpus {}",
        opts.cases,
        opts.edits,
        opts.deadline,
        opts.seed,
        corpus.dir().display()
    );

    // Phase 1: replay persisted counterexamples (minimal known bugs first).
    for (path, loaded) in load_edit_cases(&corpus, TEST_NAME) {
        let case = match loaded {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "incremental-fuzz: corrupt corpus entry {}: {e}",
                    path.display()
                );
                return ExitCode::from(1);
            }
        };
        if let Err(f) = check_edit_stream(&case, &cfg) {
            eprintln!(
                "incremental-fuzz: persisted counterexample {} still diverges:\n  {f}",
                path.display()
            );
            return ExitCode::from(1);
        }
    }

    // Phase 2: replay persisted seeds, then fresh cases, under the deadline.
    let mut seeds = corpus.load_seeds(TEST_NAME);
    let replayed = seeds.len();
    let mut state = opts.seed;
    seeds.extend((0..opts.cases).map(|_| splitmix64(&mut state)));

    let mut run = 0usize;
    let mut totals = (0usize, 0usize, 0usize, 0usize); // hit, repair, warm, cold
    for (i, seed) in seeds.iter().copied().enumerate() {
        if budget.check().is_err() {
            eprintln!(
                "incremental-fuzz: deadline reached after {run}/{} cases — clean so far",
                seeds.len()
            );
            return ExitCode::SUCCESS;
        }
        let case = gen.generate(&mut Rng::new(seed));
        match check_edit_stream(&case, &cfg) {
            Ok(outcome) => {
                totals.0 += outcome.stats.hits;
                totals.1 += outcome.stats.repairs;
                totals.2 += outcome.stats.warm_starts;
                totals.3 += outcome.stats.cold_solves;
                run += 1;
            }
            Err(f) => {
                if i < replayed {
                    eprintln!("incremental-fuzz: persisted seed {seed} still diverges:\n  {f}");
                    return ExitCode::from(1);
                }
                report_and_persist(&corpus, seed, &case, &f, &cfg, &budget);
                return ExitCode::from(1);
            }
        }
    }

    eprintln!(
        "incremental-fuzz: OK — {run} cases ({replayed} replayed) agree; \
         resolutions: {} hit, {} repaired, {} warm-started, {} cold",
        totals.0, totals.1, totals.2, totals.3
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_and_args_parse() {
        assert_eq!(parse_duration("90s").unwrap(), Duration::from_secs(90));
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert!(parse_duration("later").is_err());
        let opts = parse_args(&[
            "--cases".into(),
            "32".into(),
            "--edits".into(),
            "5".into(),
            "--seed".into(),
            "0xFEED".into(),
        ])
        .unwrap();
        assert_eq!(opts.cases, 32);
        assert_eq!(opts.edits, 5);
        assert_eq!(opts.seed, 0xFEED);
        assert!(parse_args(&["--bogus".into()]).is_err());
    }
}

//! The multi-oracle differential checker.
//!
//! COMPACT's correctness claim is end-to-end: a netlist, its (S)BDD, the
//! VH-labeling, and the programmed crossbar must all compute the same
//! Boolean function. Every independent way the workspace has of computing
//! that function is wrapped here as an [`Oracle`] producing an output table
//! over a shared assignment set; [`differential_check`] runs a case through
//! all of them and reports the first disagreeing oracle pair with full
//! provenance (oracle names, the witnessing assignment, both output rows).
//!
//! The shipped oracle matrix:
//!
//! | oracle            | computes through                                  |
//! |-------------------|---------------------------------------------------|
//! | `sim`             | gate-level simulation (`flowc_logic::sim`)        |
//! | `sbdd`            | shared-BDD evaluation (`flowc_bdd`)               |
//! | `compact(…)`      | synthesis + crossbar flow, per [`VhStrategy`] and γ |
//! | `staircase`       | prior-art every-node-both-wires mapping           |
//! | `robdd-diagonal`  | per-output ROBDD flow merged diagonally           |
//! | `magic-nor`       | CONTRA-style NOR netlist execution                |
//! | `partitioned`     | area-constrained tile schedule (small tile, so splits happen) |
//! | symbolic          | `compact::formal::verify_symbolic` on the default design |
//!
//! The baseline rows are one [`BackendOracle`] each: every
//! [`flowc_baselines::Backend`] joins the panel through the same
//! enum-dispatched surface the CLI and serve use, so a backend added
//! there is automatically fuzzed here.
//!
//! With the `broken-oracle` feature a deliberately wrong oracle (XOR
//! computed as OR) joins the matrix so the whole find → shrink → persist
//! loop can be validated end-to-end.

use std::fmt;
use std::sync::Arc;

use flowc_baselines::{
    partitioned_with_tile, Backend, DesignArtifact, MappingBackend, SynthesisCtx,
};
use flowc_bdd::build_sbdd;
use flowc_budget::Budget;
use flowc_compact::{
    synthesize, synthesize_in, verify_symbolic, Config, Session, SessionConfig, VhStrategy,
};
use flowc_logic::Network;
use flowc_xbar::Crossbar;

use crate::rng::splitmix64;

/// An output table: one row of output bits per checked assignment.
pub type Table = Vec<Vec<bool>>;

/// An independent way of computing a network's Boolean function.
pub trait Oracle {
    /// Stable display name with provenance (strategy, γ, …).
    fn name(&self) -> String;

    /// The outputs for every assignment, in network output order. An `Err`
    /// is a conformance failure in its own right (e.g. synthesis refusing a
    /// valid network) and is reported with the same provenance as a
    /// disagreement.
    fn table(&self, network: &Network, assignments: &[Vec<bool>]) -> Result<Table, String>;
}

/// Evaluates a crossbar over the assignment set 64 lanes at a time.
fn crossbar_table(xbar: &Crossbar, assignments: &[Vec<bool>]) -> Result<Table, String> {
    let k = xbar.num_inputs();
    let mut table = Vec::with_capacity(assignments.len());
    for chunk in assignments.chunks(64) {
        let mut words = vec![0u64; k];
        for (lane, a) in chunk.iter().enumerate() {
            for (i, w) in words.iter_mut().enumerate() {
                if a[i] {
                    *w |= 1 << lane;
                }
            }
        }
        let wide = xbar.evaluate64(&words).map_err(|e| e.to_string())?;
        for lane in 0..chunk.len() {
            table.push(wide.iter().map(|w| w >> lane & 1 == 1).collect());
        }
    }
    Ok(table)
}

/// Brute-force gate-level simulation — the reference oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOracle;

impl Oracle for SimOracle {
    fn name(&self) -> String {
        "sim".into()
    }

    fn table(&self, network: &Network, assignments: &[Vec<bool>]) -> Result<Table, String> {
        assignments
            .iter()
            .map(|a| network.simulate(a).map_err(|e| e.to_string()))
            .collect()
    }
}

/// Shared-BDD evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BddOracle;

impl Oracle for BddOracle {
    fn name(&self) -> String {
        "sbdd".into()
    }

    fn table(&self, network: &Network, assignments: &[Vec<bool>]) -> Result<Table, String> {
        let bdds = build_sbdd(network, None);
        Ok(assignments.iter().map(|a| bdds.eval(a)).collect())
    }
}

/// Full COMPACT synthesis followed by crossbar flow evaluation.
#[derive(Debug, Clone)]
pub struct CompactOracle {
    label: String,
    config: Config,
    session: Option<Arc<Session>>,
}

impl CompactOracle {
    /// An oracle running [`synthesize`] under `config`, displayed as
    /// `compact(label)`.
    pub fn new(label: impl Into<String>, config: Config) -> Self {
        CompactOracle {
            label: label.into(),
            config,
            session: None,
        }
    }

    /// An oracle synthesizing through a shared [`Session`], so sibling
    /// oracles that differ only in strategy or γ reuse one BDD build and
    /// one graph extraction per checked network.
    pub fn with_session(label: impl Into<String>, config: Config, session: Arc<Session>) -> Self {
        CompactOracle {
            label: label.into(),
            config,
            session: Some(session),
        }
    }
}

impl Oracle for CompactOracle {
    fn name(&self) -> String {
        format!("compact({})", self.label)
    }

    fn table(&self, network: &Network, assignments: &[Vec<bool>]) -> Result<Table, String> {
        let r = match &self.session {
            Some(session) => synthesize_in(session, network, &self.config),
            None => synthesize(network, &self.config),
        }
        .map_err(|e| e.to_string())?;
        crossbar_table(&r.crossbar, assignments)
    }
}

/// Any [`flowc_baselines::Backend`] as an oracle: the design the backend
/// produces (crossbar, tile schedule, or NOR program) is evaluated over
/// the assignment set. The oracle name is the backend's stable name, so
/// provenance in disagreements matches the CLI/serve selection surface.
#[derive(Debug, Clone)]
pub struct BackendOracle {
    backend: Backend,
    config: Config,
    session: Option<Arc<Session>>,
    budget: Budget,
}

impl BackendOracle {
    /// An oracle running `backend` cold with an unlimited budget.
    pub fn new(backend: Backend) -> Self {
        BackendOracle {
            backend,
            config: Config::default(),
            session: None,
            budget: Budget::unlimited(),
        }
    }

    /// Attaches a shared [`Session`] so sibling oracles reuse one BDD
    /// build and graph extraction per checked network.
    pub fn with_session(mut self, session: Arc<Session>) -> Self {
        self.session = Some(session);
        self
    }

    /// Bounds every synthesis this oracle performs — the panel budget,
    /// threaded through so fuzz runs stay bounded even on a session-miss
    /// rebuild.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

impl Oracle for BackendOracle {
    fn name(&self) -> String {
        self.backend.name().into()
    }

    fn table(&self, network: &Network, assignments: &[Vec<bool>]) -> Result<Table, String> {
        let mut ctx = SynthesisCtx::new(self.config.clone()).with_budget(self.budget.clone());
        if let Some(session) = &self.session {
            ctx = ctx.with_session(session);
        }
        let design = self
            .backend
            .synthesize(network, &ctx)
            .map_err(|e| e.to_string())?;
        match &design.artifact {
            // Monolithic crossbars batch 64 lanes at a time.
            DesignArtifact::Monolithic(xbar) => crossbar_table(xbar, assignments),
            _ => assignments.iter().map(|a| design.evaluate(a)).collect(),
        }
    }
}

/// A deliberately broken oracle: evaluates XOR gates as OR (and XNOR as
/// NOR) — the classic "any-one" misreading of odd parity. It exists so the
/// fuzz loop can be validated end-to-end: with this oracle enabled,
/// `conform-fuzz` must find a disagreement, shrink it to a few gates, and
/// persist the counterexample.
#[cfg(feature = "broken-oracle")]
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokenXorOracle;

#[cfg(feature = "broken-oracle")]
impl Oracle for BrokenXorOracle {
    fn name(&self) -> String {
        "broken(xor-as-or)".into()
    }

    fn table(&self, network: &Network, assignments: &[Vec<bool>]) -> Result<Table, String> {
        use flowc_logic::GateKind;
        let mut table = Vec::with_capacity(assignments.len());
        for a in assignments {
            let mut values = vec![false; network.num_nets()];
            for (i, &net) in network.inputs().iter().enumerate() {
                values[net.index()] = a[i];
            }
            for gate in network.gates() {
                let ins: Vec<bool> = gate.inputs.iter().map(|n| values[n.index()]).collect();
                let kind = match gate.kind {
                    GateKind::Xor => GateKind::Or,
                    GateKind::Xnor => GateKind::Nor,
                    k => k,
                };
                values[gate.output.index()] = kind.eval(&ins);
            }
            table.push(
                network
                    .outputs()
                    .iter()
                    .map(|o| values[o.index()])
                    .collect(),
            );
        }
        Ok(table)
    }
}

/// The default γ sweep for the weighted-objective oracles.
pub fn default_gammas() -> Vec<f64> {
    vec![0.0, 0.5, 1.0]
}

/// Every shipped oracle: simulation (the reference, always first), SBDD
/// evaluation, COMPACT synthesis under each [`VhStrategy`] (the weighted
/// MIP across the γ sweep, the exact odd-cycle-transversal route, and the
/// greedy heuristic), and one [`BackendOracle`] per non-COMPACT
/// [`Backend`] (the partitioned one on a deliberately small tile so tile
/// splits actually happen on fuzz networks). With the `broken-oracle`
/// feature the deliberately wrong oracle is appended.
pub fn shipped_oracles(gammas: &[f64]) -> Vec<Box<dyn Oracle>> {
    shipped_oracles_budgeted(gammas, &Budget::unlimited())
}

/// [`shipped_oracles`] with every synthesis — including session-miss
/// rebuilds inside the baseline oracles — bounded by `budget`. Fuzz
/// drivers pass their run deadline here so no single case can stall the
/// campaign.
pub fn shipped_oracles_budgeted(gammas: &[f64], budget: &Budget) -> Vec<Box<dyn Oracle>> {
    use std::time::Duration;
    // One shared session: all synthesis oracles differ only in labeling
    // strategy/γ, so each checked network costs one BDD build and one graph
    // extraction across the whole panel. The cache is bounded (FIFO), so
    // memory stays flat over long fuzz campaigns. The session carries the
    // panel budget, so cached-stage rebuilds stay bounded too.
    let session = Arc::new(Session::new(SessionConfig {
        budget: budget.clone(),
        ..SessionConfig::default()
    }));
    let mut oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(SimOracle),
        Box::new(BddOracle),
        Box::new(CompactOracle::with_session(
            "min-s",
            Config {
                strategy: VhStrategy::MinSemiperimeter {
                    time_limit: Duration::from_secs(5),
                },
                align: true,
                var_order: None,
                label_threads: 1,
            },
            Arc::clone(&session),
        )),
    ];
    for &gamma in gammas {
        oracles.push(Box::new(CompactOracle::with_session(
            format!("weighted γ={gamma}"),
            Config::gamma(gamma),
            Arc::clone(&session),
        )));
        oracles.push(Box::new(CompactOracle::with_session(
            format!("heuristic γ={gamma}"),
            Config {
                strategy: VhStrategy::Heuristic { gamma },
                align: true,
                var_order: None,
                label_threads: 1,
            },
            Arc::clone(&session),
        )));
    }
    for backend in [
        Backend::parse("staircase").expect("shipped name"),
        Backend::parse("robdd-diagonal").expect("shipped name"),
        Backend::parse("magic-nor").expect("shipped name"),
        // A small tile so panel-sized networks actually split; generous
        // enough that any single output cone of a fuzz network fits.
        partitioned_with_tile(16, 16),
    ] {
        oracles.push(Box::new(
            BackendOracle::new(backend)
                .with_session(Arc::clone(&session))
                .with_budget(budget.clone()),
        ));
    }
    #[cfg(feature = "broken-oracle")]
    oracles.push(Box::new(BrokenXorOracle));
    oracles
}

/// Differential-check tuning.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Exhaustive assignment enumeration up to this many inputs.
    pub max_exhaustive_inputs: usize,
    /// Sampled assignments for wider networks.
    pub samples: usize,
    /// Also run the symbolic (all-assignments BDD) equivalence proof on the
    /// default-configuration design.
    pub symbolic: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_exhaustive_inputs: 10,
            samples: 128,
            symbolic: true,
        }
    }
}

/// A conformance failure: two oracles produced different outputs (or an
/// oracle failed outright) on a concrete case.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The first oracle of the disagreeing pair (the reference, for output
    /// mismatches).
    pub left: String,
    /// The second oracle of the pair.
    pub right: String,
    /// The witnessing input assignment (empty for oracle errors).
    pub assignment: Vec<bool>,
    /// `left`'s outputs on the witness.
    pub left_output: Vec<bool>,
    /// `right`'s outputs on the witness.
    pub right_output: Vec<bool>,
    /// Free-form provenance: error text, table-shape mismatch, etc.
    pub detail: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits =
            |v: &[bool]| -> String { v.iter().map(|&b| if b { '1' } else { '0' }).collect() };
        write!(
            f,
            "oracles `{}` and `{}` disagree on x={}: {} vs {}{}",
            self.left,
            self.right,
            bits(&self.assignment),
            bits(&self.left_output),
            bits(&self.right_output),
            if self.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", self.detail)
            }
        )
    }
}

/// What a clean differential check covered.
#[derive(Debug, Clone, Copy)]
pub struct CaseOutcome {
    /// Oracles that produced tables.
    pub oracles: usize,
    /// Assignments each table covered.
    pub assignments: usize,
    /// Whether the symbolic proof ran.
    pub symbolic: bool,
}

/// The assignment set a differential check uses for a `num_inputs`-input
/// network: exhaustive when feasible, otherwise `samples` deterministic
/// draws (seeded only by the input count, so identical networks always see
/// identical assignments).
pub fn assignments_for(num_inputs: usize, cfg: &DiffConfig) -> Vec<Vec<bool>> {
    if num_inputs <= cfg.max_exhaustive_inputs {
        (0..1usize << num_inputs)
            .map(|v| (0..num_inputs).map(|i| v >> i & 1 == 1).collect())
            .collect()
    } else {
        let mut state = 0x00C0_F012_u64 ^ ((num_inputs as u64) << 32);
        (0..cfg.samples.max(1))
            .map(|_| {
                (0..num_inputs)
                    .map(|_| splitmix64(&mut state) & 1 == 1)
                    .collect()
            })
            .collect()
    }
}

/// Runs `network` through every oracle and compares all tables against the
/// first (reference) oracle's. Table equality is transitive, so comparing
/// against the reference decides all pairs; the reported pair is the
/// reference plus the first deviating oracle, with the witnessing
/// assignment and both output rows.
///
/// # Errors
///
/// Returns the first [`Disagreement`] (boxed: it carries full provenance).
pub fn differential_check(
    network: &Network,
    oracles: &[Box<dyn Oracle>],
    cfg: &DiffConfig,
) -> Result<CaseOutcome, Box<Disagreement>> {
    assert!(!oracles.is_empty(), "at least the reference oracle needed");
    let assignments = assignments_for(network.num_inputs(), cfg);
    let reference_table = run_oracle(oracles[0].as_ref(), network, &assignments)?;
    for oracle in &oracles[1..] {
        let table = run_oracle(oracle.as_ref(), network, &assignments)?;
        if table.len() != reference_table.len() {
            return Err(Box::new(Disagreement {
                left: oracles[0].name(),
                right: oracle.name(),
                assignment: Vec::new(),
                left_output: Vec::new(),
                right_output: Vec::new(),
                detail: format!(
                    "table length mismatch: {} vs {} rows",
                    reference_table.len(),
                    table.len()
                ),
            }));
        }
        for (i, (want, got)) in reference_table.iter().zip(&table).enumerate() {
            if want != got {
                return Err(Box::new(Disagreement {
                    left: oracles[0].name(),
                    right: oracle.name(),
                    assignment: assignments[i].clone(),
                    left_output: want.clone(),
                    right_output: got.clone(),
                    detail: String::new(),
                }));
            }
        }
    }
    if cfg.symbolic {
        symbolic_check(network, &oracles[0].name())?;
    }
    Ok(CaseOutcome {
        oracles: oracles.len(),
        assignments: assignments.len(),
        symbolic: cfg.symbolic,
    })
}

fn run_oracle(
    oracle: &dyn Oracle,
    network: &Network,
    assignments: &[Vec<bool>],
) -> Result<Table, Box<Disagreement>> {
    oracle.table(network, assignments).map_err(|e| {
        Box::new(Disagreement {
            left: oracle.name(),
            right: "<error>".into(),
            assignment: Vec::new(),
            left_output: Vec::new(),
            right_output: Vec::new(),
            detail: e,
        })
    })
}

/// The symbolic arm: proves the default-configuration design equivalent to
/// the specification over *all* assignments (not just the sampled table).
fn symbolic_check(network: &Network, reference: &str) -> Result<(), Box<Disagreement>> {
    let design = synthesize(network, &Config::default()).map_err(|e| {
        Box::new(Disagreement {
            left: "compact(default)+symbolic".into(),
            right: "<error>".into(),
            assignment: Vec::new(),
            left_output: Vec::new(),
            right_output: Vec::new(),
            detail: e.to_string(),
        })
    })?;
    let report = verify_symbolic(&design.crossbar, network);
    if report.equivalent {
        return Ok(());
    }
    let assignment = report.first_counterexample().cloned().unwrap_or_default();
    let left_output = network.simulate(&assignment).unwrap_or_default();
    let right_output = design.crossbar.evaluate(&assignment).unwrap_or_default();
    Err(Box::new(Disagreement {
        left: reference.to_string(),
        right: "compact(default)+symbolic".into(),
        assignment,
        left_output,
        right_output,
        detail: "symbolic connectivity function differs from the specification BDD".into(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::NetworkGen;
    use crate::rng::Rng;

    #[test]
    fn shipped_oracles_agree_on_a_small_batch() {
        let oracles = shipped_oracles(&[0.5]);
        let shape = NetworkGen::new(4, 8);
        let cfg = DiffConfig::default();
        for seed in 0..6 {
            let net = shape.generate(&mut Rng::new(seed));
            #[cfg(not(feature = "broken-oracle"))]
            differential_check(&net, &oracles, &cfg).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            #[cfg(feature = "broken-oracle")]
            let _ = differential_check(&net, &oracles, &cfg);
        }
    }

    #[test]
    fn disagreement_display_shows_provenance() {
        let d = Disagreement {
            left: "sim".into(),
            right: "sbdd".into(),
            assignment: vec![true, false],
            left_output: vec![true],
            right_output: vec![false],
            detail: String::new(),
        };
        let text = d.to_string();
        assert!(text.contains("sim") && text.contains("sbdd"));
        assert!(text.contains("x=10"), "{text}");
    }

    #[cfg(feature = "broken-oracle")]
    #[test]
    fn broken_oracle_is_caught_on_an_xor_network() {
        use flowc_logic::{GateKind, Network};
        let mut n = Network::new("xor2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::Xor, &[a, b], "f").unwrap();
        n.mark_output(f);
        let oracles = shipped_oracles(&[0.5]);
        let err = differential_check(&n, &oracles, &DiffConfig::default())
            .expect_err("the broken oracle must disagree on XOR");
        assert!(err.right.contains("broken"), "{err}");
    }

    #[test]
    fn exhaustive_vs_sampled_assignment_sets() {
        let cfg = DiffConfig::default();
        assert_eq!(assignments_for(3, &cfg).len(), 8);
        let wide = assignments_for(20, &cfg);
        assert_eq!(wide.len(), cfg.samples);
        assert!(wide.iter().all(|a| a.len() == 20));
        // Deterministic across calls.
        assert_eq!(wide, assignments_for(20, &cfg));
    }
}

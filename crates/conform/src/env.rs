//! Lenient handling of the harness environment variables.
//!
//! Two variables steer every conformance suite:
//!
//! - `PROPTEST_CASES` — overrides the fresh-case count per property
//!   (regression-corpus replays always run in addition to it);
//! - `PROPTEST_SEED` — overrides the per-test base seed for local fuzzing
//!   (decimal or `0x`-prefixed hex; `_` separators allowed).
//!
//! Malformed values used to panic deep inside a test; they are now parsed
//! leniently — a warning is printed to stderr once per read and the default
//! takes over — so a stray `PROPTEST_CASES=many` in a CI environment can
//! degrade a run's thoroughness but never its outcome.

/// Parses a `u64` leniently: decimal or `0x` hex, `_` separators ignored.
fn parse_u64_lenient(raw: &str) -> Option<u64> {
    let s: String = raw.trim().chars().filter(|&c| c != '_').collect();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The fresh-case count: `PROPTEST_CASES` when set and parseable, otherwise
/// `default`. Non-numeric values warn on stderr instead of panicking.
pub fn case_count(default: usize) -> usize {
    match std::env::var("PROPTEST_CASES") {
        Err(_) => default,
        Ok(raw) => match parse_u64_lenient(&raw) {
            Some(v) => usize::try_from(v).unwrap_or(usize::MAX),
            None => {
                eprintln!(
                    "warning: PROPTEST_CASES=`{raw}` is not a number; \
                     using the default of {default} cases"
                );
                default
            }
        },
    }
}

/// The base-seed override: `Some` only when `PROPTEST_SEED` is set and
/// parseable (decimal or `0x` hex). Garbage warns and falls back to the
/// per-test seed, keeping runs deterministic.
pub fn seed_override() -> Option<u64> {
    match std::env::var("PROPTEST_SEED") {
        Err(_) => None,
        Ok(raw) => {
            let parsed = parse_u64_lenient(&raw);
            if parsed.is_none() {
                eprintln!(
                    "warning: PROPTEST_SEED=`{raw}` is not a number \
                     (decimal or 0x-hex); using the per-test base seed"
                );
            }
            parsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenient_parse_accepts_decimal_hex_and_separators() {
        assert_eq!(parse_u64_lenient("42"), Some(42));
        assert_eq!(parse_u64_lenient("  42  "), Some(42));
        assert_eq!(parse_u64_lenient("0xff"), Some(255));
        assert_eq!(parse_u64_lenient("0XFF"), Some(255));
        assert_eq!(parse_u64_lenient("1_000_000"), Some(1_000_000));
        assert_eq!(parse_u64_lenient("0x9E37_79B9"), Some(0x9E37_79B9));
    }

    #[test]
    fn lenient_parse_rejects_garbage() {
        assert_eq!(parse_u64_lenient("many"), None);
        assert_eq!(parse_u64_lenient(""), None);
        assert_eq!(parse_u64_lenient("-3"), None);
        assert_eq!(parse_u64_lenient("0x"), None);
        assert_eq!(parse_u64_lenient("1.5"), None);
    }

    #[test]
    fn unset_vars_use_defaults() {
        // The suite never sets these variables itself, so when the ambient
        // environment leaves them unset the defaults must come through.
        // (When a caller *has* set them, case_count still returns a usable
        // number by construction, so this test is race-free either way.)
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(case_count(32), 32);
        }
        if std::env::var("PROPTEST_SEED").is_err() {
            assert_eq!(seed_override(), None);
        }
    }
}

//! The persisted counterexample corpus.
//!
//! A corpus directory (the workspace uses `tests/regressions/`) holds two
//! artifact kinds per test:
//!
//! - `<test>.txt` — failing case *seeds*, one per line (`#` comments
//!   allowed). Replaying a seed regenerates the exact original circuit,
//!   structure included, so structure-sensitive bugs stay reproducible.
//! - `<test>.<seed>.blif` — the *shrunk* counterexample as replayable BLIF
//!   with a provenance header. BLIF survives refactors of the generator
//!   (the seed stream may drift when generators change; the netlist
//!   doesn't), at the cost of normalizing gate structure through the BLIF
//!   writer's decompositions.
//!
//! Harnesses replay both kinds *before* drawing fresh cases, so a fixed bug
//! stays fixed.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use flowc_logic::{blif, Network};

/// Handle on a corpus directory. Missing directories read as empty and are
/// created on first persist.
#[derive(Debug, Clone)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// A corpus rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Corpus { dir: dir.into() }
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn seed_path(&self, test: &str) -> PathBuf {
        self.dir.join(format!("{test}.txt"))
    }

    /// The persisted failing seeds for `test` (empty when none).
    pub fn load_seeds(&self, test: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(self.seed_path(test)) else {
            return Vec::new();
        };
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| l.parse().ok())
            .collect()
    }

    /// Appends `seed` to `test`'s seed file (idempotent; best-effort — a
    /// read-only checkout must not turn a test failure into an IO panic).
    pub fn persist_seed(&self, test: &str, seed: u64) {
        if self.load_seeds(test).contains(&seed) {
            return;
        }
        let path = self.seed_path(test);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{seed}");
        }
    }

    /// Writes a shrunk counterexample as `<test>.<seed>.blif` with a
    /// provenance header (seed and one-line detail as BLIF comments).
    /// Returns the path on success; best-effort like [`Corpus::persist_seed`].
    pub fn persist_counterexample(
        &self,
        test: &str,
        seed: u64,
        network: &Network,
        detail: &str,
    ) -> Option<PathBuf> {
        let path = self.dir.join(format!("{test}.{seed}.blif"));
        let _ = std::fs::create_dir_all(&self.dir);
        let mut text = String::new();
        text.push_str("# shrunk conformance counterexample — replayed before fresh cases\n");
        text.push_str(&format!("# test: {test}\n# seed: {seed}\n"));
        for line in detail.lines() {
            text.push_str(&format!("# {line}\n"));
        }
        text.push_str(&blif::write(network));
        // Atomic write: a fuzz worker dying mid-write must not leave a
        // truncated counterexample that later poisons replay.
        flowc_report::write_atomic(&path, &text).ok()?;
        Some(path)
    }

    /// Loads every persisted counterexample for `test`, sorted by path so
    /// replay order is stable. Unparseable files are reported as `Err` so a
    /// corrupted corpus surfaces instead of silently skipping.
    #[allow(clippy::type_complexity)]
    pub fn counterexamples(&self, test: &str) -> Vec<(PathBuf, Result<Network, String>)> {
        let prefix = format!("{test}.");
        let mut paths: Vec<PathBuf> = match std::fs::read_dir(&self.dir) {
            Err(_) => return Vec::new(),
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.extension().is_some_and(|x| x == "blif")
                        && p.file_name()
                            .and_then(|f| f.to_str())
                            .is_some_and(|f| f.starts_with(&prefix))
                })
                .collect(),
        };
        paths.sort();
        paths
            .into_iter()
            .map(|p| {
                let net = std::fs::read_to_string(&p)
                    .map_err(|e| e.to_string())
                    .and_then(|text| blif::parse(&text).map_err(|e| e.to_string()));
                (p, net)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::{GateKind, Network};

    fn tmp_corpus(tag: &str) -> Corpus {
        let dir =
            std::env::temp_dir().join(format!("flowc-conform-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Corpus::new(dir)
    }

    #[test]
    fn seeds_roundtrip_and_deduplicate() {
        let c = tmp_corpus("seeds");
        assert!(c.load_seeds("t").is_empty());
        c.persist_seed("t", 7);
        c.persist_seed("t", 7);
        c.persist_seed("t", 9);
        assert_eq!(c.load_seeds("t"), vec![7, 9]);
        let _ = std::fs::remove_dir_all(c.dir());
    }

    #[test]
    fn counterexamples_roundtrip_with_provenance() {
        let c = tmp_corpus("blif");
        let mut n = Network::new("cex");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::Xor, &[a, b], "f").unwrap();
        n.mark_output(f);
        let path = c
            .persist_counterexample("t", 42, &n, "oracles `sim` and `broken` disagree")
            .expect("persist succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# seed: 42"));
        assert!(text.contains("disagree"));
        let loaded = c.counterexamples("t");
        assert_eq!(loaded.len(), 1);
        let net = loaded[0].1.as_ref().expect("parses");
        assert_eq!(net.num_inputs(), 2);
        // Distinct test names do not cross-match.
        assert!(c.counterexamples("other").is_empty());
        let _ = std::fs::remove_dir_all(c.dir());
    }
}

//! The deterministic property harness (proptest stand-in, no external
//! deps), generalized from the in-tree harness `tests/property_based.rs`
//! carried since PR 1.
//!
//! Every test derives its case seeds from a fixed per-test base seed
//! (FNV-1a over the test name), so CI runs are reproducible bit-for-bit.
//! `PROPTEST_CASES` overrides the fresh-case count and `PROPTEST_SEED` the
//! base seed — both parsed leniently (see [`crate::env`]). When a corpus is
//! attached, persisted regression seeds and shrunk counterexample netlists
//! replay *before* any fresh case, and new failures are persisted (seed
//! always; for network properties, also the shrunk BLIF).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

use flowc_budget::Budget;
use flowc_logic::Network;

use crate::corpus::Corpus;
use crate::gen::NetworkGen;
use crate::rng::{splitmix64, Rng};
use crate::shrink::shrink_network;

/// FNV-1a over the test name: fixed, but distinct per test.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h
}

/// A named property-check runner bound to an optional corpus.
#[derive(Debug, Clone)]
pub struct Harness {
    name: String,
    corpus: Option<Corpus>,
    cases: usize,
    base_seed: u64,
    shrink_deadline: Duration,
}

impl Harness {
    /// A harness for the test `name`, with the case count and base seed
    /// resolved from the environment (defaults: 32 cases, FNV-1a of the
    /// name).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let base_seed = crate::env::seed_override().unwrap_or_else(|| fnv1a(&name));
        Harness {
            name,
            corpus: None,
            cases: crate::env::case_count(32),
            base_seed,
            shrink_deadline: Duration::from_secs(20),
        }
    }

    /// Attaches a corpus directory for replay-first and persistence.
    #[must_use]
    pub fn with_corpus(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.corpus = Some(Corpus::new(dir));
        self
    }

    /// Overrides the fresh-case count (the environment override still
    /// wins at [`Harness::new`] time; this sets the post-resolution value).
    #[must_use]
    pub fn with_cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Bounds the shrinking phase after a failure (default 20 s).
    #[must_use]
    pub fn with_shrink_deadline(mut self, deadline: Duration) -> Self {
        self.shrink_deadline = deadline;
        self
    }

    /// The test name this harness reports under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Persisted regression seeds followed by the fresh deterministic
    /// seeds for this run.
    pub fn seeds(&self) -> Vec<u64> {
        let mut seeds = self
            .corpus
            .as_ref()
            .map(|c| c.load_seeds(&self.name))
            .unwrap_or_default();
        let mut state = self.base_seed;
        for _ in 0..self.cases {
            seeds.push(splitmix64(&mut state));
        }
        seeds
    }

    /// Runs `property` on the persisted regression seeds first, then on
    /// the fresh deterministic seeds. A failing seed is persisted before
    /// the panic is re-raised.
    ///
    /// # Panics
    ///
    /// Re-raises the property's panic after persisting the failing seed.
    pub fn check(&self, property: impl Fn(&mut Rng)) {
        for seed in self.seeds() {
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut Rng::new(seed)))) {
                self.persist_seed(seed);
                resume_unwind(panic);
            }
        }
    }

    /// Network-level property check with shrinking: generates a network
    /// per seed, replays persisted counterexample netlists first, and on a
    /// fresh failure delta-debugs the network to a local minimum and
    /// persists it as replayable BLIF next to the failing seed.
    ///
    /// The property receives the generated network and the case RNG in its
    /// post-generation state; during shrinking each candidate sees a clone
    /// of that exact RNG state, so properties may draw auxiliary
    /// randomness freely.
    ///
    /// # Panics
    ///
    /// Re-raises the property's panic after persisting seed + shrunk BLIF.
    pub fn check_network(&self, shape: &NetworkGen, property: impl Fn(&Network, &mut Rng)) {
        // Replay shrunk counterexamples first: they are the minimal known
        // bugs, and they survive generator drift.
        if let Some(corpus) = &self.corpus {
            for (path, loaded) in corpus.counterexamples(&self.name) {
                let network = match loaded {
                    Ok(n) => n,
                    Err(e) => panic!("corrupt corpus entry {}: {e}", path.display()),
                };
                let replay_seed = seed_from_corpus_path(&path).unwrap_or(0);
                let mut rng = Rng::new(replay_seed);
                if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&network, &mut rng)))
                {
                    eprintln!(
                        "property `{}` fails on persisted counterexample {}",
                        self.name,
                        path.display()
                    );
                    resume_unwind(panic);
                }
            }
        }
        for seed in self.seeds() {
            let mut rng = Rng::new(seed);
            let network = shape.generate(&mut rng);
            let post_gen = rng.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = post_gen.clone();
                property(&network, &mut rng)
            }));
            if let Err(panic) = outcome {
                self.persist_seed(seed);
                self.shrink_and_persist(seed, &network, &post_gen, &property);
                resume_unwind(panic);
            }
        }
    }

    fn persist_seed(&self, seed: u64) {
        let Some(corpus) = &self.corpus else {
            eprintln!(
                "property `{}` failed with seed {seed} (no corpus attached; \
                 re-run with PROPTEST_SEED={seed} PROPTEST_CASES=1)",
                self.name
            );
            return;
        };
        corpus.persist_seed(&self.name, seed);
        eprintln!(
            "property `{}` failed with seed {seed} (persisted to {})",
            self.name,
            corpus.dir().join(format!("{}.txt", self.name)).display()
        );
    }

    fn shrink_and_persist(
        &self,
        seed: u64,
        network: &Network,
        post_gen: &Rng,
        property: &impl Fn(&Network, &mut Rng),
    ) {
        let Some(corpus) = &self.corpus else { return };
        // Shrinking re-runs the failing property dozens of times; silence
        // the default panic hook's per-candidate backtrace spam for the
        // duration (the original failure has already been reported).
        let previous_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let budget = Budget::unlimited().with_deadline(self.shrink_deadline);
        let mut still_fails = |candidate: &Network| -> bool {
            catch_unwind(AssertUnwindSafe(|| {
                let mut rng = post_gen.clone();
                property(candidate, &mut rng)
            }))
            .is_err()
        };
        let shrunk = shrink_network(network, &mut still_fails, &budget);
        std::panic::set_hook(previous_hook);
        let detail = format!(
            "shrunk from {} gates to {} in {} steps ({} candidates{})",
            network.num_gates(),
            shrunk.network.num_gates(),
            shrunk.steps,
            shrunk.candidates_tried,
            if shrunk.budget_exhausted {
                "; shrink budget exhausted"
            } else {
                ""
            }
        );
        if let Some(path) =
            corpus.persist_counterexample(&self.name, seed, &shrunk.network, &detail)
        {
            eprintln!(
                "property `{}`: {detail}; counterexample persisted to {}",
                self.name,
                path.display()
            );
        }
    }
}

/// Extracts the seed from a `<test>.<seed>.blif` corpus path.
fn seed_from_corpus_path(path: &std::path::Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    stem.rsplit('.').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::GateKind;

    fn tmp_corpus(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flowc-conform-harness-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn passing_properties_leave_no_corpus_writes() {
        let dir = tmp_corpus("pass");
        Harness::new("always_passes")
            .with_cases(8)
            .with_corpus(&dir)
            .check(|rng| {
                assert!(rng.below(10) < 10);
            });
        assert!(
            Corpus::new(&dir).load_seeds("always_passes").is_empty(),
            "no seeds persisted for a passing property"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_network_property_persists_seed_and_shrunk_blif() {
        let dir = tmp_corpus("fail");
        let harness = Harness::new("xor_free")
            .with_cases(64)
            .with_corpus(&dir)
            .with_shrink_deadline(Duration::from_secs(10));
        let shape = NetworkGen::new(5, 12);
        let property = |n: &Network, _rng: &mut Rng| {
            assert!(
                n.gates().iter().all(|g| g.kind != GateKind::Xor),
                "network contains an XOR gate"
            );
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            harness.check_network(&shape, property);
        }));
        assert!(outcome.is_err(), "some seed must generate an XOR gate");
        let corpus = Corpus::new(&dir);
        let seeds = corpus.load_seeds("xor_free");
        assert_eq!(seeds.len(), 1, "exactly the failing seed is persisted");
        let cexs = corpus.counterexamples("xor_free");
        assert_eq!(cexs.len(), 1, "the shrunk netlist is persisted");
        // Replay must hit the persisted counterexample before fresh cases —
        // even with zero fresh cases configured.
        let replay = catch_unwind(AssertUnwindSafe(|| {
            Harness::new("xor_free")
                .with_cases(0)
                .with_corpus(&dir)
                .check_network(&shape, property);
        }));
        assert!(replay.is_err(), "replay must re-trigger the failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_is_parsed_from_corpus_paths() {
        assert_eq!(
            seed_from_corpus_path(std::path::Path::new("a/b/test_name.12345.blif")),
            Some(12345)
        );
        assert_eq!(
            seed_from_corpus_path(std::path::Path::new("a/plain.blif")),
            None
        );
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        let a = Harness::new("some_test").with_cases(4).seeds();
        let b = Harness::new("some_test").with_cases(4).seeds();
        let c = Harness::new("other_test").with_cases(4).seeds();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

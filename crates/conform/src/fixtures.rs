//! Canonical fixture circuits shared across test suites.
//!
//! The integration suites used to carry private copies of these (the paper's
//! Fig. 2 function appeared in at least three files); they live here so every
//! suite exercises the exact same circuits.

use flowc_compact::{synthesize, Config};
use flowc_logic::{GateKind, Network};
use flowc_xbar::Crossbar;

/// The running example of the COMPACT paper (Fig. 2): `f = (a ∧ b) ∨ c`.
pub fn fig2_network() -> Network {
    let mut n = Network::new("fig2");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
    let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
    n.mark_output(f);
    n
}

/// Fig. 2 plus its default-config synthesized crossbar — the standard
/// subject for fault-injection tests.
///
/// # Panics
///
/// Panics if default synthesis fails on Fig. 2 (a hard regression).
pub fn fig2_pair() -> (Network, Crossbar) {
    let n = fig2_network();
    let design = synthesize(&n, &Config::default()).expect("fig2 synthesizes");
    (n, design.crossbar)
}

/// A two-output network (`a ∧ b`, `a ∨ b`) for output-ordering checks.
pub fn two_output_network() -> Network {
    let mut n = Network::new("two");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
    let g = n.add_gate(GateKind::Or, &[a, b], "g").unwrap();
    n.mark_output(f);
    n.mark_output(g);
    n
}

/// A single-XOR network — the minimal circuit separating XOR-class
/// miscompiles (e.g. the feature-gated `broken-oracle`) from correct
/// oracles.
pub fn xor2_network() -> Network {
    let mut n = Network::new("xor2");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let f = n.add_gate(GateKind::Xor, &[a, b], "f").unwrap();
    n.mark_output(f);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_truth_table() {
        let n = fig2_network();
        n.validate().unwrap();
        for bits in 0..8u32 {
            let a = bits & 1 == 1;
            let b = bits >> 1 & 1 == 1;
            let c = bits >> 2 & 1 == 1;
            assert_eq!(n.simulate(&[a, b, c]).unwrap(), vec![(a && b) || c]);
        }
    }

    #[test]
    fn fixtures_validate() {
        two_output_network().validate().unwrap();
        xor2_network().validate().unwrap();
        let (n, xb) = fig2_pair();
        assert_eq!(n.num_inputs(), 3);
        assert!(xb.rows() > 0 && xb.cols() > 0);
    }
}

//! Ablation benches for the design choices called out in DESIGN.md §5:
//! Nemhauser–Trotter kernelization, variable-ordering heuristics, exact vs
//! heuristic odd cycle transversals, and the balancing hill climb.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowc_bdd::{build_sbdd, dfs_fanin_order};
use flowc_compact::mip_method::hill_climb;
use flowc_compact::oct_method::{min_semiperimeter, OctMethodConfig};
use flowc_compact::BddGraph;
use flowc_graph::{
    cartesian_with_k2, greedy_cover, lp_lower_bound, minimum_vertex_cover, nt_kernel,
    oct_heuristic, VcConfig,
};
use flowc_logic::bench_suite;

fn graph_of(name: &str) -> BddGraph {
    let network = bench_suite::by_name(name).unwrap().network().unwrap();
    BddGraph::from_bdds(&build_sbdd(&network, None))
}

/// NT kernelization vs raw bounds: how much of the product graph the
/// half-integral LP removes before branching even starts.
fn bench_kernelization(c: &mut Criterion) {
    let mut group = c.benchmark_group("vc_kernelization");
    group.sample_size(10);
    let product = cartesian_with_k2(&graph_of("int2float").graph);
    group.bench_function("nt_kernel_int2float_product", |b| {
        b.iter(|| black_box(nt_kernel(&product).kernel.len()))
    });
    group.bench_function("lp_bound_int2float_product", |b| {
        b.iter(|| black_box(lp_lower_bound(&product)))
    });
    group.bench_function("greedy_cover_int2float_product", |b| {
        b.iter(|| black_box(greedy_cover(&product).len()))
    });
    group.bench_function("exact_vc_int2float_product", |b| {
        b.iter(|| {
            black_box(
                minimum_vertex_cover(
                    &product,
                    &VcConfig {
                        time_limit: Duration::from_secs(10),
                    },
                )
                .cover
                .len(),
            )
        })
    });
    group.finish();
}

/// Exact OCT (Lemma 1) vs the greedy heuristic: runtime and quality.
fn bench_oct_exact_vs_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("oct_exact_vs_heuristic");
    group.sample_size(10);
    for name in ["int2float", "cavlc"] {
        let g = graph_of(name);
        group.bench_function(format!("exact_{name}"), |b| {
            b.iter(|| {
                black_box(
                    min_semiperimeter(&g, &OctMethodConfig::default())
                        .oct_size,
                )
            })
        });
        group.bench_function(format!("heuristic_{name}"), |b| {
            b.iter(|| black_box(oct_heuristic(&g.graph).len()))
        });
    }
    group.finish();
}

/// Variable ordering: natural (generator-chosen) vs DFS-fanin rebuild.
fn bench_variable_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_ordering");
    group.sample_size(10);
    for name in ["c880", "priority"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        group.bench_function(format!("natural_{name}"), |b| {
            b.iter(|| black_box(build_sbdd(&network, None).shared_size()))
        });
        group.bench_function(format!("dfs_fanin_{name}"), |b| {
            b.iter(|| {
                let order = dfs_fanin_order(&network);
                black_box(build_sbdd(&network, Some(&order)).shared_size())
            })
        });
    }
    group.finish();
}

/// The Figure 7 move: how expensive is VH-addition hill climbing, and how
/// much maximum dimension does it buy.
fn bench_hill_climb(c: &mut Criterion) {
    let mut group = c.benchmark_group("hill_climb");
    group.sample_size(10);
    let g = graph_of("int2float");
    let base = min_semiperimeter(&g, &OctMethodConfig::default()).labeling;
    group.bench_function("int2float", |b| {
        b.iter(|| {
            let (improved, _) = hill_climb(
                &g,
                &base,
                0.5,
                true,
                Instant::now() + Duration::from_secs(2),
            );
            black_box(improved.stats().max_dimension)
        })
    });
    // Quality datum printed once (criterion ignores it, humans don't).
    let vh: HashSet<usize> = HashSet::new();
    let _ = vh;
    let (improved, moves) = hill_climb(
        &g,
        &base,
        0.5,
        true,
        Instant::now() + Duration::from_secs(2),
    );
    eprintln!(
        "[ablation] int2float hill climb: D {} -> {} with {} accepted moves",
        base.stats().max_dimension,
        improved.stats().max_dimension,
        moves
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_kernelization,
    bench_oct_exact_vs_heuristic,
    bench_variable_ordering,
    bench_hill_climb
);
criterion_main!(benches);

//! Ablation benches for the design choices called out in DESIGN.md §5:
//! Nemhauser–Trotter kernelization, variable-ordering heuristics, exact vs
//! heuristic odd cycle transversals, and the balancing hill climb.
//!
//! Uses the in-tree `flowc_bench::timing` harness (no criterion; the build
//! must work fully offline). `FLOWC_BENCH_SAMPLES` controls sample counts.

use std::hint::black_box;
use std::time::{Duration, Instant};

use flowc_bdd::{build_sbdd, dfs_fanin_order};
use flowc_bench::timing::bench;
use flowc_compact::mip_method::hill_climb;
use flowc_compact::oct_method::{min_semiperimeter, OctMethodConfig};
use flowc_compact::BddGraph;
use flowc_graph::{
    cartesian_with_k2, greedy_cover, lp_lower_bound, minimum_vertex_cover, nt_kernel,
    oct_heuristic, VcConfig,
};
use flowc_logic::bench_suite;

fn graph_of(name: &str) -> BddGraph {
    let network = bench_suite::by_name(name).unwrap().network().unwrap();
    BddGraph::from_bdds(&build_sbdd(&network, None))
}

/// NT kernelization vs raw bounds: how much of the product graph the
/// half-integral LP removes before branching even starts.
fn bench_kernelization() {
    let product = cartesian_with_k2(&graph_of("int2float").graph);
    bench("vc_kernelization", "nt_kernel_int2float_product", || {
        black_box(nt_kernel(&product).kernel.len())
    });
    bench("vc_kernelization", "lp_bound_int2float_product", || {
        black_box(lp_lower_bound(&product))
    });
    bench("vc_kernelization", "greedy_cover_int2float_product", || {
        black_box(greedy_cover(&product).len())
    });
    bench("vc_kernelization", "exact_vc_int2float_product", || {
        black_box(
            minimum_vertex_cover(
                &product,
                &VcConfig {
                    time_limit: Duration::from_secs(10),
                    threads: 1,
                },
            )
            .cover
            .len(),
        )
    });
}

/// Exact OCT (Lemma 1) vs the greedy heuristic: runtime and quality.
fn bench_oct_exact_vs_heuristic() {
    for name in ["int2float", "cavlc"] {
        let g = graph_of(name);
        bench("oct_exact_vs_heuristic", &format!("exact_{name}"), || {
            black_box(min_semiperimeter(&g, &OctMethodConfig::default()).oct_size)
        });
        bench(
            "oct_exact_vs_heuristic",
            &format!("heuristic_{name}"),
            || black_box(oct_heuristic(&g.graph).len()),
        );
    }
}

/// Variable ordering: natural (generator-chosen) vs DFS-fanin rebuild.
fn bench_variable_ordering() {
    for name in ["c880", "priority"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        bench("variable_ordering", &format!("natural_{name}"), || {
            black_box(build_sbdd(&network, None).shared_size())
        });
        bench("variable_ordering", &format!("dfs_fanin_{name}"), || {
            let order = dfs_fanin_order(&network);
            black_box(build_sbdd(&network, Some(&order)).shared_size())
        });
    }
}

/// The Figure 7 move: how expensive is VH-addition hill climbing, and how
/// much maximum dimension does it buy.
fn bench_hill_climb() {
    let g = graph_of("int2float");
    let base = min_semiperimeter(&g, &OctMethodConfig::default()).labeling;
    bench("hill_climb", "int2float", || {
        let (improved, _) = hill_climb(
            &g,
            &base,
            0.5,
            true,
            Instant::now() + Duration::from_secs(2),
        );
        black_box(improved.stats().max_dimension)
    });
    // Quality datum printed once (the harness times it, humans read this).
    let (improved, moves) = hill_climb(
        &g,
        &base,
        0.5,
        true,
        Instant::now() + Duration::from_secs(2),
    );
    eprintln!(
        "[ablation] int2float hill climb: D {} -> {} with {} accepted moves",
        base.stats().max_dimension,
        improved.stats().max_dimension,
        moves
    );
}

fn main() {
    bench_kernelization();
    bench_oct_exact_vs_heuristic();
    bench_variable_ordering();
    bench_hill_climb();
}

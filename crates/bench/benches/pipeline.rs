//! Criterion microbenchmarks of every pipeline stage: BDD construction,
//! graph preprocessing, VH-labeling, crossbar mapping, and both evaluation
//! models, on representative benchmarks.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use flowc_baselines::magic::{map_magic, MagicConfig, NorNetlist};
use flowc_baselines::staircase::staircase_map;
use flowc_bdd::build_sbdd;
use flowc_compact::mapping::map_to_crossbar;
use flowc_compact::oct_method::{min_semiperimeter, OctMethodConfig};
use flowc_compact::pipeline::{synthesize, Config, VhStrategy};
use flowc_compact::BddGraph;
use flowc_logic::bench_suite;
use flowc_xbar::circuit::ElectricalModel;

fn quick_config() -> Config {
    Config {
        strategy: VhStrategy::Weighted {
            gamma: 0.5,
            time_limit: Duration::from_secs(2),
            exact_node_limit: 0, // anytime path: deterministic work profile
        },
        align: true,
        var_order: None,
    }
}

fn bench_bdd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build");
    for name in ["int2float", "cavlc", "i2c"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(build_sbdd(&network, None).shared_size()))
        });
    }
    group.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_preprocess");
    for name in ["cavlc", "i2c"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        let bdds = build_sbdd(&network, None);
        group.bench_function(name, |b| {
            b.iter(|| black_box(BddGraph::from_bdds(&bdds).num_edges()))
        });
    }
    group.finish();
}

fn bench_vh_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("vh_labeling_oct");
    group.sample_size(10);
    for name in ["int2float", "cavlc"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    min_semiperimeter(&graph, &OctMethodConfig::default())
                        .labeling
                        .stats()
                        .semiperimeter,
                )
            })
        });
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_mapping");
    for name in ["cavlc", "i2c"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
        let labeling = min_semiperimeter(&graph, &OctMethodConfig::default()).labeling;
        let names: Vec<String> = network
            .outputs()
            .iter()
            .map(|&o| network.net_name(o).to_string())
            .collect();
        group.bench_function(name, |b| {
            b.iter(|| black_box(map_to_crossbar(&graph, &labeling, &names).unwrap().rows()))
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation");
    let network = bench_suite::by_name("ctrl").unwrap().network().unwrap();
    let design = synthesize(&network, &quick_config()).unwrap();
    let assignment = vec![true; network.num_inputs()];
    group.bench_function("flow_ctrl", |b| {
        b.iter(|| black_box(design.crossbar.evaluate(&assignment).unwrap()))
    });
    let model = ElectricalModel::default();
    group.bench_function("nodal_analysis_ctrl", |b| {
        b.iter(|| black_box(model.output_voltages(&design.crossbar, &assignment).unwrap()))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_end_to_end");
    group.sample_size(10);
    for name in ["int2float", "cavlc"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        group.bench_function(format!("compact_{name}"), |b| {
            b.iter_batched(
                || network.clone(),
                |n| black_box(synthesize(&n, &quick_config()).unwrap().stats.semiperimeter),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("staircase_{name}"), |b| {
            let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
            let names: Vec<String> = network
                .outputs()
                .iter()
                .map(|&o| network.net_name(o).to_string())
                .collect();
            b.iter(|| black_box(staircase_map(&graph, &names).rows()))
        });
    }
    group.finish();
}

fn bench_magic(c: &mut Criterion) {
    let mut group = c.benchmark_group("magic_baseline");
    let network = bench_suite::by_name("cavlc").unwrap().network().unwrap();
    group.bench_function("nor_decompose_cavlc", |b| {
        b.iter(|| black_box(NorNetlist::from_network(&network).num_gates()))
    });
    group.bench_function("schedule_cavlc", |b| {
        b.iter(|| black_box(map_magic(&network, &MagicConfig::default()).delay_steps))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bdd_build,
    bench_preprocess,
    bench_vh_labeling,
    bench_mapping,
    bench_evaluation,
    bench_end_to_end,
    bench_magic
);
criterion_main!(benches);

//! Microbenchmarks of every pipeline stage: BDD construction, graph
//! preprocessing, VH-labeling, crossbar mapping, and both evaluation
//! models, on representative benchmarks.
//!
//! Uses the in-tree `flowc_bench::timing` harness (no criterion; the build
//! must work fully offline). `FLOWC_BENCH_SAMPLES` controls sample counts.

use std::hint::black_box;
use std::time::Duration;

use flowc_baselines::magic::{map_magic, MagicConfig, NorNetlist};
use flowc_baselines::staircase::staircase_map;
use flowc_bdd::build_sbdd;
use flowc_bench::timing::bench;
use flowc_compact::mapping::map_to_crossbar;
use flowc_compact::oct_method::{min_semiperimeter, OctMethodConfig};
use flowc_compact::pipeline::{synthesize, Config, VhStrategy};
use flowc_compact::BddGraph;
use flowc_logic::bench_suite;
use flowc_xbar::circuit::ElectricalModel;

fn quick_config() -> Config {
    Config {
        strategy: VhStrategy::Weighted {
            gamma: 0.5,
            time_limit: Duration::from_secs(2),
            exact_node_limit: 0, // anytime path: deterministic work profile
        },
        ..Config::default()
    }
}

fn bench_bdd_build() {
    for name in ["int2float", "cavlc", "i2c"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        bench("bdd_build", name, || {
            black_box(build_sbdd(&network, None).shared_size())
        });
    }
}

fn bench_preprocess() {
    for name in ["cavlc", "i2c"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        let bdds = build_sbdd(&network, None);
        bench("graph_preprocess", name, || {
            black_box(BddGraph::from_bdds(&bdds).num_edges())
        });
    }
}

fn bench_vh_labeling() {
    for name in ["int2float", "cavlc"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
        bench("vh_labeling_oct", name, || {
            black_box(
                min_semiperimeter(&graph, &OctMethodConfig::default())
                    .labeling
                    .stats()
                    .semiperimeter,
            )
        });
    }
}

fn bench_mapping() {
    for name in ["cavlc", "i2c"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
        let labeling = min_semiperimeter(&graph, &OctMethodConfig::default()).labeling;
        let names: Vec<String> = network
            .outputs()
            .iter()
            .map(|&o| network.net_name(o).to_string())
            .collect();
        bench("crossbar_mapping", name, || {
            black_box(map_to_crossbar(&graph, &labeling, &names).unwrap().rows())
        });
    }
}

fn bench_evaluation() {
    let network = bench_suite::by_name("ctrl").unwrap().network().unwrap();
    let design = synthesize(&network, &quick_config()).unwrap();
    let assignment = vec![true; network.num_inputs()];
    bench("evaluation", "flow_ctrl", || {
        black_box(design.crossbar.evaluate(&assignment).unwrap())
    });
    let model = ElectricalModel::default();
    bench("evaluation", "nodal_analysis_ctrl", || {
        black_box(
            model
                .output_voltages(&design.crossbar, &assignment)
                .unwrap(),
        )
    });
}

fn bench_end_to_end() {
    for name in ["int2float", "cavlc"] {
        let network = bench_suite::by_name(name).unwrap().network().unwrap();
        bench("synthesis_end_to_end", &format!("compact_{name}"), || {
            black_box(
                synthesize(&network, &quick_config())
                    .unwrap()
                    .stats
                    .semiperimeter,
            )
        });
        let graph = BddGraph::from_bdds(&build_sbdd(&network, None));
        let names: Vec<String> = network
            .outputs()
            .iter()
            .map(|&o| network.net_name(o).to_string())
            .collect();
        bench("synthesis_end_to_end", &format!("staircase_{name}"), || {
            black_box(staircase_map(&graph, &names).rows())
        });
    }
}

fn bench_magic() {
    let network = bench_suite::by_name("cavlc").unwrap().network().unwrap();
    bench("magic_baseline", "nor_decompose_cavlc", || {
        black_box(NorNetlist::from_network(&network).num_gates())
    });
    bench("magic_baseline", "schedule_cavlc", || {
        black_box(map_magic(&network, &MagicConfig::default()).delay_steps)
    });
}

fn main() {
    bench_bdd_build();
    bench_preprocess();
    bench_vh_labeling();
    bench_mapping();
    bench_evaluation();
    bench_end_to_end();
    bench_magic();
}

//! Experiment harness for the COMPACT reproduction.
//!
//! Each binary under `src/bin` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — benchmark properties |
//! | `table2` | Table II — γ ∈ {0, 0.5, 1} |
//! | `table3` | Table III — multiple ROBDDs vs single SBDD |
//! | `table4` | Table IV — COMPACT vs the staircase baseline \[16\] |
//! | `fig9`   | Figure 9 — non-dominated designs under a γ sweep |
//! | `fig10`  | Figure 10 — solver convergence on i2c |
//! | `fig11`  | Figure 11 — relative gap at time-out |
//! | `fig12`  | Figure 12 — power/delay vs \[16\] |
//! | `fig13`  | Figure 13 — power/delay vs CONTRA-style MAGIC |
//! | `validate` | §VIII "SPICE-verified" — functional + electrical checks |
//! | `ablation_study` | DESIGN.md §5 ablations (alignment, ordering, OCT, simplification) |
//! | `yield_study` | DESIGN.md §9 — pre-/post-repair yield vs defect density |
//!
//! JSON artifacts land under `results/` via [`report::write_json`], which
//! writes atomically (temp file + rename) so interrupted runs never leave
//! truncated files.
//!
//! Wall-clock budgets default to laptop scale; set `FLOWC_TIME_LIMIT_SECS`
//! to trade time for tighter solutions (the paper used 3-hour CPLEX runs).

use std::time::Duration;

use flowc_compact::pipeline::{synthesize, CompactResult, Config, VhStrategy};
use flowc_compact::{synthesize_in, Session};
use flowc_logic::bench_suite::Benchmark;
use flowc_logic::Network;

pub mod report;
pub mod yield_study;

/// Per-instance wall-clock budget (seconds) from `FLOWC_TIME_LIMIT_SECS`,
/// defaulting to `default_secs`.
pub fn time_limit(default_secs: u64) -> Duration {
    std::env::var("FLOWC_TIME_LIMIT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map_or(Duration::from_secs(default_secs), Duration::from_secs)
}

/// The benchmark subset the harness solves to proven optimality (the
/// paper's Table II similarly lists only instances that closed within its
/// 3-hour budget). Selection is by graph size: the small EPFL control
/// circuits.
pub const EXACT_SET: &[&str] = &[
    "cavlc",
    "ctrl",
    "dec",
    "i2c",
    "int2float",
    "priority",
    "router",
];

/// The instances that are *not* expected to close within the budget — the
/// Figure 11 population.
pub const HARD_SET: &[&str] = &[
    "c432", "c499", "c880", "c1355", "c1908", "c3540", "c5315", "c7552", "arbiter",
];

/// Runs the COMPACT weighted flow at `gamma` with the given budget.
///
/// # Panics
///
/// Panics if synthesis fails (indicates a labeling bug; surfaced loudly in
/// the harness).
pub fn run_compact(network: &Network, gamma: f64, budget: Duration) -> CompactResult {
    let cfg = compact_config(gamma, budget);
    synthesize(network, &cfg).expect("synthesis must succeed on valid labelings")
}

/// [`run_compact`] through a shared [`Session`], so sweeps over γ reuse
/// one BDD build and one graph extraction per network.
///
/// # Panics
///
/// As [`run_compact`].
pub fn run_compact_in(
    session: &Session,
    network: &Network,
    gamma: f64,
    budget: Duration,
) -> CompactResult {
    let cfg = compact_config(gamma, budget);
    synthesize_in(session, network, &cfg).expect("synthesis must succeed on valid labelings")
}

/// The harness-standard weighted configuration at `gamma`.
pub fn compact_config(gamma: f64, budget: Duration) -> Config {
    Config {
        strategy: VhStrategy::Weighted {
            gamma,
            time_limit: budget,
            exact_node_limit: 60,
        },
        align: true,
        var_order: None,
        label_threads: 1,
    }
}

/// Builds a benchmark's network, panicking with its name on failure.
pub fn build_network(b: &Benchmark) -> Network {
    b.network()
        .unwrap_or_else(|e| panic!("building {}: {e}", b.name))
}

/// Geometric mean of ratios (the paper's "normalized average").
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(1e-12).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// A registry-free timing harness for the `benches/` binaries (the image
/// has no criterion; these benches run offline with `cargo bench`).
pub mod timing {
    use std::time::Duration;

    use flowc_budget::Stopwatch;

    /// Per-case sample count: `FLOWC_BENCH_SAMPLES`, default 10.
    fn samples() -> usize {
        std::env::var("FLOWC_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
            .max(1)
    }

    /// Times `f` (one warm-up call, then `FLOWC_BENCH_SAMPLES` measured
    /// calls) and prints `group/name  median  min  max` in microseconds.
    /// The return value of the last call is returned so callers can keep
    /// results observable without `black_box`.
    pub fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) -> R {
        let mut out = f(); // warm-up; also forces lazy setup
        let n = samples();
        let mut times = Vec::with_capacity(n);
        for _ in 0..n {
            let sw = Stopwatch::unbudgeted();
            out = f();
            times.push(sw.elapsed());
        }
        times.sort();
        let fmt = |d: Duration| {
            let us = d.as_secs_f64() * 1e6;
            if us >= 1e6 {
                format!("{:.3} s", us / 1e6)
            } else if us >= 1e3 {
                format!("{:.2} ms", us / 1e3)
            } else {
                format!("{us:.1} µs")
            }
        };
        println!(
            "{group}/{name:<28} median {:>10}   min {:>10}   max {:>10}   ({n} samples)",
            fmt(times[times.len() / 2]),
            fmt(times[0]),
            fmt(times[times.len() - 1]),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn exact_and_hard_sets_name_real_benchmarks() {
        for name in EXACT_SET.iter().chain(HARD_SET) {
            assert!(
                flowc_logic::bench_suite::by_name(name).is_some(),
                "{name} missing from the registry"
            );
        }
    }

    #[test]
    fn run_compact_on_smallest_benchmark() {
        let b = flowc_logic::bench_suite::by_name("ctrl").unwrap();
        let n = build_network(&b);
        let r = run_compact(&n, 0.5, Duration::from_secs(5));
        assert!(r.stats.semiperimeter >= r.graph_nodes);
    }
}

//! Atomic JSON result artifacts for the experiment harness.
//!
//! The workspace is registry-free, so this is a small hand-rolled JSON
//! value tree plus an atomic file writer (temp file in the destination
//! directory, then `rename`). An interrupted run can therefore never
//! leave a truncated artifact under `results/` — readers either see the
//! previous complete file or the new complete file.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A JSON value. Numbers are `f64`; non-finite values serialize as
/// `null` (JSON has no NaN/Infinity).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via the shortest round-trip `f64` format).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer value.
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Renders the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(key.clone()).render(out, depth + 1);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// file in the same directory (so the final `rename` cannot cross a
/// filesystem boundary), are flushed to disk, and only then replace the
/// destination. Parent directories are created as needed.
///
/// # Errors
///
/// Propagates I/O errors; on failure the temporary file is removed and
/// any previous artifact at `path` is left untouched.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(contents.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Renders `json` pretty-printed and writes it atomically to `path`.
///
/// # Errors
///
/// Propagates I/O errors from [`write_atomic`].
pub fn write_json(path: &Path, json: &Json) -> io::Result<()> {
    write_atomic(path, &json.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_and_typed_values() {
        let j = Json::Obj(vec![
            ("name".into(), Json::str("a\"b\\c\nd")),
            ("count".into(), Json::int(3)),
            ("ratio".into(), Json::Num(0.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let s = j.to_pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("[\n"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("flowc-report-{}", std::process::id()));
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.json")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("flowc-report-json-{}", std::process::id()));
        let path = dir.join("r.json");
        let j = Json::Obj(vec![("x".into(), Json::int(1))]);
        write_json(&path, &j).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), j.to_pretty());
        fs::remove_dir_all(&dir).unwrap();
    }
}

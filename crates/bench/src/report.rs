//! Atomic JSON result artifacts for the experiment harness.
//!
//! The implementation moved to the shared `flowc-report` crate when the
//! serve layer started needing the same JSON tree and atomic writer;
//! this module re-exports it so existing `crate::report::...` callers
//! and downstream users keep working unchanged.

pub use flowc_report::{write_atomic, write_json, Json, JsonError};

//! Monte-Carlo yield analysis of COMPACT designs under manufacturing
//! defects, before and after the `flowc-compact` repair ladder.
//!
//! For each defect density the campaign draws seeded defect maps over the
//! physical array (design footprint plus optional spare lines), checks
//! whether the unrepaired identity placement still computes the reference
//! function (*pre-repair yield*), then runs the repair ladder and checks
//! again (*post-repair yield*). Everything is driven by one explicit
//! seed, so a campaign is reproducible bit-for-bit — CI asserts on it.

use std::time::Duration;

use flowc_budget::Budget;
use flowc_compact::{
    repair_placement, repair_with_resynthesis_in, Config, RepairConfig, RepairStrategy, Session,
};
use flowc_logic::Network;
use flowc_xbar::fault::{apply_defects, inject, DefectRates};
use flowc_xbar::rng::XorShift64;
use flowc_xbar::verify::verify_functional;
use flowc_xbar::Crossbar;

use crate::report::Json;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Defect maps drawn per density point.
    pub trials: usize,
    /// Master seed; every trial's injection seed derives from it.
    pub seed: u64,
    /// Spare wordlines beyond the design footprint.
    pub spare_rows: usize,
    /// Spare bitlines beyond the design footprint.
    pub spare_cols: usize,
    /// Input assignments checked per functional verification.
    pub verify_samples: usize,
    /// Wall-clock budget for the resynthesis rung; `ZERO` disables
    /// resynthesis (the ladder stops at spares).
    pub resynthesis_budget: Duration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 20,
            seed: 0xC0FF_EE00_D15E_A5E5,
            spare_rows: 1,
            spare_cols: 1,
            verify_samples: 128,
            resynthesis_budget: Duration::ZERO,
        }
    }
}

/// Yield at one defect density.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldPoint {
    /// Per-cell defect probability fed to the injector.
    pub defect_rate: f64,
    /// Defect maps drawn.
    pub trials: usize,
    /// Trials where the *unrepaired* placement already computes the
    /// function (all defects benign).
    pub pre_repair_ok: usize,
    /// Trials functional after the repair ladder (includes `pre_repair_ok`).
    pub post_repair_ok: usize,
    /// Repairs that needed only a row/column permutation.
    pub by_permutation: usize,
    /// Repairs that needed spare lines.
    pub by_spares: usize,
    /// Repairs that needed budget-bounded resynthesis.
    pub by_resynthesis: usize,
    /// Trials no rung of the ladder could repair.
    pub irreparable: usize,
}

impl YieldPoint {
    /// Fraction of trials functional without repair.
    pub fn pre_yield(&self) -> f64 {
        fraction(self.pre_repair_ok, self.trials)
    }

    /// Fraction of trials functional after repair.
    pub fn post_yield(&self) -> f64 {
        fraction(self.post_repair_ok, self.trials)
    }
}

fn fraction(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the campaign: for each density in `rates`, draws
/// `cfg.trials` defect maps and measures pre- and post-repair yield of
/// `design` against the reference `network`.
///
/// `synth_config` seeds the resynthesis rung (it is perturbed, not reused
/// verbatim); it is ignored when `cfg.resynthesis_budget` is zero.
pub fn run_campaign(
    network: &Network,
    design: &Crossbar,
    synth_config: &Config,
    rates: &[f64],
    cfg: &CampaignConfig,
) -> Vec<YieldPoint> {
    let phys_rows = design.rows() + cfg.spare_rows;
    let phys_cols = design.cols() + cfg.spare_cols;
    let identity_rows: Vec<usize> = (0..design.rows()).collect();
    let identity_cols: Vec<usize> = (0..design.cols()).collect();
    let placed = design
        .place(&identity_rows, &identity_cols, phys_rows, phys_cols)
        .expect("identity placement into the physical array is always valid");
    let repair_cfg = RepairConfig {
        verify_samples: cfg.verify_samples,
        ..RepairConfig::default()
    };
    // One session for the whole campaign: every resynthesis trial perturbs
    // the same network, so the candidate BDDs and graphs are built once and
    // served from the cache for the remaining trials. Each trial still gets
    // its own wall-clock deadline below.
    let session = Session::default();
    let mut seed_stream = XorShift64::new(cfg.seed);
    rates
        .iter()
        .map(|&rate| {
            let mut point = YieldPoint {
                defect_rate: rate,
                trials: cfg.trials,
                pre_repair_ok: 0,
                post_repair_ok: 0,
                by_permutation: 0,
                by_spares: 0,
                by_resynthesis: 0,
                irreparable: 0,
            };
            for _ in 0..cfg.trials {
                let trial_seed = seed_stream.next_u64();
                let map = inject(
                    phys_rows,
                    phys_cols,
                    &DefectRates::uniform(rate),
                    trial_seed,
                );
                let pre_ok = apply_defects(&placed, &map)
                    .and_then(|x| verify_functional(&x, network, cfg.verify_samples))
                    .map(|r| r.is_valid())
                    .unwrap_or(false);
                if pre_ok {
                    point.pre_repair_ok += 1;
                }
                let outcome = if cfg.resynthesis_budget.is_zero() {
                    repair_placement(network, design, &map, &repair_cfg)
                } else {
                    let budget = Budget::unlimited().with_deadline(cfg.resynthesis_budget);
                    repair_with_resynthesis_in(
                        &session,
                        network,
                        synth_config,
                        design,
                        &map,
                        &repair_cfg,
                        &budget,
                    )
                };
                match outcome {
                    Ok(repaired) => {
                        point.post_repair_ok += 1;
                        match repaired.report.strategy {
                            RepairStrategy::Benign => {}
                            RepairStrategy::Permutation => point.by_permutation += 1,
                            RepairStrategy::Spares => point.by_spares += 1,
                            RepairStrategy::Resynthesis => point.by_resynthesis += 1,
                        }
                    }
                    Err(_) => point.irreparable += 1,
                }
            }
            point
        })
        .collect()
}

/// Synthesizes a campaign-ready design through a [`Backend`].
///
/// The repair ladder permutes, re-places, and re-synthesizes one
/// monolithic crossbar, so only backends advertising
/// [`Capabilities::repairable`](flowc_baselines::Capabilities) can feed a
/// campaign; anything else (a tile schedule, a MAGIC NOR program) is
/// rejected up front with the reason, instead of failing a thousand
/// trials in.
pub fn campaign_design(
    network: &Network,
    backend: &flowc_baselines::Backend,
    budget: &Budget,
) -> Result<Crossbar, String> {
    use flowc_baselines::{MappingBackend, SynthesisCtx};
    if !backend.capabilities().repairable {
        return Err(format!(
            "backend `{}` does not support defect repair (needs a repairable monolithic crossbar)",
            backend.name()
        ));
    }
    let ctx = SynthesisCtx::default().with_budget(budget.clone());
    let design = backend
        .synthesize(network, &ctx)
        .map_err(|e| e.to_string())?;
    design.crossbar().cloned().ok_or_else(|| {
        format!(
            "backend `{}` produced no monolithic crossbar",
            backend.name()
        )
    })
}

/// Serializes a campaign into the `results/` JSON artifact schema.
pub fn campaign_json(
    benchmark: &str,
    design: &Crossbar,
    cfg: &CampaignConfig,
    points: &[YieldPoint],
) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("design_rows".into(), Json::int(design.rows())),
        ("design_cols".into(), Json::int(design.cols())),
        ("spare_rows".into(), Json::int(cfg.spare_rows)),
        ("spare_cols".into(), Json::int(cfg.spare_cols)),
        ("trials".into(), Json::int(cfg.trials)),
        ("seed".into(), Json::str(format!("{:#018x}", cfg.seed))),
        ("verify_samples".into(), Json::int(cfg.verify_samples)),
        (
            "resynthesis_budget_secs".into(),
            Json::Num(cfg.resynthesis_budget.as_secs_f64()),
        ),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("defect_rate".into(), Json::Num(p.defect_rate)),
                            ("pre_repair_ok".into(), Json::int(p.pre_repair_ok)),
                            ("post_repair_ok".into(), Json::int(p.post_repair_ok)),
                            ("pre_yield".into(), Json::Num(p.pre_yield())),
                            ("post_yield".into(), Json::Num(p.post_yield())),
                            ("by_permutation".into(), Json::int(p.by_permutation)),
                            ("by_spares".into(), Json::int(p.by_spares)),
                            ("by_resynthesis".into(), Json::int(p.by_resynthesis)),
                            ("irreparable".into(), Json::int(p.irreparable)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small_design() -> (Network, Crossbar, Config) {
        let b = flowc_logic::bench_suite::by_name("ctrl").unwrap();
        let n = crate::build_network(&b);
        let r = crate::run_compact(&n, 0.5, Duration::from_secs(5));
        (n, r.crossbar, Config::default())
    }

    #[test]
    fn campaign_designs_come_only_from_repairable_backends() {
        let b = flowc_logic::bench_suite::by_name("ctrl").unwrap();
        let n = crate::build_network(&b);
        let budget = Budget::unlimited().with_deadline(Duration::from_secs(10));
        let design = campaign_design(&n, &flowc_baselines::Backend::default(), &budget)
            .expect("compact is repairable");
        assert!(design.rows() > 0 && design.cols() > 0);
        for name in ["magic-nor", "partitioned"] {
            let backend = flowc_baselines::Backend::parse(name).unwrap();
            let err = campaign_design(&n, &backend, &budget).unwrap_err();
            assert!(err.contains(name), "{err}");
        }
    }

    #[test]
    fn campaign_is_deterministic_and_repair_helps() {
        let (n, x, synth) = small_design();
        let cfg = CampaignConfig {
            trials: 8,
            verify_samples: 64,
            ..CampaignConfig::default()
        };
        let rates = [0.002, 0.02];
        let a = run_campaign(&n, &x, &synth, &rates, &cfg);
        let b = run_campaign(&n, &x, &synth, &rates, &cfg);
        assert_eq!(a, b, "same seed must reproduce the same campaign");
        for p in &a {
            assert!(
                p.post_repair_ok >= p.pre_repair_ok,
                "repair can only help: {p:?}"
            );
            assert_eq!(p.post_repair_ok + p.irreparable, p.trials);
        }
    }

    #[test]
    fn zero_defect_rate_gives_full_yield() {
        let (n, x, synth) = small_design();
        let cfg = CampaignConfig {
            trials: 3,
            verify_samples: 64,
            ..CampaignConfig::default()
        };
        let points = run_campaign(&n, &x, &synth, &[0.0], &cfg);
        assert_eq!(points[0].pre_repair_ok, 3);
        assert_eq!(points[0].post_repair_ok, 3);
        assert!((points[0].post_yield() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn campaign_json_has_the_schema_fields() {
        let (n, x, synth) = small_design();
        let cfg = CampaignConfig {
            trials: 2,
            verify_samples: 32,
            ..CampaignConfig::default()
        };
        let points = run_campaign(&n, &x, &synth, &[0.01], &cfg);
        let j = campaign_json("ctrl", &x, &cfg, &points);
        let s = j.to_pretty();
        for key in [
            "benchmark",
            "defect_rate",
            "pre_yield",
            "post_yield",
            "irreparable",
            "seed",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}

//! Table I: properties of the benchmark circuits — inputs, outputs, SBDD
//! nodes, and edges — side by side with the original paper's numbers (the
//! circuits here are structural analogues; see DESIGN.md §3).

use flowc_bdd::build_sbdd;
use flowc_bench::build_network;
use flowc_compact::BddGraph;
use flowc_logic::bench_suite;

fn main() {
    println!("Table I — benchmark properties (ours | paper)");
    println!(
        "{:<11} {:>6} {:>6} {:>8} {:>8}   | {:>6} {:>6} {:>8} {:>8}",
        "benchmark", "in", "out", "nodes", "edges", "in", "out", "nodes", "edges"
    );
    let mut current_suite = None;
    for b in bench_suite::all() {
        if current_suite != Some(b.suite) {
            println!("--- {} ---", b.suite.name());
            current_suite = Some(b.suite);
        }
        let n = build_network(&b);
        let bdds = build_sbdd(&n, None);
        let g = BddGraph::from_bdds(&bdds);
        println!(
            "{:<11} {:>6} {:>6} {:>8} {:>8}   | {:>6} {:>6} {:>8} {:>8}",
            b.name,
            n.num_inputs(),
            n.num_outputs(),
            g.num_nodes(),
            g.num_edges(),
            b.paper.inputs,
            b.paper.outputs,
            b.paper.nodes,
            b.paper.edges,
        );
    }
}

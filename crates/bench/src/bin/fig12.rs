//! Figure 12: normalized power consumption and computation delay of
//! COMPACT (γ = 0.5) versus the prior-art staircase flow \[16\]. Power is
//! the number of literal-programmed memristors (BDD edges); delay is
//! `rows + 1` programming-plus-evaluate steps.

use flowc_baselines::robdd_diagonal::staircase_per_output;
use flowc_bench::{build_network, geomean, run_compact, time_limit};
use flowc_logic::bench_suite;
use flowc_xbar::metrics::CrossbarMetrics;

fn main() {
    let budget = time_limit(15);
    println!("Figure 12 — normalized power and delay, COMPACT vs [16] (γ = 0.5)");
    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "pwr[16]", "pwr_ours", "dly[16]", "dly_ours", "pwr_ratio", "dly_ratio"
    );
    let mut pwr_ratios = Vec::new();
    let mut dly_ratios = Vec::new();
    for b in bench_suite::all() {
        let n = build_network(&b);
        let base = staircase_per_output(&n);
        let bm = CrossbarMetrics::of(&base.crossbar);
        let ours = run_compact(&n, 0.5, budget);
        let pwr_ratio = ours.metrics.active_devices as f64 / bm.active_devices as f64;
        let dly_ratio = ours.metrics.delay_steps as f64 / bm.delay_steps as f64;
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>10} {:>12.3} {:>12.3}",
            b.name,
            bm.active_devices,
            ours.metrics.active_devices,
            bm.delay_steps,
            ours.metrics.delay_steps,
            pwr_ratio,
            dly_ratio
        );
        pwr_ratios.push(pwr_ratio);
        dly_ratios.push(dly_ratio);
    }
    println!();
    println!(
        "normalized average power ratio = {:.3}  (paper: 0.81, i.e. −19%)",
        geomean(&pwr_ratios)
    );
    println!(
        "normalized average delay ratio = {:.3}  (paper: 0.44, i.e. −56%)",
        geomean(&dly_ratios)
    );
}

//! Session/batch synthesis benchmark: cold per-point synthesis vs a γ
//! sweep through one shared [`Session`] (DESIGN.md §11).
//!
//! ```text
//! bench_synthesis [--benchmarks n1,n2,...] [--gammas g1,g2,...]
//!                 [--threads N] [--out PATH] [--baseline PATH]
//!                 [--edits N] [--edit-benchmark NAME]
//!                 [--backends b1,b2,...]
//! ```
//!
//! For each benchmark the sweep runs twice: *cold* (a fresh session per γ
//! point, so every point rebuilds the BDD and graph) and *cached* (one
//! session + [`flowc_compact::synthesize_batch`], so the whole sweep
//! performs one BDD build and one graph extraction). Per-stage timings,
//! cache hit rates, and the cold/cached walls land atomically in
//! `results/BENCH_synthesis.json` (or `--out`). Exits non-zero on any
//! failed synthesis, if a cached sweep recomputes a shared artifact, or
//! if any benchmark's cold/cached speedup drops below 1.0 (the cached
//! sweep must never lose to cold re-synthesis).
//!
//! With `--baseline PATH` the run is additionally diffed against a
//! committed result file: the cached sweep's `vh-label` wall must not
//! regress more than 20% (plus a 250ms noise floor, so sub-second walls
//! don't flake CI on timer jitter).
//!
//! The run closes with an *edit-replay* benchmark (DESIGN.md §15): a
//! fixed-seed stream of `--edits` netlist edits against one benchmark,
//! replayed through an [`EditSession`] and, separately, as a fresh cold
//! synthesis after every edit. The incremental contract is gated: the
//! session must beat per-edit cold re-synthesis by ≥3× wall-clock with
//! more than half the edits resolved above the cold rung (cache hit,
//! permutation repair, or warm start). `--edits 0` skips the replay.
//!
//! A *backend comparison* closes each run: every mapping backend named in
//! `--backends` (default: all of them) synthesizes each benchmark once
//! through the unified [`flowc_baselines::Backend`] dispatch, each design
//! is sample-verified, and the per-backend shapes (rows, cols, S, tiles,
//! transfer ops, wall) land under `"backends"` in the result file.
//! `--backends ""` skips the comparison.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use flowc_baselines::{partitioned_with_tile, Backend, MappingBackend, SynthesisCtx};
use flowc_bench::report::{self, Json};
use flowc_bench::{build_network, time_limit};
use flowc_budget::{Budget, Stopwatch};
use flowc_compact::{
    gamma_sweep_tasks, synthesize_batch, synthesize_in_budgeted, BatchConfig, Config, EditSession,
    EditSessionConfig, EditableNetlist, Session, StageKind, StageTrace,
};
use flowc_conform::{EditStreamGen, Rng};
use flowc_logic::bench_suite;

/// Fixed seed for the edit-replay stream: the same edits every run, so
/// the ≥3× gate measures the repair ladder, not generator luck.
const EDIT_REPLAY_SEED: u64 = 0xED17_57A6;

struct Options {
    benchmarks: Vec<String>,
    gammas: Vec<f64>,
    threads: usize,
    out: std::path::PathBuf,
    baseline: Option<std::path::PathBuf>,
    edits: usize,
    edit_benchmark: String,
    backends: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_synthesis [--benchmarks n1,n2,...] [--gammas g1,g2,...] \
         [--threads N] [--out PATH] [--baseline PATH] \
         [--edits N] [--edit-benchmark NAME] [--backends b1,b2,...]"
    );
    exit(1);
}

fn parse_options() -> Options {
    let mut opts = Options {
        // The small exactly-solved circuits: big enough that a BDD build
        // is measurable, small enough for a CI smoke step.
        benchmarks: vec!["ctrl".into(), "int2float".into(), "router".into()],
        gammas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
        threads: 4,
        out: std::path::PathBuf::from("results/BENCH_synthesis.json"),
        baseline: None,
        edits: 50,
        edit_benchmark: "int2float".into(),
        backends: Backend::NAMES.iter().map(|&n| n.to_string()).collect(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--benchmarks" => {
                opts.benchmarks = value(&mut args, "--benchmarks")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if opts.benchmarks.is_empty() {
                    usage();
                }
            }
            "--gammas" => {
                opts.gammas = value(&mut args, "--gammas")
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().unwrap_or_else(|_| usage()))
                    .collect();
                if opts.gammas.is_empty() {
                    usage();
                }
            }
            "--threads" => {
                opts.threads = value(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--out" => opts.out = value(&mut args, "--out").into(),
            "--baseline" => opts.baseline = Some(value(&mut args, "--baseline").into()),
            "--edits" => {
                opts.edits = value(&mut args, "--edits")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--edit-benchmark" => opts.edit_benchmark = value(&mut args, "--edit-benchmark"),
            "--backends" => {
                opts.backends = value(&mut args, "--backends")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// The cached sweep's `vh-label` wall for `benchmark` in a previously
/// written result file, if the file records one.
fn baseline_label_wall(baseline: &Json, benchmark: &str) -> Option<f64> {
    baseline
        .get("benchmarks")?
        .as_arr()?
        .iter()
        .find(|row| row.get("benchmark").and_then(Json::as_str) == Some(benchmark))?
        .get("stages")?
        .as_arr()?
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("vh-label"))?
        .get("wall_s")?
        .as_f64()
}

fn stage_json(trace: &StageTrace) -> Json {
    Json::Arr(
        StageKind::all()
            .iter()
            .filter(|&&k| trace.runs(k) > 0)
            .map(|&k| {
                Json::Obj(vec![
                    ("stage".into(), Json::str(k.name())),
                    ("runs".into(), Json::int(trace.runs(k))),
                    ("builds".into(), Json::int(trace.builds(k))),
                    ("hits".into(), Json::int(trace.hits(k))),
                    (
                        "wall_s".into(),
                        Json::Num(trace.total_wall(k).as_secs_f64()),
                    ),
                ])
            })
            .collect(),
    )
}

/// The edit-replay benchmark: a fixed-seed stream of edits against one
/// benchmark circuit, replayed twice — once through a single
/// [`EditSession`] (the repair ladder carries state across edits), once
/// as a fresh cold synthesis of the materialized netlist after every
/// edit. Every solve runs under the per-point time budget, so a stream
/// that lands on a pathological netlist fails loudly instead of hanging
/// the harness. Returns the result row and whether a gate failed.
fn edit_replay(opts: &Options, budget: Duration) -> (Json, bool) {
    let Some(b) = bench_suite::by_name(&opts.edit_benchmark) else {
        eprintln!("unknown edit-replay benchmark {:?}", opts.edit_benchmark);
        exit(1);
    };
    let base = build_network(&b);
    let gen = EditStreamGen {
        edits: opts.edits,
        ..EditStreamGen::default()
    };
    let mut rng = Rng::new(EDIT_REPLAY_SEED);
    let case = gen.replay_for(base, &mut rng);
    let config = Config::default();
    let mut failed = false;

    // Incremental: one session carries the whole stream.
    let inc_sw = Stopwatch::unbudgeted();
    let mut session = match EditSession::new(
        &case.base,
        EditSessionConfig {
            synthesis: config.clone(),
            ..EditSessionConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: edit-replay base synthesis failed: {e}", b.name);
            exit(1);
        }
    };
    for edit in &case.edits {
        let per_edit = Budget::unlimited().with_deadline(budget);
        if let Err(e) = session.apply_budgeted(edit, &per_edit) {
            eprintln!("{}: edit replay refused `{edit}`: {e}", b.name);
            failed = true;
        }
    }
    let inc_wall = inc_sw.elapsed();
    let stats = session.stats();

    // Cold: a from-scratch synthesis of the materialized netlist after
    // every edit — what a caller without the session would pay.
    let cold_sw = Stopwatch::unbudgeted();
    let mut shadow = EditableNetlist::from_network(&case.base);
    let cold_solve = |net: &flowc_logic::Network| {
        let per_edit = Budget::unlimited().with_deadline(budget);
        synthesize_in_budgeted(&Session::default(), net, &config, &per_edit)
            .map_err(|e| e.to_string())
    };
    if let Err(e) = cold_solve(&case.base) {
        eprintln!("{}: cold base synthesis failed: {e}", b.name);
        failed = true;
    }
    for edit in &case.edits {
        if shadow.apply(edit).is_err() {
            continue; // the session refused it too (counted above)
        }
        let result = shadow
            .materialize()
            .map_err(|e| e.to_string())
            .and_then(|net| cold_solve(&net));
        if let Err(e) = result {
            eprintln!("{}: cold synthesis after `{edit}` failed: {e}", b.name);
            failed = true;
        }
    }
    let cold_wall = cold_sw.elapsed();

    let resolved = stats.hits + stats.repairs + stats.warm_starts;
    let speedup = cold_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-9);
    println!(
        "edit-replay {:<11} {} edits: incremental {:>8.3}s vs cold {:>8.3}s \
         (speedup {speedup:.2}) — {} hit / {} repaired / {} warm / {} cold",
        b.name,
        case.edits.len(),
        inc_wall.as_secs_f64(),
        cold_wall.as_secs_f64(),
        stats.hits,
        stats.repairs,
        stats.warm_starts,
        stats.cold_solves,
    );
    if speedup < 3.0 {
        eprintln!(
            "{}: edit replay speedup below the 3x gate ({:.3}s incremental vs {:.3}s cold, {speedup:.2}x)",
            b.name,
            inc_wall.as_secs_f64(),
            cold_wall.as_secs_f64()
        );
        failed = true;
    }
    if resolved * 2 <= case.edits.len() {
        eprintln!(
            "{}: only {resolved}/{} edits resolved above the cold rung",
            b.name,
            case.edits.len()
        );
        failed = true;
    }
    let row = Json::Obj(vec![
        ("benchmark".into(), Json::str(b.name)),
        ("seed".into(), Json::Num(EDIT_REPLAY_SEED as f64)),
        ("edits".into(), Json::int(case.edits.len())),
        (
            "incremental_wall_s".into(),
            Json::Num(inc_wall.as_secs_f64()),
        ),
        ("cold_wall_s".into(), Json::Num(cold_wall.as_secs_f64())),
        ("speedup".into(), Json::Num(speedup)),
        ("hits".into(), Json::int(stats.hits)),
        ("repairs".into(), Json::int(stats.repairs)),
        ("warm_starts".into(), Json::int(stats.warm_starts)),
        ("cold_solves".into(), Json::int(stats.cold_solves)),
        (
            "outputs_invalidated".into(),
            Json::int(stats.outputs_invalidated),
        ),
    ]);
    (row, failed)
}

/// The backend comparison: each named backend maps every benchmark once
/// through the unified enum dispatch, the design is sample-verified, and
/// the per-backend shape lands in one row. Returns the rows and whether
/// any synthesis or verification failed.
fn backend_comparison(opts: &Options, budget: Duration) -> (Json, bool) {
    let mut rows = Vec::new();
    let mut failed = false;
    for name in &opts.backends {
        let backend = match Backend::parse(name) {
            // A 12x12 tile (not the 64x64 default) so the comparison
            // benchmarks, which all fit one 64x64 array, actually tile.
            Ok(Backend::Partitioned(_)) => partitioned_with_tile(12, 12),
            Ok(b) => b,
            Err(e) => {
                eprintln!("--backends: {e}");
                exit(1);
            }
        };
        for bench in &opts.benchmarks {
            let Some(b) = bench_suite::by_name(bench) else {
                eprintln!("unknown benchmark {bench:?}");
                exit(1);
            };
            let network = build_network(&b);
            let ctx = SynthesisCtx::default()
                .with_budget(Budget::unlimited().with_deadline(budget.max(Duration::from_secs(1))));
            let sw = Stopwatch::unbudgeted();
            let design = match backend.synthesize(&network, &ctx) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{bench} via {}: synthesis failed: {e}", backend.name());
                    failed = true;
                    continue;
                }
            };
            let wall = sw.elapsed();
            if let Err(e) = backend.verify(&design, &network, 64) {
                eprintln!("{bench} via {}: verification failed: {e}", backend.name());
                failed = true;
                continue;
            }
            let m = &design.metrics;
            println!(
                "{bench:<11} {:<15} {:>4} x {:<4} S={:<5} tiles={:<3} transfers={:<4} {:>7.3}s",
                design.backend,
                m.rows,
                m.cols,
                m.semiperimeter,
                m.tiles,
                m.transfer_ops,
                wall.as_secs_f64()
            );
            rows.push(Json::Obj(vec![
                ("benchmark".into(), Json::str(bench.clone())),
                ("backend".into(), Json::str(design.backend)),
                ("rows".into(), Json::int(m.rows)),
                ("cols".into(), Json::int(m.cols)),
                ("semiperimeter".into(), Json::int(m.semiperimeter)),
                ("max_dimension".into(), Json::int(m.max_dimension)),
                ("tiles".into(), Json::int(m.tiles)),
                ("transfer_ops".into(), Json::int(m.transfer_ops)),
                ("wall_s".into(), Json::Num(wall.as_secs_f64())),
            ]));
        }
    }
    (Json::Arr(rows), failed)
}

fn main() {
    let opts = parse_options();
    let budget = time_limit(10);
    println!(
        "Synthesis benchmark — {} benchmark(s), {} γ point(s), {} thread(s), {}s/point budget",
        opts.benchmarks.len(),
        opts.gammas.len(),
        opts.threads,
        budget.as_secs()
    );
    let baseline = opts.baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("reading baseline {}: {e}", path.display());
            exit(1);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("parsing baseline {}: {e}", path.display());
            exit(1);
        })
    });
    let mut rows = Vec::new();
    let mut failed = false;
    for name in &opts.benchmarks {
        let Some(b) = bench_suite::by_name(name) else {
            eprintln!("unknown benchmark {name:?}");
            exit(1);
        };
        let network = Arc::new(build_network(&b));
        let tasks = gamma_sweep_tasks(&network, &opts.gammas, budget);

        // Cold: a fresh session per point — every point pays the full
        // BDD build and graph extraction.
        let cold_sw = Stopwatch::unbudgeted();
        let mut cold_bdd_wall = Duration::ZERO;
        let mut cold_label_wall = Duration::ZERO;
        for task in &tasks {
            let session = Session::default();
            match flowc_compact::synthesize_in(&session, &network, &task.config) {
                Ok(_) => {
                    cold_bdd_wall += session.trace().total_wall(StageKind::BddBuild);
                    cold_label_wall += session.trace().total_wall(StageKind::VhLabel);
                }
                Err(e) => {
                    eprintln!("{name} {}: cold synthesis failed: {e}", task.label);
                    failed = true;
                }
            }
        }
        let cold_wall = cold_sw.elapsed();

        // Cached: one session, the whole sweep batched.
        let session = Session::default();
        let cached_sw = Stopwatch::unbudgeted();
        let results = synthesize_batch(
            &session,
            &tasks,
            &BatchConfig {
                threads: opts.threads,
                per_task_budget: None,
            },
        );
        let cached_wall = cached_sw.elapsed();
        for (task, r) in tasks.iter().zip(&results) {
            if let Err(e) = r {
                eprintln!("{name} {}: batched synthesis failed: {e}", task.label);
                failed = true;
            }
        }
        let trace = session.trace();
        let cache = session.cache_stats();
        if trace.builds(StageKind::BddBuild) > 1 || trace.builds(StageKind::GraphExtract) > 1 {
            eprintln!(
                "{name}: cached sweep recomputed a shared artifact ({} BDD build(s), {} extraction(s))",
                trace.builds(StageKind::BddBuild),
                trace.builds(StageKind::GraphExtract)
            );
            failed = true;
        }
        let speedup = cold_wall.as_secs_f64() / cached_wall.as_secs_f64().max(1e-9);
        // 50ms absolute slack: sub-10ms sweeps jitter across 1.0 without
        // any real regression behind them.
        if speedup < 1.0 && cached_wall.as_secs_f64() - cold_wall.as_secs_f64() > 0.05 {
            eprintln!(
                "{name}: cached sweep slower than cold ({:.3}s vs {:.3}s, speedup {speedup:.2})",
                cached_wall.as_secs_f64(),
                cold_wall.as_secs_f64()
            );
            failed = true;
        }
        let cached_label_wall = trace.total_wall(StageKind::VhLabel).as_secs_f64();
        if let Some(base) = baseline.as_ref().and_then(|b| baseline_label_wall(b, name)) {
            // 20% relative slack plus a 250ms absolute noise floor: the
            // post-optimization labeling walls are fractions of a second,
            // where a bare 20% gate would trip on timer jitter.
            let limit = base * 1.2 + 0.25;
            println!(
                "{name:<11} vh-label {cached_label_wall:>8.3}s vs baseline {base:>8.3}s \
                 (limit {limit:.3}s)"
            );
            if cached_label_wall > limit {
                eprintln!(
                    "{name}: labeling wall regressed >20% vs baseline \
                     ({cached_label_wall:.3}s > {limit:.3}s)"
                );
                failed = true;
            }
        }
        println!(
            "{name:<11} cold {:>8.3}s (BDD {:>7.3}s)   cached {:>8.3}s (BDD {:>7.3}s)   hits {}/{}",
            cold_wall.as_secs_f64(),
            cold_bdd_wall.as_secs_f64(),
            cached_wall.as_secs_f64(),
            trace.total_wall(StageKind::BddBuild).as_secs_f64(),
            cache.hits,
            cache.hits + cache.misses,
        );
        rows.push(Json::Obj(vec![
            ("benchmark".into(), Json::str(name.clone())),
            ("cold_wall_s".into(), Json::Num(cold_wall.as_secs_f64())),
            (
                "cold_bdd_wall_s".into(),
                Json::Num(cold_bdd_wall.as_secs_f64()),
            ),
            (
                "cold_label_wall_s".into(),
                Json::Num(cold_label_wall.as_secs_f64()),
            ),
            ("cached_wall_s".into(), Json::Num(cached_wall.as_secs_f64())),
            ("speedup".into(), Json::Num(speedup)),
            ("stages".into(), stage_json(&trace)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::int(cache.hits)),
                    ("misses".into(), Json::int(cache.misses)),
                    ("entries".into(), Json::int(cache.entries)),
                    ("evicted".into(), Json::int(cache.evicted)),
                ]),
            ),
        ]));
    }
    let (edit_replay_row, replay_failed) = if opts.edits > 0 {
        edit_replay(&opts, budget)
    } else {
        (Json::Null, false)
    };
    failed = failed || replay_failed;
    let (backend_rows, backends_failed) = if opts.backends.is_empty() {
        (Json::Arr(Vec::new()), false)
    } else {
        println!("\nbackend comparison:");
        backend_comparison(&opts, budget)
    };
    failed = failed || backends_failed;
    let json = Json::Obj(vec![
        (
            "gammas".into(),
            Json::Arr(opts.gammas.iter().map(|&g| Json::Num(g)).collect()),
        ),
        ("threads".into(), Json::int(opts.threads)),
        ("time_limit_secs".into(), Json::Num(budget.as_secs_f64())),
        ("benchmarks".into(), Json::Arr(rows)),
        ("edit_replay".into(), edit_replay_row),
        ("backends".into(), backend_rows),
    ]);
    if let Err(e) = report::write_json(&opts.out, &json) {
        eprintln!("writing {}: {e}", opts.out.display());
        exit(1);
    }
    println!("\nwrote {}", opts.out.display());
    if failed {
        exit(1);
    }
}

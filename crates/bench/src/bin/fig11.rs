//! Figure 11: relative optimality gap after the time budget expires, for
//! the benchmarks that do not close (the paper's c499/c1355/arbiter keep
//! visibly large gaps after 3 hours of CPLEX).

use flowc_bench::{build_network, run_compact, time_limit, HARD_SET};
use flowc_logic::bench_suite;

fn main() {
    let budget = time_limit(15);
    println!(
        "Figure 11 — relative gap at time-out (γ = 0.5, budget {}s per instance)",
        budget.as_secs()
    );
    println!(
        "{:<11} {:>8} {:>12} {:>12} {:>9} {:>5}",
        "benchmark", "nodes", "objective", "bound", "gap", "opt"
    );
    for name in HARD_SET {
        let b = bench_suite::by_name(name).expect("registered");
        let n = build_network(&b);
        let r = run_compact(&n, 0.5, budget);
        let bound = r
            .trace
            .as_ref()
            .and_then(|t| t.points().last())
            .map_or(f64::NAN, |p| p.best_bound);
        println!(
            "{:<11} {:>8} {:>12.1} {:>12.1} {:>8.1}% {:>5}",
            b.name,
            r.graph_nodes,
            r.stats.objective(0.5),
            bound,
            100.0 * r.relative_gap,
            if r.optimal { "yes" } else { "no" },
        );
    }
    println!();
    println!(
        "(paper: XOR-dominated circuits — c499/c1355 — and the arbiter keep the largest gaps)"
    );
}

//! Yield campaign: Monte-Carlo defect injection on a COMPACT design,
//! reporting pre-/post-repair yield across defect densities (DESIGN.md §9).
//!
//! ```text
//! yield_study [BENCHMARK] [--backend NAME] [--trials N] [--seed N]
//!             [--spare-rows N] [--spare-cols N] [--rates p1,p2,...]
//!             [--resynthesis-secs S] [--out PATH]
//! ```
//!
//! The table goes to stdout; the JSON artifact is written atomically to
//! `results/yield_study.json` (or `--out`). Exits non-zero on bad usage
//! or if the campaign shows repair losing to no-repair (a ladder bug).
//!
//! `--backend` selects the mapping backend producing the campaign design;
//! only backends whose designs the repair ladder can operate on (a single
//! repairable crossbar) are accepted — see
//! [`flowc_bench::yield_study::campaign_design`].

use std::process::exit;
use std::time::Duration;

use flowc_baselines::Backend;
use flowc_bench::yield_study::{campaign_design, campaign_json, run_campaign, CampaignConfig};
use flowc_bench::{build_network, report, time_limit};
use flowc_budget::Budget;
use flowc_logic::bench_suite;

struct Options {
    benchmark: String,
    backend: String,
    rates: Vec<f64>,
    out: std::path::PathBuf,
    cfg: CampaignConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: yield_study [BENCHMARK] [--backend NAME] [--trials N] [--seed N] \
         [--spare-rows N] [--spare-cols N] [--rates p1,p2,...] \
         [--resynthesis-secs S] [--out PATH]"
    );
    exit(1);
}

fn parse_options() -> Options {
    let mut opts = Options {
        benchmark: "ctrl".to_string(),
        backend: "compact".to_string(),
        rates: vec![0.002, 0.01, 0.03, 0.05],
        out: std::path::PathBuf::from("results/yield_study.json"),
        cfg: CampaignConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                opts.cfg.trials = value(&mut args, "--trials")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => {
                opts.cfg.seed = value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--spare-rows" => {
                opts.cfg.spare_rows = value(&mut args, "--spare-rows")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--spare-cols" => {
                opts.cfg.spare_cols = value(&mut args, "--spare-cols")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--rates" => {
                opts.rates = value(&mut args, "--rates")
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().unwrap_or_else(|_| usage()))
                    .collect();
                if opts.rates.is_empty() {
                    usage();
                }
            }
            "--resynthesis-secs" => {
                let secs: f64 = value(&mut args, "--resynthesis-secs")
                    .parse()
                    .unwrap_or_else(|_| usage());
                opts.cfg.resynthesis_budget = Duration::from_secs_f64(secs.max(0.0));
            }
            "--out" => opts.out = value(&mut args, "--out").into(),
            "--backend" => opts.backend = value(&mut args, "--backend"),
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => opts.benchmark = name.to_string(),
            _ => usage(),
        }
    }
    opts
}

fn main() {
    let opts = parse_options();
    let Some(b) = bench_suite::by_name(&opts.benchmark) else {
        eprintln!("unknown benchmark {:?}", opts.benchmark);
        exit(1);
    };
    let network = build_network(&b);
    let backend = Backend::parse(&opts.backend).unwrap_or_else(|e| {
        eprintln!("--backend: {e}");
        exit(1);
    });
    let budget = Budget::unlimited().with_deadline(time_limit(10));
    let design = campaign_design(&network, &backend, &budget).unwrap_or_else(|e| {
        eprintln!("{}: {e}", opts.benchmark);
        exit(1);
    });
    let design = &design;
    println!(
        "Yield campaign — {} via {} ({}x{} design, +{}r/+{}c spares, {} trials/point, seed {:#x})",
        opts.benchmark,
        opts.backend,
        design.rows(),
        design.cols(),
        opts.cfg.spare_rows,
        opts.cfg.spare_cols,
        opts.cfg.trials,
        opts.cfg.seed,
    );
    let synth_config = flowc_compact::Config::default();
    let points = run_campaign(&network, design, &synth_config, &opts.rates, &opts.cfg);
    println!(
        "{:>12} {:>10} {:>11} | {:>6} {:>6} {:>6} {:>6}",
        "defect_rate", "pre_yield", "post_yield", "perm", "spare", "resyn", "dead"
    );
    let mut repair_regressed = false;
    for p in &points {
        println!(
            "{:>12.4} {:>9.1}% {:>10.1}% | {:>6} {:>6} {:>6} {:>6}",
            p.defect_rate,
            100.0 * p.pre_yield(),
            100.0 * p.post_yield(),
            p.by_permutation,
            p.by_spares,
            p.by_resynthesis,
            p.irreparable,
        );
        repair_regressed |= p.post_repair_ok < p.pre_repair_ok;
    }
    let json = campaign_json(&opts.benchmark, design, &opts.cfg, &points);
    if let Err(e) = report::write_json(&opts.out, &json) {
        eprintln!("writing {}: {e}", opts.out.display());
        exit(1);
    }
    println!("\nwrote {}", opts.out.display());
    if repair_regressed {
        eprintln!("REPAIR REGRESSION: post-repair yield fell below pre-repair yield");
        exit(1);
    }
}

//! Design validation (the paper's "we have verified that all the crossbar
//! designs are valid using SPICE simulations"): every benchmark's COMPACT
//! design is checked functionally against netlist simulation (exhaustive up
//! to 16 inputs, sampled beyond), and the small designs additionally go
//! through DC nodal analysis with the memristor electrical model.

use flowc_bench::report::{self, Json};
use flowc_bench::{build_network, run_compact, time_limit};
use flowc_logic::bench_suite;
use flowc_xbar::circuit::ElectricalModel;
use flowc_xbar::verify::{verify_electrical, verify_functional};

fn main() {
    let budget = time_limit(10);
    println!("Validation — functional (flow) + electrical (nodal analysis)");
    println!(
        "{:<11} {:>7}x{:<7} {:>9} {:>6} | {:>10} {:>10} {:>8}",
        "benchmark", "rows", "cols", "checked", "func", "min_on_V", "max_off_V", "elec"
    );
    let mut all_ok = true;
    let mut records: Vec<Json> = Vec::new();
    for b in bench_suite::all() {
        let n = build_network(&b);
        let r = run_compact(&n, 0.5, budget);
        let report = verify_functional(&r.crossbar, &n, 256).expect("evaluable");
        let func_ok = report.is_valid();
        all_ok &= func_ok;
        let mut record = vec![
            ("benchmark".to_string(), Json::str(b.name)),
            ("rows".to_string(), Json::int(r.crossbar.rows())),
            ("cols".to_string(), Json::int(r.crossbar.cols())),
            ("checked".to_string(), Json::int(report.checked)),
            ("functional_ok".to_string(), Json::Bool(func_ok)),
        ];
        // Electrical check only for small designs (dense solve is cubic).
        let wires = r.crossbar.rows() + r.crossbar.cols();
        let elec = if wires <= 400 {
            let e = verify_electrical(&r.crossbar, &n, &ElectricalModel::default(), 32)
                .expect("evaluable");
            all_ok &= e.is_valid();
            let (min_on, max_off) = e.electrical_margin.unwrap_or((f64::NAN, f64::NAN));
            record.push(("electrical_ok".to_string(), Json::Bool(e.is_valid())));
            record.push(("min_on_v".to_string(), Json::Num(min_on)));
            record.push(("max_off_v".to_string(), Json::Num(max_off)));
            format!(
                "{:>10.3} {:>10.3} {:>8}",
                min_on,
                max_off,
                if e.is_valid() { "ok" } else { "FAIL" }
            )
        } else {
            record.push(("electrical_ok".to_string(), Json::Null));
            format!("{:>10} {:>10} {:>8}", "-", "-", "skip")
        };
        records.push(Json::Obj(record));
        println!(
            "{:<11} {:>7}x{:<7} {:>9} {:>6} | {}",
            b.name,
            r.crossbar.rows(),
            r.crossbar.cols(),
            report.checked,
            if func_ok { "ok" } else { "FAIL" },
            elec
        );
    }
    let artifact = Json::Obj(vec![
        ("all_ok".to_string(), Json::Bool(all_ok)),
        ("designs".to_string(), Json::Arr(records)),
    ]);
    let out = std::path::Path::new("results/validate.json");
    if let Err(e) = report::write_json(out, &artifact) {
        eprintln!("writing {}: {e}", out.display());
        std::process::exit(1);
    }
    println!();
    println!("wrote {}", out.display());
    if all_ok {
        println!("all designs valid");
    } else {
        println!("VALIDATION FAILURES — see rows marked FAIL");
        std::process::exit(1);
    }
}

//! Figure 10: solver convergence on the i2c benchmark at γ = 0.5 — the
//! best integer solution, the best bound, and the relative gap over the
//! elapsed time, as recorded by the VH-labeling solver's trace.

use flowc_bench::{build_network, run_compact, time_limit};
use flowc_logic::bench_suite;

fn main() {
    let budget = time_limit(60);
    let b = bench_suite::by_name("i2c").expect("registered");
    let n = build_network(&b);
    let r = run_compact(&n, 0.5, budget);
    println!(
        "Figure 10 — solver convergence on i2c (γ = 0.5, budget {}s)",
        budget.as_secs()
    );
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "elapsed_s", "best_integer", "best_bound", "rel_gap"
    );
    let trace = r.trace.expect("the weighted strategy records a trace");
    for p in trace.points() {
        println!(
            "{:>10.3} {:>14} {:>14.1} {:>10.4}",
            p.elapsed.as_secs_f64(),
            p.best_integer
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            p.best_bound,
            p.relative_gap()
        );
    }
    println!();
    println!(
        "final: objective {:.1}, bound {:.1}, gap {:.4}, optimal = {}",
        r.stats.objective(0.5),
        trace.points().last().map_or(0.0, |p| p.best_bound),
        r.relative_gap,
        r.optimal
    );
    println!("(paper: the incumbent decreases in jumps while the bound rises until they meet)");
}

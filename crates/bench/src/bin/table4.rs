//! Table IV: COMPACT (γ = 0.5) versus the prior-art staircase mapping
//! (reference \[16\]) — BDD nodes, rows, columns, semiperimeter, area, and
//! synthesis time over the full benchmark population, plus the headline
//! reductions and the `S/n` coefficients (≈1.9 for \[16\] vs ≈1.11 for
//! COMPACT in the paper).

use std::time::Instant;

use flowc_baselines::robdd_diagonal::staircase_per_output;
use flowc_bench::{build_network, geomean, run_compact, secs, time_limit};
use flowc_logic::bench_suite;
use flowc_xbar::metrics::CrossbarMetrics;

fn main() {
    let budget = time_limit(20);
    println!(
        "Table IV — COMPACT vs staircase [16] (γ = 0.5, budget {}s)",
        budget.as_secs()
    );
    println!(
        "{:<11} | {:>8} {:>6} {:>6} {:>7} {:>10} {:>8} | {:>8} {:>6} {:>6} {:>7} {:>10} {:>8}",
        "", "[16]", "", "", "", "", "", "COMPACT", "", "", "", "", ""
    );
    println!(
        "{:<11} | {:>8} {:>6} {:>6} {:>7} {:>10} {:>8} | {:>8} {:>6} {:>6} {:>7} {:>10} {:>8}",
        "benchmark",
        "nodes",
        "R",
        "C",
        "S",
        "area",
        "time_s",
        "nodes",
        "R",
        "C",
        "S",
        "area",
        "time_s"
    );
    let mut ratios: Vec<[f64; 5]> = Vec::new();
    let mut s_over_n = (Vec::new(), Vec::new());
    for b in bench_suite::all() {
        let n = build_network(&b);
        let t0 = Instant::now();
        let base = staircase_per_output(&n);
        let base_time = t0.elapsed();
        let bm = CrossbarMetrics::of(&base.crossbar);
        let ours = run_compact(&n, 0.5, budget);
        println!(
            "{:<11} | {:>8} {:>6} {:>6} {:>7} {:>10} {:>8} | {:>8} {:>6} {:>6} {:>7} {:>10} {:>8}",
            b.name,
            base.merged_nodes,
            bm.rows,
            bm.cols,
            bm.semiperimeter,
            bm.area,
            secs(base_time),
            ours.graph_nodes,
            ours.stats.rows,
            ours.stats.cols,
            ours.stats.semiperimeter,
            ours.metrics.area,
            secs(ours.synthesis_time),
        );
        ratios.push([
            ours.stats.rows as f64 / bm.rows as f64,
            ours.stats.cols as f64 / bm.cols as f64,
            ours.stats.max_dimension as f64 / bm.max_dimension as f64,
            ours.stats.semiperimeter as f64 / bm.semiperimeter as f64,
            ours.metrics.area as f64 / bm.area as f64,
        ]);
        s_over_n
            .0
            .push(bm.semiperimeter as f64 / base.merged_nodes as f64);
        s_over_n
            .1
            .push(ours.stats.semiperimeter as f64 / ours.graph_nodes as f64);
    }
    println!();
    let col = |i: usize| geomean(&ratios.iter().map(|r| r[i]).collect::<Vec<_>>());
    println!("COMPACT / [16] (normalized average; paper §VIII-D reports −56/−77/−85/−55/−89%):");
    println!("  rows : {:.3}", col(0));
    println!("  cols : {:.3}", col(1));
    println!("  D    : {:.3}", col(2));
    println!("  S    : {:.3}", col(3));
    println!("  area : {:.3}", col(4));
    println!();
    println!(
        "S/n coefficient: [16] = {:.2} (paper ≈ 1.90), COMPACT = {:.2} (paper ≈ 1.11)",
        geomean(&s_over_n.0),
        geomean(&s_over_n.1)
    );
}

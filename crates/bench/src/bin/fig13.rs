//! Figure 13: normalized power consumption and computation delay of
//! COMPACT (γ = 0.5) versus CONTRA-style MAGIC in-memory computing, on the
//! EPFL control benchmarks only (the paper excludes the arithmetic ISCAS85
//! circuits here because BDDs scale poorly on them). CONTRA settings:
//! k = 4 LUT inputs, 128×128 array, spacing 6; power = write operations,
//! delay = schedule time steps.

use flowc_baselines::magic::{map_magic, MagicConfig};
use flowc_bench::{build_network, geomean, run_compact, time_limit};
use flowc_logic::bench_suite;

fn main() {
    let budget = time_limit(15);
    println!("Figure 13 — COMPACT vs CONTRA-style MAGIC (EPFL control)");
    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "pwr_magic", "pwr_ours", "dly_magic", "dly_ours", "pwr_ratio", "dly_ratio"
    );
    let mut pwr_ratios = Vec::new();
    let mut dly_ratios = Vec::new();
    for b in bench_suite::epfl_control() {
        let n = build_network(&b);
        let magic = map_magic(&n, &MagicConfig::default());
        let ours = run_compact(&n, 0.5, budget);
        // COMPACT power proxy: worst case, all literal devices programmed.
        let pwr_ratio = ours.metrics.active_devices as f64 / magic.total_ops() as f64;
        let dly_ratio = ours.metrics.delay_steps as f64 / magic.delay_steps as f64;
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>10} {:>12.3} {:>12.3}",
            b.name,
            magic.total_ops(),
            ours.metrics.active_devices,
            magic.delay_steps,
            ours.metrics.delay_steps,
            pwr_ratio,
            dly_ratio
        );
        pwr_ratios.push(pwr_ratio);
        dly_ratios.push(dly_ratio);
    }
    println!();
    println!(
        "normalized average power ratio = {:.3}  (paper: 0.45, i.e. −55%)",
        geomean(&pwr_ratios)
    );
    println!(
        "normalized average delay ratio = {:.3}  (paper: 0.13, i.e. −87%, CONTRA 8.65× slower)",
        geomean(&dly_ratios)
    );
}

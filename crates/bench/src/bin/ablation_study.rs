//! Ablation study over the design choices DESIGN.md §5 calls out:
//! alignment-constraint cost, variable-ordering heuristics (natural /
//! DFS-fanin / sifting), exact-vs-heuristic odd cycle transversals, and the
//! effect of the logic simplification pass.

use std::time::{Duration, Instant};

use flowc_bdd::{build_sbdd, dfs_fanin_order, sift};
use flowc_bench::{build_network, time_limit};
use flowc_compact::oct_method::{min_semiperimeter, OctMethodConfig};
use flowc_compact::BddGraph;
use flowc_graph::oct_heuristic;
use flowc_logic::bench_suite;
use flowc_logic::xform::simplify;

fn main() {
    let budget = time_limit(10);
    let set = ["ctrl", "int2float", "router", "cavlc", "dec", "priority"];

    println!("Ablation 1 — alignment constraint cost (γ = 1 labeling)");
    println!(
        "{:<11} {:>8} {:>10} {:>10} {:>9}",
        "benchmark", "nodes", "S_free", "S_aligned", "upgrades"
    );
    for name in set {
        let n = build_network(&bench_suite::by_name(name).expect("registered"));
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let free = min_semiperimeter(
            &g,
            &OctMethodConfig {
                time_limit: budget,
                align: false,
                ..Default::default()
            },
        );
        let aligned = min_semiperimeter(
            &g,
            &OctMethodConfig {
                time_limit: budget,
                align: true,
                ..Default::default()
            },
        );
        let sf = free.labeling.stats().semiperimeter;
        let sa = aligned.labeling.stats().semiperimeter;
        println!(
            "{:<11} {:>8} {:>10} {:>10} {:>9}",
            name,
            g.num_nodes(),
            sf,
            sa,
            sa.saturating_sub(sf)
        );
    }

    println!();
    println!("Ablation 2 — variable ordering (SBDD nodes)");
    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "natural", "dfs", "sifted", "sift_s"
    );
    for name in ["ctrl", "int2float", "router", "cavlc"] {
        let n = build_network(&bench_suite::by_name(name).expect("registered"));
        let natural = build_sbdd(&n, None).shared_size();
        let dfs = build_sbdd(&n, Some(&dfs_fanin_order(&n))).shared_size();
        let t0 = Instant::now();
        let sifted = sift(&n, budget.min(Duration::from_secs(20)));
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>9.1}s",
            name,
            natural,
            dfs,
            sifted.final_size,
            t0.elapsed().as_secs_f64()
        );
    }

    println!();
    println!("Ablation 3 — exact OCT (Lemma 1) vs greedy heuristic");
    println!(
        "{:<11} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "benchmark", "nodes", "k_exact", "k_greedy", "t_exact_s", "t_greedy_s"
    );
    for name in set {
        let n = build_network(&bench_suite::by_name(name).expect("registered"));
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let t0 = Instant::now();
        let exact = min_semiperimeter(
            &g,
            &OctMethodConfig {
                time_limit: budget,
                align: false,
                ..Default::default()
            },
        );
        let t_exact = t0.elapsed();
        let t0 = Instant::now();
        let greedy = oct_heuristic(&g.graph);
        let t_greedy = t0.elapsed();
        println!(
            "{:<11} {:>8} {:>7}{} {:>8} {:>10.2} {:>10.2}",
            name,
            g.num_nodes(),
            exact.oct_size,
            if exact.optimal { "*" } else { " " },
            greedy.len(),
            t_exact.as_secs_f64(),
            t_greedy.as_secs_f64()
        );
    }
    println!("(* = proven minimum)");

    println!();
    println!("Ablation 4 — logic simplification before BDD construction");
    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "gates", "gates_opt", "nodes", "nodes_opt"
    );
    for name in set {
        let n = build_network(&bench_suite::by_name(name).expect("registered"));
        let s = simplify(&n).expect("valid network");
        let nodes = build_sbdd(&n, None).shared_size();
        let nodes_opt = build_sbdd(&s, None).shared_size();
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>10}",
            name,
            n.num_gates(),
            s.num_gates(),
            nodes,
            nodes_opt
        );
    }
    println!();
    println!("(canonical SBDDs under a fixed order are unaffected by gate-level");
    println!(" redundancy — the node columns agreeing is itself the check)");
}

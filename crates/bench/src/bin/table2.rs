//! Table II: influence of the user-defined parameter γ — rows, columns,
//! maximum dimension `D`, semiperimeter `S`, and synthesis time for
//! γ ∈ {0, 0.5, 1}, on the benchmark subset that solves within the budget
//! (the paper likewise lists only its optimally-solved subset).

use flowc_bench::{build_network, run_compact_in, secs, time_limit, EXACT_SET};
use flowc_compact::Session;
use flowc_logic::bench_suite;

fn main() {
    let budget = time_limit(20);
    println!(
        "Table II — γ evaluation (budget {}s per solve)",
        budget.as_secs()
    );
    println!(
        "{:<11} {:>5} | {:>5} {:>5} {:>5} {:>5} {:>8} {:>4}",
        "benchmark", "γ", "R", "C", "D", "S", "time_s", "opt"
    );
    let mut s_by_gamma = vec![Vec::new(); 3];
    let mut d_by_gamma = vec![Vec::new(); 3];
    // One session across the whole table: the three γ points of each
    // benchmark share one BDD build and one graph extraction.
    let session = Session::default();
    for name in EXACT_SET {
        let b = bench_suite::by_name(name).expect("registered");
        let n = build_network(&b);
        for (gi, gamma) in [0.0, 0.5, 1.0].into_iter().enumerate() {
            let r = run_compact_in(&session, &n, gamma, budget);
            println!(
                "{:<11} {:>5} | {:>5} {:>5} {:>5} {:>5} {:>8} {:>4}",
                b.name,
                gamma,
                r.stats.rows,
                r.stats.cols,
                r.stats.max_dimension,
                r.stats.semiperimeter,
                secs(r.synthesis_time),
                if r.optimal { "yes" } else { "no" },
            );
            s_by_gamma[gi].push(r.stats.semiperimeter as f64);
            d_by_gamma[gi].push(r.stats.max_dimension as f64);
        }
    }
    // Normalized comparisons the paper discusses in §VIII-A.
    let norm = |xs: &[f64], ys: &[f64]| {
        let ratios: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| x / y).collect();
        flowc_bench::geomean(&ratios)
    };
    println!();
    println!(
        "normalized S(γ=0)/S(γ=0.5)   = {:.3}   (paper: ≈1.036)",
        norm(&s_by_gamma[0], &s_by_gamma[1])
    );
    println!(
        "normalized D(γ=0)/D(γ=0.5)   = {:.3}   (paper: ≈0.998)",
        norm(&d_by_gamma[0], &d_by_gamma[1])
    );
    println!(
        "normalized S(γ=1)/S(γ=0.5)   = {:.3}   (paper: ≈0.997)",
        norm(&s_by_gamma[2], &s_by_gamma[1])
    );
    println!(
        "normalized D(γ=1)/D(γ=0.5)   = {:.3}   (paper: ≈1.021)",
        norm(&d_by_gamma[2], &d_by_gamma[1])
    );
    println!("conclusion: γ = 0.5 gives the best overall designs (paper §VIII-A)");
}

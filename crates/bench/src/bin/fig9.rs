//! Figure 9: non-dominated crossbar designs under a γ sweep, for the two
//! circuits the paper plots (cavlc and int2float). Each line prints one
//! frontier point `(rows, columns)`.

use flowc_bench::{build_network, time_limit};
use flowc_compact::pareto::frontier;
use flowc_logic::bench_suite;

fn main() {
    let budget = time_limit(10);
    for name in ["cavlc", "int2float"] {
        let b = bench_suite::by_name(name).expect("registered");
        let n = build_network(&b);
        let frontier = frontier(&n, 7, budget);
        println!("Figure 9 — non-dominated designs for {name}:");
        println!("{:>8} {:>8} {:>8}", "rows", "cols", "γ");
        for p in &frontier {
            if p.gamma.is_nan() {
                println!("{:>8} {:>8} {:>8}", p.rows, p.cols, "aspect");
            } else {
                println!("{:>8} {:>8} {:>8.2}", p.rows, p.cols, p.gamma);
            }
        }
        println!(
            "(paper reports e.g. {} frontier points for {})",
            if name == "cavlc" { 6 } else { 3 },
            name
        );
        println!();
    }
}

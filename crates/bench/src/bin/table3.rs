//! Table III: multiple ROBDDs versus a single SBDD — node counts, crossbar
//! shape, and synthesis time for both multi-output flows, all at γ = 0.5
//! with alignment (the paper's default).

use std::time::Instant;

use flowc_baselines::robdd_diagonal::compact_per_output;
use flowc_bench::{build_network, geomean, run_compact, secs, time_limit, EXACT_SET};
use flowc_compact::pipeline::{Config, VhStrategy};
use flowc_logic::bench_suite;
use flowc_xbar::metrics::CrossbarMetrics;

fn main() {
    let budget = time_limit(15);
    println!("Table III — multiple ROBDDs vs single SBDD (γ = 0.5)");
    println!(
        "{:<11} | {:>8} {:>5} {:>5} {:>5} {:>6} {:>8} | {:>8} {:>5} {:>5} {:>5} {:>6} {:>8}",
        "", "ROBDDs", "", "", "", "", "", "SBDD", "", "", "", "", ""
    );
    println!(
        "{:<11} | {:>8} {:>5} {:>5} {:>5} {:>6} {:>8} | {:>8} {:>5} {:>5} {:>5} {:>6} {:>8}",
        "benchmark", "nodes", "R", "C", "D", "S", "time_s", "nodes", "R", "C", "D", "S", "time_s"
    );
    let mut ratios: Vec<(f64, f64, f64, f64, f64)> = Vec::new();
    for name in EXACT_SET {
        let b = bench_suite::by_name(name).expect("registered");
        let n = build_network(&b);
        // Multiple ROBDDs, each through COMPACT, merged diagonally. The
        // per-output pieces are small, so each gets a slice of the budget.
        let cfg = Config {
            strategy: VhStrategy::Weighted {
                gamma: 0.5,
                time_limit: budget.min(std::time::Duration::from_secs(5)),
                exact_node_limit: 60,
            },
            align: true,
            var_order: None,
            label_threads: 1,
        };
        let t0 = Instant::now();
        let multi = compact_per_output(&n, &cfg).expect("per-output synthesis");
        let multi_time = t0.elapsed();
        let mm = CrossbarMetrics::of(&multi.crossbar);
        // Single SBDD through COMPACT.
        let shared = run_compact(&n, 0.5, budget);
        println!(
            "{:<11} | {:>8} {:>5} {:>5} {:>5} {:>6} {:>8} | {:>8} {:>5} {:>5} {:>5} {:>6} {:>8}",
            b.name,
            multi.merged_nodes,
            mm.rows,
            mm.cols,
            mm.max_dimension,
            mm.semiperimeter,
            secs(multi_time),
            shared.graph_nodes,
            shared.stats.rows,
            shared.stats.cols,
            shared.stats.max_dimension,
            shared.stats.semiperimeter,
            secs(shared.synthesis_time),
        );
        ratios.push((
            shared.graph_nodes as f64 / multi.merged_nodes as f64,
            shared.stats.rows as f64 / mm.rows as f64,
            shared.stats.cols as f64 / mm.cols as f64,
            shared.stats.max_dimension as f64 / mm.max_dimension as f64,
            shared.stats.semiperimeter as f64 / mm.semiperimeter as f64,
        ));
    }
    println!();
    let col = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| {
        geomean(&ratios.iter().map(f).collect::<Vec<_>>())
    };
    println!("SBDD / ROBDDs reductions (normalized average; paper §VIII-B):");
    println!("  nodes : {:.3}  (paper ≈ 0.78, i.e. −22%)", col(|r| r.0));
    println!("  rows  : {:.3}  (paper ≈ 0.71, i.e. −29%)", col(|r| r.1));
    println!("  cols  : {:.3}  (paper ≈ 0.73, i.e. −27%)", col(|r| r.2));
    println!("  D     : {:.3}  (paper ≈ 0.73, i.e. −27%)", col(|r| r.3));
    println!("  S     : {:.3}  (paper ≈ 0.72, i.e. −28%)", col(|r| r.4));
}

//! Maximum bipartite matching (Hopcroft–Karp) and König minimum vertex
//! covers — the machinery behind the half-integral vertex-cover LP bound
//! and the Nemhauser–Trotter kernel.

/// A maximum matching in a bipartite graph with `left` and `right` vertex
/// sets indexed separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteMatching {
    /// `pair_left[u]` is the right vertex matched to left `u`, or `usize::MAX`.
    pub pair_left: Vec<usize>,
    /// `pair_right[v]` is the left vertex matched to right `v`, or `usize::MAX`.
    pub pair_right: Vec<usize>,
    /// Matching cardinality.
    pub size: usize,
}

const NIL: usize = usize::MAX;

/// Hopcroft–Karp maximum matching. `adj[u]` lists the right-neighbors of
/// left vertex `u`; `num_right` is the size of the right vertex set.
///
/// Runs in `O(E √V)`.
pub fn hopcroft_karp(adj: &[Vec<usize>], num_right: usize) -> BipartiteMatching {
    let nl = adj.len();
    let mut pair_left = vec![NIL; nl];
    let mut pair_right = vec![NIL; num_right];
    let mut dist = vec![0usize; nl];
    let mut size = 0usize;

    loop {
        // BFS layering from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        let mut found_augmenting = false;
        for u in 0..nl {
            if pair_left[u] == NIL {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = usize::MAX;
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                let w = pair_right[v];
                if w == NIL {
                    found_augmenting = true;
                } else if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmentation along the layering.
        fn dfs(
            u: usize,
            adj: &[Vec<usize>],
            pair_left: &mut [usize],
            pair_right: &mut [usize],
            dist: &mut [usize],
        ) -> bool {
            for i in 0..adj[u].len() {
                let v = adj[u][i];
                let w = pair_right[v];
                if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, pair_left, pair_right, dist))
                {
                    pair_left[u] = v;
                    pair_right[v] = u;
                    return true;
                }
            }
            dist[u] = usize::MAX;
            false
        }
        for u in 0..nl {
            if pair_left[u] == NIL && dfs(u, adj, &mut pair_left, &mut pair_right, &mut dist) {
                size += 1;
            }
        }
    }
    BipartiteMatching {
        pair_left,
        pair_right,
        size,
    }
}

/// König's theorem: derives a minimum vertex cover of the bipartite graph
/// from a maximum matching. Returns `(in_cover_left, in_cover_right)`; the
/// cover size equals the matching size.
pub fn konig_cover(adj: &[Vec<usize>], matching: &BipartiteMatching) -> (Vec<bool>, Vec<bool>) {
    let nl = adj.len();
    let nr = matching.pair_right.len();
    // Z = vertices reachable by alternating paths from free left vertices.
    let mut visited_left = vec![false; nl];
    let mut visited_right = vec![false; nr];
    let mut queue = std::collections::VecDeque::new();
    for (u, vis) in visited_left.iter_mut().enumerate() {
        if matching.pair_left[u] == NIL {
            *vis = true;
            queue.push_back(u);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            // Traverse non-matching edges left->right.
            if matching.pair_left[u] == v {
                continue;
            }
            if !visited_right[v] {
                visited_right[v] = true;
                // Traverse the matching edge right->left.
                let w = matching.pair_right[v];
                if w != NIL && !visited_left[w] {
                    visited_left[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    // Cover = (L \ Z) ∪ (R ∩ Z).
    let in_cover_left: Vec<bool> = visited_left.iter().map(|&z| !z).collect();
    let in_cover_right = visited_right;
    (in_cover_left, in_cover_right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(adj: &[Vec<usize>], left: &[bool], right: &[bool]) {
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(left[u] || right[v], "edge {u}-{v} uncovered");
            }
        }
    }

    #[test]
    fn perfect_matching_on_cycle() {
        // Bipartite C6 as L={0,1,2}, R={0,1,2}: u ~ u and u ~ u+1.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        let m = hopcroft_karp(&adj, 3);
        assert_eq!(m.size, 3);
        let (cl, cr) = konig_cover(&adj, &m);
        assert_eq!(
            cl.iter().filter(|&&b| b).count() + cr.iter().filter(|&&b| b).count(),
            3
        );
        check_cover(&adj, &cl, &cr);
    }

    #[test]
    fn star_graph() {
        // One left vertex connected to 4 right vertices: matching 1, cover 1.
        let adj = vec![vec![0, 1, 2, 3]];
        let m = hopcroft_karp(&adj, 4);
        assert_eq!(m.size, 1);
        let (cl, cr) = konig_cover(&adj, &m);
        check_cover(&adj, &cl, &cr);
        assert_eq!(
            cl.iter().filter(|&&b| b).count() + cr.iter().filter(|&&b| b).count(),
            1
        );
        assert!(cl[0], "center covers everything");
    }

    #[test]
    fn no_edges() {
        let adj = vec![vec![], vec![]];
        let m = hopcroft_karp(&adj, 2);
        assert_eq!(m.size, 0);
        let (cl, cr) = konig_cover(&adj, &m);
        assert!(cl.iter().all(|&b| !b) && cr.iter().all(|&b| !b));
    }

    #[test]
    fn augmenting_path_needed() {
        // L0-{R0}, L1-{R0,R1}: greedy could match L0-R0 blocking L1 without
        // augmentation; HK must find size 2.
        let adj = vec![vec![0], vec![0, 1]];
        let m = hopcroft_karp(&adj, 2);
        assert_eq!(m.size, 2);
        assert_eq!(m.pair_left[0], 0);
        assert_eq!(m.pair_left[1], 1);
    }

    #[test]
    fn random_graphs_matching_equals_konig_cover() {
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..20 {
            let nl = 3 + (rng() % 8) as usize;
            let nr = 3 + (rng() % 8) as usize;
            let mut adj = vec![Vec::new(); nl];
            for (u, nbrs) in adj.iter_mut().enumerate() {
                for v in 0..nr {
                    if rng() % 3 == 0 {
                        nbrs.push(v);
                    }
                }
                let _ = u;
            }
            let m = hopcroft_karp(&adj, nr);
            let (cl, cr) = konig_cover(&adj, &m);
            check_cover(&adj, &cl, &cr);
            let cover_size = cl.iter().filter(|&&b| b).count() + cr.iter().filter(|&&b| b).count();
            assert_eq!(cover_size, m.size, "König equality failed on trial {trial}");
            // Matching is consistent.
            for (u, nbrs) in adj.iter().enumerate().take(nl) {
                if m.pair_left[u] != NIL {
                    assert_eq!(m.pair_right[m.pair_left[u]], u);
                    assert!(nbrs.contains(&m.pair_left[u]));
                }
            }
        }
    }
}

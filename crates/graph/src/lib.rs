//! Undirected graph algorithms for the COMPACT reproduction: bipartiteness
//! and 2-coloring, connected components, the Cartesian product with `K₂`,
//! maximum bipartite matching (Hopcroft–Karp), exact minimum vertex cover
//! with LP/Nemhauser–Trotter kernelization, and the odd cycle transversal
//! via the paper's Lemma 1 (`OCT(G) = k  ⇔  VC(G □ K₂) = n + k`).
//!
//! ```
//! use flowc_graph::{UGraph, odd_cycle_transversal, OctConfig};
//!
//! // A triangle needs one vertex removed to become bipartite.
//! let mut g = UGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(0, 2);
//! let oct = odd_cycle_transversal(&g, &OctConfig::default());
//! assert_eq!(oct.transversal.len(), 1);
//! assert!(oct.optimal);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bipartite;
mod matching;
mod oct;
mod product;
mod ugraph;
mod vertex_cover;

pub use bipartite::{two_color, ColorResult};
pub use matching::{hopcroft_karp, konig_cover, BipartiteMatching};
pub use oct::{
    oct_heuristic, odd_cycle_transversal, odd_cycle_transversal_budgeted, OctConfig, OctResult,
};
pub use product::cartesian_with_k2;
pub use ugraph::UGraph;
pub use vertex_cover::{
    greedy_cover, lp_lower_bound, minimum_vertex_cover, minimum_vertex_cover_budgeted,
    minimum_vertex_cover_seeded, nt_kernel, NtKernel, VcConfig, VcResult,
};

use std::collections::HashSet;

/// A simple undirected graph over vertices `0..n` with adjacency lists.
///
/// Self-loops are rejected and parallel edges are deduplicated, matching the
/// structure of the BDD-derived graphs COMPACT labels (a reduced BDD never
/// produces either).
#[derive(Debug, Clone, Default)]
pub struct UGraph {
    adj: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    edge_set: HashSet<(usize, usize)>,
}

impl UGraph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_set: HashSet::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex, returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge is new;
    /// parallel edges are silently ignored.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loops are not allowed");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        let key = (u.min(v), u.max(v));
        if !self.edge_set.insert(key) {
            return false;
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edges.push(key);
        true
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_set.contains(&(u.min(v), u.max(v)))
    }

    /// The neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// All edges as `(min, max)` pairs, in insertion order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// A stable structural fingerprint: FNV-1a over the vertex count and
    /// the edge list in insertion order. Deterministic across processes
    /// (no `RandomState`), so it can identify cached graph artifacts.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01B3);
            }
        };
        mix(self.adj.len() as u64);
        mix(self.edges.len() as u64);
        for &(u, v) in &self.edges {
            mix(u as u64);
            mix(v as u64);
        }
        h
    }

    /// The subgraph induced by keeping vertices where `keep[v]` is true.
    /// Returns the subgraph plus the map from new to original indices.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != num_vertices()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (UGraph, Vec<usize>) {
        assert_eq!(keep.len(), self.num_vertices(), "mask length mismatch");
        let mut new_index = vec![usize::MAX; self.num_vertices()];
        let mut back = Vec::new();
        for (v, &k) in keep.iter().enumerate() {
            if k {
                new_index[v] = back.len();
                back.push(v);
            }
        }
        let mut g = UGraph::new(back.len());
        for &(u, v) in &self.edges {
            if keep[u] && keep[v] {
                g.add_edge(new_index[u], new_index[v]);
            }
        }
        (g, back)
    }

    /// Connected components: returns `(component_id_per_vertex, count)`.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.num_vertices();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = count;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &w in &self.adj[u] {
                    if comp[w] == usize::MAX {
                        comp[w] = count;
                        queue.push_back(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let mut g = UGraph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 1), "parallel edge ignored");
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 2);
        let v = g.add_vertex();
        assert_eq!(v, 4);
    }

    #[test]
    fn self_loop_panics() {
        let mut g = UGraph::new(2);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.add_edge(1, 1))).is_err()
        );
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let mut g = UGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let keep = vec![true, false, true, true, false];
        let (sub, back) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(back, vec![0, 2, 3]);
        // Only 2-3 survives (0-1 and 1-2 lose vertex 1; 3-4 loses 4).
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(1, 2)); // new indices of 2 and 3
    }

    #[test]
    fn components_counts() {
        let mut g = UGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let (comp, count) = g.components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[5], comp[0]);
        assert_ne!(comp[5], comp[2]);
    }
}

//! Odd cycle transversal via the paper's Lemma 1: `G` has an OCT of size
//! `k` iff `G □ K₂` has a vertex cover of size `n + k`. A minimum vertex
//! cover of the product therefore yields a minimum OCT; *any* vertex cover
//! yields a valid (possibly suboptimal) OCT, which is what makes the
//! time-limited mode sound.

use std::time::Duration;

use flowc_budget::Budget;

use crate::product::cartesian_with_k2;
use crate::vertex_cover::{minimum_vertex_cover_seeded, VcConfig};
use crate::{two_color, ColorResult, UGraph};

/// Configuration for [`odd_cycle_transversal`].
#[derive(Debug, Clone)]
pub struct OctConfig {
    /// Wall-clock budget for the underlying vertex-cover solve.
    pub time_limit: Duration,
    /// Worker threads for the per-component vertex-cover solves.
    pub threads: usize,
}

impl Default for OctConfig {
    fn default() -> Self {
        OctConfig {
            time_limit: Duration::from_secs(60),
            threads: 1,
        }
    }
}

/// Result of an odd-cycle-transversal computation.
#[derive(Debug, Clone)]
pub struct OctResult {
    /// Vertices whose removal makes the graph bipartite, sorted ascending.
    pub transversal: Vec<usize>,
    /// Whether the transversal was proven minimum.
    pub optimal: bool,
    /// A valid lower bound on the minimum OCT size.
    pub lower_bound: usize,
    /// Branch & bound nodes expanded by the vertex-cover solve.
    pub nodes: u64,
}

/// Computes an odd cycle transversal of `g` via Lemma 1 (vertex cover of
/// `G □ K₂`). Bipartite inputs short-circuit to the empty transversal.
pub fn odd_cycle_transversal(g: &UGraph, config: &OctConfig) -> OctResult {
    odd_cycle_transversal_budgeted(g, config, &Budget::unlimited())
}

/// [`odd_cycle_transversal`] under a shared [`Budget`]: the underlying
/// vertex-cover branch & bound checks the budget's cancellation token and
/// deadline cooperatively, so an in-flight OCT solve can be interrupted
/// mid-branch. On exhaustion the result degrades exactly like a time-out:
/// a valid (greedy-backed) transversal with `optimal == false`.
pub fn odd_cycle_transversal_budgeted(
    g: &UGraph,
    config: &OctConfig,
    budget: &Budget,
) -> OctResult {
    if matches!(two_color(g), ColorResult::Bipartite(_)) {
        return OctResult {
            transversal: Vec::new(),
            optimal: true,
            lower_bound: 0,
            nodes: 0,
        };
    }
    let n = g.num_vertices();
    let p = cartesian_with_k2(g);
    // Seed the product cover from the greedy transversal via the forward
    // direction of Lemma 1: both copies of each transversal vertex, plus
    // one copy of every other vertex picked by its 2-coloring side. The
    // seed has size `n + |greedy OCT|`, which usually lands within one or
    // two of the optimum and prunes the branch & bound from the start.
    let greedy = oct_heuristic(g);
    let seed = product_cover_from_transversal(g, &greedy, n);
    let vc = minimum_vertex_cover_seeded(
        &p,
        &VcConfig {
            time_limit: config.time_limit,
            threads: config.threads,
        },
        budget,
        seed.as_deref(),
    );
    let in_cover = {
        let mut m = vec![false; 2 * n];
        for &v in &vc.cover {
            m[v] = true;
        }
        m
    };
    let transversal: Vec<usize> = (0..n).filter(|&v| in_cover[v] && in_cover[v + n]).collect();
    debug_assert!(is_valid_oct(g, &transversal), "Lemma 1 construction failed");
    // When the vertex-cover solve timed out, its fallback cover can be
    // worse than the direct greedy transversal — return the better of the
    // two (optimality is only ever claimed for the exact path).
    let transversal = if vc.optimal {
        transversal
    } else {
        if greedy.len() < transversal.len() {
            greedy
        } else {
            transversal
        }
    };
    OctResult {
        optimal: vc.optimal,
        // VC(P) = n + OCT(G) at the optimum, so VC bounds transfer shifted
        // by n (clamped at 1: the graph is known non-bipartite here).
        lower_bound: vc.lower_bound.saturating_sub(n).max(1),
        transversal,
        nodes: vc.nodes,
    }
}

/// Lemma 1, forward direction: a transversal `t` of `g` plus a 2-coloring
/// of `g − t` yields a vertex cover of `G □ K₂` of size `n + |t|` (both
/// copies of each transversal vertex, one color-chosen copy of the rest).
/// Returns `None` if `g − t` is not bipartite (an invalid transversal).
fn product_cover_from_transversal(g: &UGraph, t: &[usize], n: usize) -> Option<Vec<usize>> {
    let mut keep = vec![true; n];
    for &v in t {
        keep[v] = false;
    }
    let (sub, back) = g.induced_subgraph(&keep);
    let colors = match two_color(&sub) {
        ColorResult::Bipartite(colors) => colors,
        ColorResult::OddCycle(_) => return None,
    };
    let mut cover = Vec::with_capacity(n + t.len());
    for &v in t {
        cover.push(v);
        cover.push(v + n);
    }
    for (sub_v, &orig) in back.iter().enumerate() {
        cover.push(if colors[sub_v] == 0 { orig } else { orig + n });
    }
    Some(cover)
}

/// Fast greedy OCT: repeatedly 2-color; on each odd-cycle certificate remove
/// the cycle vertex of maximum degree; finally try to re-insert removed
/// vertices that no longer break bipartiteness.
pub fn oct_heuristic(g: &UGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut removed = vec![false; n];
    loop {
        let (sub, back) = g.induced_subgraph(&removed.iter().map(|&r| !r).collect::<Vec<_>>());
        match two_color(&sub) {
            ColorResult::Bipartite(_) => break,
            ColorResult::OddCycle(cycle) => {
                let victim = cycle
                    .iter()
                    .map(|&v| back[v])
                    .max_by_key(|&v| g.degree(v))
                    .expect("cycle is nonempty");
                removed[victim] = true;
            }
        }
    }
    // Re-insertion pass: keep the transversal minimal.
    let order: Vec<usize> = (0..n).filter(|&v| removed[v]).collect();
    for v in order {
        removed[v] = false;
        let keep: Vec<bool> = removed.iter().map(|&r| !r).collect();
        let (sub, _) = g.induced_subgraph(&keep);
        if matches!(two_color(&sub), ColorResult::OddCycle(_)) {
            removed[v] = true;
        }
    }
    (0..n).filter(|&v| removed[v]).collect()
}

/// Checks that removing `transversal` leaves a bipartite graph.
pub(crate) fn is_valid_oct(g: &UGraph, transversal: &[usize]) -> bool {
    let mut keep = vec![true; g.num_vertices()];
    for &v in transversal {
        keep[v] = false;
    }
    let (sub, _) = g.induced_subgraph(&keep);
    matches!(two_color(&sub), ColorResult::Bipartite(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn bipartite_graph_has_empty_oct() {
        let g = cycle(6);
        let r = odd_cycle_transversal(&g, &OctConfig::default());
        assert!(r.transversal.is_empty() && r.optimal && r.lower_bound == 0);
    }

    #[test]
    fn single_odd_cycle_needs_one() {
        for n in [3usize, 5, 7, 9] {
            let g = cycle(n);
            let r = odd_cycle_transversal(&g, &OctConfig::default());
            assert_eq!(r.transversal.len(), 1, "C{n}");
            assert!(r.optimal);
            assert_eq!(r.lower_bound, 1);
            assert!(is_valid_oct(&g, &r.transversal));
        }
    }

    #[test]
    fn two_disjoint_triangles_need_two() {
        let mut g = UGraph::new(6);
        for base in [0, 3] {
            g.add_edge(base, base + 1);
            g.add_edge(base + 1, base + 2);
            g.add_edge(base, base + 2);
        }
        let r = odd_cycle_transversal(&g, &OctConfig::default());
        assert_eq!(r.transversal.len(), 2);
        assert!(r.optimal);
        assert!(is_valid_oct(&g, &r.transversal));
    }

    #[test]
    fn complete_graph_k5() {
        // OCT(K5) = 3 (remove 3 to leave an edge... K2 is bipartite; K3 is
        // not, so at least 2 must go; removing 2 leaves K3 — still odd).
        let mut g = UGraph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        let r = odd_cycle_transversal(&g, &OctConfig::default());
        assert_eq!(r.transversal.len(), 3);
        assert!(r.optimal);
    }

    #[test]
    fn shared_vertex_triangles() {
        // Two triangles sharing vertex 0: removing 0 fixes both.
        let mut g = UGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(0, 4);
        let r = odd_cycle_transversal(&g, &OctConfig::default());
        assert_eq!(r.transversal, vec![0]);
        assert!(r.optimal);
    }

    #[test]
    fn heuristic_is_valid_and_small_on_single_cycle() {
        for n in [3usize, 5, 11] {
            let g = cycle(n);
            let t = oct_heuristic(&g);
            assert!(is_valid_oct(&g, &t), "C{n}");
            assert_eq!(t.len(), 1, "C{n} heuristic should be tight");
        }
    }

    #[test]
    fn heuristic_valid_on_random_nonbipartite() {
        let mut seed = 42u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let n = 10 + (rng() % 10) as usize;
            let mut g = UGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng() % 100 < 25 {
                        g.add_edge(u, v);
                    }
                }
            }
            let t = oct_heuristic(&g);
            assert!(is_valid_oct(&g, &t));
            // Exact result is no larger.
            let r = odd_cycle_transversal(&g, &OctConfig::default());
            if r.optimal {
                assert!(r.transversal.len() <= t.len());
                assert!(is_valid_oct(&g, &r.transversal));
            }
        }
    }

    #[test]
    fn cancelled_budget_still_returns_valid_oct() {
        let mut g = UGraph::new(6);
        for base in [0, 3] {
            g.add_edge(base, base + 1);
            g.add_edge(base + 1, base + 2);
            g.add_edge(base, base + 2);
        }
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let r = odd_cycle_transversal_budgeted(&g, &OctConfig::default(), &budget);
        assert!(is_valid_oct(&g, &r.transversal));
        assert!(!r.optimal);
    }

    #[test]
    fn timeout_still_returns_valid_oct() {
        let mut g = UGraph::new(40);
        let mut seed = 5u64;
        for u in 0..40usize {
            for v in (u + 1)..40 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                if seed >> 58 & 3 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        let r = odd_cycle_transversal(
            &g,
            &OctConfig {
                time_limit: Duration::from_millis(0),
                threads: 1,
            },
        );
        assert!(is_valid_oct(&g, &r.transversal));
        assert!(r.lower_bound <= r.transversal.len().max(1));
    }
}

//! Bipartiteness testing and 2-coloring with odd-cycle certificates.

use crate::UGraph;

/// Outcome of a 2-coloring attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColorResult {
    /// The graph is bipartite; `colors[v]` is 0 or 1. Isolated vertices get
    /// color 0. Each connected component is colored independently with its
    /// lowest-index vertex colored 0.
    Bipartite(Vec<u8>),
    /// The graph contains an odd cycle; the certificate lists its vertices
    /// in cycle order.
    OddCycle(Vec<usize>),
}

/// BFS 2-coloring. Returns the coloring, or an odd-cycle certificate when
/// the graph is not bipartite.
pub fn two_color(g: &UGraph) -> ColorResult {
    let n = g.num_vertices();
    let mut color = vec![u8::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if color[w] == u8::MAX {
                    color[w] = 1 - color[u];
                    parent[w] = u;
                    queue.push_back(w);
                } else if color[w] == color[u] {
                    return ColorResult::OddCycle(extract_cycle(&parent, u, w));
                }
            }
        }
    }
    ColorResult::Bipartite(color)
}

/// Reconstructs an odd cycle from the BFS tree given the conflict edge
/// `{u, w}` (both endpoints share a color).
fn extract_cycle(parent: &[usize], u: usize, w: usize) -> Vec<usize> {
    // Walk both vertices to the root, find the lowest common ancestor.
    let path_to_root = |mut v: usize| -> Vec<usize> {
        let mut path = vec![v];
        while parent[v] != usize::MAX {
            v = parent[v];
            path.push(v);
        }
        path
    };
    let pu = path_to_root(u);
    let pw = path_to_root(w);
    // Find LCA: deepest common vertex.
    let set: std::collections::HashSet<usize> = pu.iter().copied().collect();
    let lca = *pw.iter().find(|v| set.contains(v)).expect("same BFS tree");
    let mut cycle: Vec<usize> = pu.iter().take_while(|&&v| v != lca).copied().collect();
    cycle.push(lca);
    let tail: Vec<usize> = pw.iter().take_while(|&&v| v != lca).copied().collect();
    cycle.extend(tail.into_iter().rev());
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cycle_is_bipartite() {
        let mut g = UGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        match two_color(&g) {
            ColorResult::Bipartite(c) => {
                for &(u, v) in g.edges() {
                    assert_ne!(c[u], c[v]);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn odd_cycle_certified() {
        let mut g = UGraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        match two_color(&g) {
            ColorResult::OddCycle(cycle) => {
                assert!(cycle.len() % 2 == 1, "certificate must be odd: {cycle:?}");
                assert!(cycle.len() >= 3);
                // Consecutive vertices (cyclically) are adjacent.
                for i in 0..cycle.len() {
                    let u = cycle[i];
                    let v = cycle[(i + 1) % cycle.len()];
                    assert!(g.has_edge(u, v), "{u}-{v} missing in {cycle:?}");
                }
                // Vertices are distinct.
                let set: std::collections::HashSet<_> = cycle.iter().collect();
                assert_eq!(set.len(), cycle.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn triangle_with_tail() {
        let mut g = UGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 2); // triangle 2-3-4
        g.add_edge(0, 5);
        match two_color(&g) {
            ColorResult::OddCycle(cycle) => {
                assert_eq!(cycle.len(), 3);
                let mut c = cycle.clone();
                c.sort_unstable();
                assert_eq!(c, vec![2, 3, 4]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disconnected_components_colored_independently() {
        let mut g = UGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        match two_color(&g) {
            ColorResult::Bipartite(c) => {
                assert_eq!(c[0], 0);
                assert_eq!(c[2], 0, "each component starts at color 0");
                assert_eq!(c[4], 0, "isolated vertex gets color 0");
                assert_ne!(c[0], c[1]);
                assert_ne!(c[2], c[3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_graph() {
        let g = UGraph::new(0);
        assert_eq!(two_color(&g), ColorResult::Bipartite(vec![]));
    }
}

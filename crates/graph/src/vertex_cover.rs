//! Exact minimum vertex cover with LP/Nemhauser–Trotter kernelization and
//! branch & bound — the engine behind the paper's Eq. 2 (the minimum vertex
//! cover ILP that yields the smallest odd cycle transversal).
//!
//! The vertex-cover LP is half-integral; its optimum equals half the
//! maximum-matching size of the bipartite double graph, and the König cover
//! of that double graph yields the Nemhauser–Trotter partition (vertices
//! forced into / out of some optimum cover). BDD-derived graphs are nearly
//! bipartite, so this kernelization usually collapses the instance and the
//! residual branch & bound tree stays small.

use std::time::{Duration, Instant};

use flowc_budget::Budget;

use crate::matching::{hopcroft_karp, konig_cover};
use crate::UGraph;

/// Configuration for [`minimum_vertex_cover`].
#[derive(Debug, Clone)]
pub struct VcConfig {
    /// Wall-clock budget; on expiry the best cover found is returned with
    /// `optimal == false` and a valid lower bound.
    pub time_limit: Duration,
}

impl Default for VcConfig {
    fn default() -> Self {
        VcConfig {
            time_limit: Duration::from_secs(60),
        }
    }
}

/// Result of a vertex-cover computation.
#[derive(Debug, Clone)]
pub struct VcResult {
    /// Vertices of the cover, sorted ascending.
    pub cover: Vec<usize>,
    /// Whether `cover` was proven minimum.
    pub optimal: bool,
    /// A valid lower bound on the minimum cover size.
    pub lower_bound: usize,
}

/// Greedy max-degree vertex cover (upper bound / warm start).
pub fn greedy_cover(g: &UGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut cover = Vec::new();
    let mut remaining = g.num_edges();
    while remaining > 0 {
        let v = (0..n)
            .filter(|&v| alive[v])
            .max_by_key(|&v| deg[v])
            .expect("edges remain, so a vertex does too");
        if deg[v] == 0 {
            break;
        }
        cover.push(v);
        alive[v] = false;
        for &w in g.neighbors(v) {
            if alive[w] {
                deg[w] -= 1;
                remaining -= 1;
            }
        }
        deg[v] = 0;
    }
    cover.sort_unstable();
    cover
}

/// The half-integral vertex-cover LP bound: half the maximum-matching size
/// of the bipartite double graph, restricted to `alive` vertices (pass all
/// `true` for the whole graph).
fn lp_bound_masked(g: &UGraph, alive: &[bool]) -> f64 {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        if alive[u] && alive[v] {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let m = hopcroft_karp(&adj, n);
    m.size as f64 / 2.0
}

/// The vertex-cover LP lower bound of the whole graph (half-integral, equal
/// to half the maximum matching of the bipartite double).
pub fn lp_lower_bound(g: &UGraph) -> f64 {
    lp_bound_masked(g, &vec![true; g.num_vertices()])
}

/// The Nemhauser–Trotter partition derived from an optimal half-integral LP
/// solution.
#[derive(Debug, Clone)]
pub struct NtKernel {
    /// Vertices with LP value 1: some minimum cover contains all of them.
    pub forced_in: Vec<usize>,
    /// Vertices with LP value 0: some minimum cover avoids all of them.
    pub excluded: Vec<usize>,
    /// Vertices with LP value ½: the residual kernel to branch on.
    pub kernel: Vec<usize>,
}

/// Computes the Nemhauser–Trotter kernel of `g`.
pub fn nt_kernel(g: &UGraph) -> NtKernel {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        adj[u].push(v);
        adj[v].push(u);
    }
    let m = hopcroft_karp(&adj, n);
    let (in_left, in_right) = konig_cover(&adj, &m);
    let mut forced_in = Vec::new();
    let mut excluded = Vec::new();
    let mut kernel = Vec::new();
    for v in 0..n {
        match (in_left[v], in_right[v]) {
            (true, true) => forced_in.push(v),
            (false, false) => excluded.push(v),
            _ => kernel.push(v),
        }
    }
    NtKernel {
        forced_in,
        excluded,
        kernel,
    }
}

struct Solver<'g> {
    g: &'g UGraph,
    best_cover: Vec<usize>,
    deadline: Instant,
    budget: Budget,
    timed_out: bool,
    /// Smallest unexplored lower bound among pruned-by-timeout subtrees.
    open_bound: Option<usize>,
}

impl<'g> Solver<'g> {
    /// Applies degree-0/degree-1 reductions in place; returns extra chosen
    /// vertices, or `None` if the subproblem exceeds the incumbent anyway.
    fn reduce(&self, alive: &mut [bool], chosen: &mut Vec<usize>) {
        loop {
            let mut changed = false;
            for v in 0..self.g.num_vertices() {
                if !alive[v] {
                    continue;
                }
                let nbrs: Vec<usize> = self
                    .g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| alive[w])
                    .collect();
                match nbrs.len() {
                    0 => {
                        alive[v] = false;
                        changed = true;
                    }
                    1 => {
                        // Pendant vertex: take the neighbor.
                        let w = nbrs[0];
                        chosen.push(w);
                        alive[w] = false;
                        alive[v] = false;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return;
            }
        }
    }

    fn rec(&mut self, mut alive: Vec<bool>, mut chosen: Vec<usize>) {
        if Instant::now() >= self.deadline || self.budget.check().is_err() {
            self.timed_out = true;
            // This subtree stays open: its chosen-so-far size is a valid
            // subtree lower bound contribution.
            let lb = chosen.len();
            self.open_bound = Some(self.open_bound.map_or(lb, |b| b.min(lb)));
            return;
        }
        self.reduce(&mut alive, &mut chosen);
        if chosen.len() >= self.best_cover.len() {
            return; // cannot improve
        }
        // Any edge left?
        let branch_vertex = (0..self.g.num_vertices())
            .filter(|&v| alive[v])
            .max_by_key(|&v| self.g.neighbors(v).iter().filter(|&&w| alive[w]).count());
        let branch_vertex = match branch_vertex {
            Some(v) if self.g.neighbors(v).iter().any(|&w| alive[w]) => v,
            _ => {
                // Edge-free: `chosen` is a cover (strictly better than best).
                self.best_cover = chosen;
                return;
            }
        };
        // Bound: chosen + ceil(LP of residual graph).
        let lp = lp_bound_masked(self.g, &alive).ceil() as usize;
        if chosen.len() + lp >= self.best_cover.len() {
            return;
        }
        // Branch 2 first (include N(v)): stronger when the branch vertex has
        // high degree, which the selection maximizes.
        let nbrs: Vec<usize> = self
            .g
            .neighbors(branch_vertex)
            .iter()
            .copied()
            .filter(|&w| alive[w])
            .collect();
        {
            let mut a = alive.clone();
            let mut c = chosen.clone();
            for &w in &nbrs {
                c.push(w);
                a[w] = false;
            }
            a[branch_vertex] = false;
            self.rec(a, c);
        }
        {
            let mut a = alive;
            let mut c = chosen;
            c.push(branch_vertex);
            a[branch_vertex] = false;
            self.rec(a, c);
        }
    }
}

/// Computes a minimum vertex cover of `g`, component by component:
/// bipartite components are solved exactly in polynomial time
/// (Hopcroft–Karp + König), non-bipartite components go through
/// Nemhauser–Trotter kernelization and branch & bound with the
/// half-integral LP bound. Within the time limit the result is proven
/// optimal; on expiry the best cover found so far is returned together with
/// a valid global lower bound.
pub fn minimum_vertex_cover(g: &UGraph, config: &VcConfig) -> VcResult {
    minimum_vertex_cover_budgeted(g, config, &Budget::unlimited())
}

/// [`minimum_vertex_cover`] under a shared [`Budget`]: the branch & bound
/// checks the budget's cancellation token and deadline at every recursion
/// step (on top of the config's own `time_limit`). Exhaustion behaves like
/// a time-out — the best cover found so far is returned with
/// `optimal == false` and a valid lower bound.
pub fn minimum_vertex_cover_budgeted(g: &UGraph, config: &VcConfig, budget: &Budget) -> VcResult {
    use crate::{two_color, ColorResult};
    let deadline = Instant::now() + budget.remaining_or(config.time_limit);
    let (comp, count) = g.components();
    let mut cover = Vec::new();
    let mut lower_bound = 0usize;
    let mut optimal = true;
    for c in 0..count {
        let keep: Vec<bool> = comp.iter().map(|&x| x == c).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        if sub.num_edges() == 0 {
            continue;
        }
        match two_color(&sub) {
            ColorResult::Bipartite(colors) => {
                let local = bipartite_cover(&sub, &colors);
                lower_bound += local.len();
                cover.extend(local.into_iter().map(|v| back[v]));
            }
            ColorResult::OddCycle(_) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                let local = vc_nonbipartite(&sub, remaining, budget);
                lower_bound += local.lower_bound;
                optimal &= local.optimal;
                cover.extend(local.cover.into_iter().map(|v| back[v]));
            }
        }
    }
    cover.sort_unstable();
    cover.dedup();
    VcResult {
        cover,
        optimal,
        lower_bound,
    }
}

/// Exact minimum vertex cover of a bipartite graph via König's theorem.
fn bipartite_cover(g: &UGraph, colors: &[u8]) -> Vec<usize> {
    // Left = color-0 vertices, right = color-1 vertices.
    let n = g.num_vertices();
    let mut left_ids = Vec::new();
    let mut right_ids = Vec::new();
    let mut pos = vec![usize::MAX; n];
    for v in 0..n {
        if colors[v] == 0 {
            pos[v] = left_ids.len();
            left_ids.push(v);
        } else {
            pos[v] = right_ids.len();
            right_ids.push(v);
        }
    }
    let mut adj = vec![Vec::new(); left_ids.len()];
    for &(u, v) in g.edges() {
        let (l, r) = if colors[u] == 0 { (u, v) } else { (v, u) };
        adj[pos[l]].push(pos[r]);
    }
    let m = hopcroft_karp(&adj, right_ids.len());
    let (cl, cr) = konig_cover(&adj, &m);
    let mut cover = Vec::new();
    for (i, &inc) in cl.iter().enumerate() {
        if inc {
            cover.push(left_ids[i]);
        }
    }
    for (i, &inc) in cr.iter().enumerate() {
        if inc {
            cover.push(right_ids[i]);
        }
    }
    cover
}

/// NT kernelization + branch & bound for one non-bipartite component.
fn vc_nonbipartite(g: &UGraph, time_limit: Duration, budget: &Budget) -> VcResult {
    let nt = nt_kernel(g);
    // Solve the kernel.
    let mut keep = vec![false; g.num_vertices()];
    for &v in &nt.kernel {
        keep[v] = true;
    }
    let (kernel_graph, back) = g.induced_subgraph(&keep);
    let greedy = greedy_cover(&kernel_graph);
    let deadline = Instant::now() + time_limit;
    let mut solver = Solver {
        g: &kernel_graph,
        best_cover: greedy,
        deadline,
        budget: budget.clone(),
        timed_out: false,
        open_bound: None,
    };
    let alive = vec![true; kernel_graph.num_vertices()];
    solver.rec(alive, Vec::new());

    let mut cover: Vec<usize> = nt.forced_in.clone();
    cover.extend(solver.best_cover.iter().map(|&v| back[v]));
    cover.sort_unstable();
    cover.dedup();

    let kernel_lp = lp_lower_bound(&kernel_graph).ceil() as usize;
    let kernel_lb = if solver.timed_out {
        // The optimum is min(best found, optima of subtrees left open); each
        // open subtree's optimum is at least its chosen-so-far size. The LP
        // bound is always valid, so take the stronger of the two.
        let open = solver
            .open_bound
            .map_or(solver.best_cover.len(), |b| b.min(solver.best_cover.len()));
        kernel_lp.max(open.min(solver.best_cover.len()))
    } else {
        solver.best_cover.len()
    };
    VcResult {
        optimal: !solver.timed_out,
        lower_bound: nt.forced_in.len() + kernel_lb,
        cover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_cover(g: &UGraph, cover: &[usize]) -> bool {
        let set: std::collections::HashSet<usize> = cover.iter().copied().collect();
        g.edges()
            .iter()
            .all(|&(u, v)| set.contains(&u) || set.contains(&v))
    }

    fn brute_force_vc(g: &UGraph) -> usize {
        let n = g.num_vertices();
        assert!(n <= 20);
        (0..1usize << n)
            .filter(|&mask| {
                g.edges()
                    .iter()
                    .all(|&(u, v)| mask >> u & 1 == 1 || mask >> v & 1 == 1)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0)
    }

    #[test]
    fn classic_small_graphs() {
        // Triangle: 2; C5: 3; star K1,4: 1; P4: 2.
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let r = minimum_vertex_cover(&tri, &VcConfig::default());
        assert!(r.optimal && r.cover.len() == 2 && is_cover(&tri, &r.cover));
        assert_eq!(r.lower_bound, 2);

        let mut c5 = UGraph::new(5);
        for i in 0..5 {
            c5.add_edge(i, (i + 1) % 5);
        }
        let r = minimum_vertex_cover(&c5, &VcConfig::default());
        assert!(r.optimal && r.cover.len() == 3 && is_cover(&c5, &r.cover));

        let mut star = UGraph::new(5);
        for i in 1..5 {
            star.add_edge(0, i);
        }
        let r = minimum_vertex_cover(&star, &VcConfig::default());
        assert!(r.optimal && r.cover == vec![0]);

        let mut p4 = UGraph::new(4);
        p4.add_edge(0, 1);
        p4.add_edge(1, 2);
        p4.add_edge(2, 3);
        let r = minimum_vertex_cover(&p4, &VcConfig::default());
        assert!(r.optimal && r.cover.len() == 2 && is_cover(&p4, &r.cover));
    }

    #[test]
    fn lp_bound_is_valid_and_half_integral() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        assert!((lp_lower_bound(&tri) - 1.5).abs() < 1e-9);
        // Bipartite C4: LP = integral optimum = 2.
        let mut c4 = UGraph::new(4);
        for i in 0..4 {
            c4.add_edge(i, (i + 1) % 4);
        }
        assert!((lp_lower_bound(&c4) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nt_partition_is_consistent() {
        // The three NT classes partition the vertex set, and forced_in
        // covers every edge incident to an excluded vertex.
        let mut g = UGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2); // triangle
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        let nt = nt_kernel(&g);
        let total = nt.forced_in.len() + nt.excluded.len() + nt.kernel.len();
        assert_eq!(total, 6);
        let forced: std::collections::HashSet<_> = nt.forced_in.iter().collect();
        for &x in &nt.excluded {
            for &w in g.neighbors(x) {
                assert!(
                    forced.contains(&w),
                    "excluded {x} has non-forced neighbor {w}"
                );
            }
        }
    }

    #[test]
    fn bipartite_components_solved_exactly() {
        // C4 (bipartite) plus a triangle: VC = 2 + 2 = 4.
        let mut g = UGraph::new(7);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(4, 6);
        let r = minimum_vertex_cover(&g, &VcConfig::default());
        assert!(r.optimal);
        assert_eq!(r.cover.len(), 4);
        assert_eq!(r.lower_bound, 4);
        assert!(is_cover(&g, &r.cover));
    }

    #[test]
    fn nt_kernel_keeps_odd_structures() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let nt = nt_kernel(&tri);
        assert_eq!(nt.kernel.len(), 3, "triangle is all ½");
    }

    #[test]
    fn greedy_is_a_cover() {
        let mut g = UGraph::new(8);
        let mut seed = 99u64;
        for u in 0..8usize {
            for v in (u + 1)..8 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if seed >> 33 & 1 == 1 {
                    g.add_edge(u, v);
                }
            }
        }
        assert!(is_cover(&g, &greedy_cover(&g)));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut seed = 0xDEAD_BEEF_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..15 {
            let n = 6 + (rng() % 7) as usize;
            let mut g = UGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng() % 100 < 35 {
                        g.add_edge(u, v);
                    }
                }
            }
            let expect = brute_force_vc(&g);
            let r = minimum_vertex_cover(&g, &VcConfig::default());
            assert!(r.optimal, "trial {trial} timed out");
            assert!(is_cover(&g, &r.cover), "trial {trial} invalid cover");
            assert_eq!(r.cover.len(), expect, "trial {trial} suboptimal");
            assert_eq!(r.lower_bound, expect, "trial {trial} bad bound");
        }
    }

    #[test]
    fn timeout_returns_valid_cover_and_bound() {
        // A dense-ish graph with zero budget: greedy fallback must hold.
        let mut g = UGraph::new(30);
        let mut seed = 7u64;
        for u in 0..30usize {
            for v in (u + 1)..30 {
                seed = seed
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if seed >> 60 & 1 == 1 {
                    g.add_edge(u, v);
                }
            }
        }
        let r = minimum_vertex_cover(
            &g,
            &VcConfig {
                time_limit: Duration::from_millis(0),
            },
        );
        assert!(is_cover(&g, &r.cover));
        assert!(r.lower_bound <= r.cover.len());
    }

    #[test]
    fn cancelled_budget_degrades_like_timeout() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let r = minimum_vertex_cover_budgeted(&tri, &VcConfig::default(), &budget);
        assert!(is_cover(&tri, &r.cover));
        assert!(!r.optimal, "a cancelled solve must not claim optimality");
        assert!(r.lower_bound <= r.cover.len());
    }

    #[test]
    fn budget_deadline_caps_the_config_time_limit() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let r = minimum_vertex_cover_budgeted(&tri, &VcConfig::default(), &budget);
        assert!(is_cover(&tri, &r.cover));
        assert!(!r.optimal);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = UGraph::new(0);
        let r = minimum_vertex_cover(&g, &VcConfig::default());
        assert!(r.optimal && r.cover.is_empty() && r.lower_bound == 0);
        let g = UGraph::new(5);
        let r = minimum_vertex_cover(&g, &VcConfig::default());
        assert!(r.optimal && r.cover.is_empty());
    }
}

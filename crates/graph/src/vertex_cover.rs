//! Exact minimum vertex cover with LP/Nemhauser–Trotter kernelization and
//! branch & bound — the engine behind the paper's Eq. 2 (the minimum vertex
//! cover ILP that yields the smallest odd cycle transversal).
//!
//! The vertex-cover LP is half-integral; its optimum equals half the
//! maximum-matching size of the bipartite double graph, and the König cover
//! of that double graph yields the Nemhauser–Trotter partition (vertices
//! forced into / out of some optimum cover). BDD-derived graphs are nearly
//! bipartite, so this kernelization usually collapses the instance and the
//! residual branch & bound tree stays small.

use std::time::{Duration, Instant};

use flowc_budget::Budget;

use crate::matching::{hopcroft_karp, konig_cover};
use crate::UGraph;

/// Configuration for [`minimum_vertex_cover`].
#[derive(Debug, Clone)]
pub struct VcConfig {
    /// Wall-clock budget; on expiry the best cover found is returned with
    /// `optimal == false` and a valid lower bound.
    pub time_limit: Duration,
    /// Worker threads for solving non-bipartite components concurrently
    /// (1 = sequential). Components are merged in index order, so the
    /// result is identical at any thread count.
    pub threads: usize,
}

impl Default for VcConfig {
    fn default() -> Self {
        VcConfig {
            time_limit: Duration::from_secs(60),
            threads: 1,
        }
    }
}

/// Result of a vertex-cover computation.
#[derive(Debug, Clone)]
pub struct VcResult {
    /// Vertices of the cover, sorted ascending.
    pub cover: Vec<usize>,
    /// Whether `cover` was proven minimum.
    pub optimal: bool,
    /// A valid lower bound on the minimum cover size.
    pub lower_bound: usize,
    /// Branch & bound nodes expanded across all components.
    pub nodes: u64,
}

/// Greedy max-degree vertex cover (upper bound / warm start).
pub fn greedy_cover(g: &UGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut cover = Vec::new();
    let mut remaining = g.num_edges();
    while remaining > 0 {
        let v = (0..n)
            .filter(|&v| alive[v])
            .max_by_key(|&v| deg[v])
            .expect("edges remain, so a vertex does too");
        if deg[v] == 0 {
            break;
        }
        cover.push(v);
        alive[v] = false;
        for &w in g.neighbors(v) {
            if alive[w] {
                deg[w] -= 1;
                remaining -= 1;
            }
        }
        deg[v] = 0;
    }
    cover.sort_unstable();
    cover
}

/// The half-integral vertex-cover LP bound: half the maximum-matching size
/// of the bipartite double graph, restricted to `alive` vertices (pass all
/// `true` for the whole graph).
fn lp_bound_masked(g: &UGraph, alive: &[bool]) -> f64 {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        if alive[u] && alive[v] {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let m = hopcroft_karp(&adj, n);
    m.size as f64 / 2.0
}

/// The vertex-cover LP lower bound of the whole graph (half-integral, equal
/// to half the maximum matching of the bipartite double).
pub fn lp_lower_bound(g: &UGraph) -> f64 {
    lp_bound_masked(g, &vec![true; g.num_vertices()])
}

/// The Nemhauser–Trotter partition derived from an optimal half-integral LP
/// solution.
#[derive(Debug, Clone)]
pub struct NtKernel {
    /// Vertices with LP value 1: some minimum cover contains all of them.
    pub forced_in: Vec<usize>,
    /// Vertices with LP value 0: some minimum cover avoids all of them.
    pub excluded: Vec<usize>,
    /// Vertices with LP value ½: the residual kernel to branch on.
    pub kernel: Vec<usize>,
}

/// Computes the Nemhauser–Trotter kernel of `g`.
pub fn nt_kernel(g: &UGraph) -> NtKernel {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        adj[u].push(v);
        adj[v].push(u);
    }
    let m = hopcroft_karp(&adj, n);
    let (in_left, in_right) = konig_cover(&adj, &m);
    let mut forced_in = Vec::new();
    let mut excluded = Vec::new();
    let mut kernel = Vec::new();
    for v in 0..n {
        match (in_left[v], in_right[v]) {
            (true, true) => forced_in.push(v),
            (false, false) => excluded.push(v),
            _ => kernel.push(v),
        }
    }
    NtKernel {
        forced_in,
        excluded,
        kernel,
    }
}

const NIL: usize = usize::MAX;

/// Branch & bound over one kernelized component. All bound evaluations run
/// over scratch buffers owned by the solver — the search allocates only when
/// branching, which keeps the per-node cost at "a few graph scans" instead
/// of "rebuild the adjacency structure".
struct Solver<'g> {
    g: &'g UGraph,
    n: usize,
    best_cover: Vec<usize>,
    deadline: Instant,
    budget: Budget,
    timed_out: bool,
    /// Smallest unexplored lower bound among pruned-by-timeout subtrees.
    open_bound: Option<usize>,
    /// Branch & bound nodes expanded.
    nodes: u64,
    // Scratch, valid only within one bound evaluation.
    mate: Vec<usize>,
    pair_left: Vec<usize>,
    pair_right: Vec<usize>,
    dist: Vec<usize>,
    queue: std::collections::VecDeque<usize>,
}

impl<'g> Solver<'g> {
    fn new(g: &'g UGraph, best_cover: Vec<usize>, deadline: Instant, budget: Budget) -> Self {
        let n = g.num_vertices();
        Solver {
            g,
            n,
            best_cover,
            deadline,
            budget,
            timed_out: false,
            open_bound: None,
            nodes: 0,
            mate: vec![NIL; n],
            pair_left: vec![NIL; n],
            pair_right: vec![NIL; n],
            dist: vec![0; n],
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Removes `v` from the residual graph, maintaining alive degrees.
    fn kill(&self, alive: &mut [bool], deg: &mut [usize], v: usize) {
        alive[v] = false;
        for &w in self.g.neighbors(v) {
            if alive[w] {
                deg[w] -= 1;
            }
        }
        deg[v] = 0;
    }

    /// Applies degree-0/degree-1 reductions plus the triangle rule (a
    /// degree-2 vertex with adjacent neighbors puts both neighbors into
    /// some minimum cover) until none fires.
    fn reduce(&self, alive: &mut [bool], deg: &mut [usize], chosen: &mut Vec<usize>) {
        loop {
            let mut changed = false;
            for v in 0..self.n {
                if !alive[v] {
                    continue;
                }
                match deg[v] {
                    0 => {
                        alive[v] = false;
                        changed = true;
                    }
                    1 => {
                        // Pendant vertex: take the neighbor.
                        let w = self
                            .g
                            .neighbors(v)
                            .iter()
                            .copied()
                            .find(|&w| alive[w])
                            .expect("degree-1 vertex has an alive neighbor");
                        chosen.push(w);
                        self.kill(alive, deg, w);
                        alive[v] = false;
                        changed = true;
                    }
                    2 => {
                        let mut nbrs = self.g.neighbors(v).iter().copied().filter(|&w| alive[w]);
                        let a = nbrs.next().expect("degree-2 vertex");
                        let b = nbrs.next().expect("degree-2 vertex");
                        if self.g.has_edge(a, b) {
                            chosen.push(a);
                            chosen.push(b);
                            self.kill(alive, deg, a);
                            self.kill(alive, deg, b);
                            alive[v] = false;
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// A maximal matching of the residual graph. Its edges are disjoint and
    /// each needs a cover vertex, so the size is a valid (cheap, O(E))
    /// lower bound on the residual cover.
    fn greedy_matching_bound(&mut self, alive: &[bool]) -> usize {
        for v in 0..self.n {
            self.mate[v] = NIL;
        }
        let mut size = 0;
        for v in 0..self.n {
            if !alive[v] || self.mate[v] != NIL {
                continue;
            }
            for i in 0..self.g.neighbors(v).len() {
                let w = self.g.neighbors(v)[i];
                if alive[w] && self.mate[w] == NIL {
                    self.mate[v] = w;
                    self.mate[w] = v;
                    size += 1;
                    break;
                }
            }
        }
        size
    }

    /// The half-integral LP bound of the residual graph: half the maximum
    /// matching of its bipartite double, by Hopcroft–Karp over the solver's
    /// scratch buffers (the double is symmetric, so left = right = V).
    fn lp_bound(&mut self, alive: &[bool]) -> usize {
        for v in 0..self.n {
            self.pair_left[v] = NIL;
            self.pair_right[v] = NIL;
        }
        let mut size = 0usize;
        // Greedy seed cuts the number of augmentation phases.
        for u in 0..self.n {
            if !alive[u] {
                continue;
            }
            for i in 0..self.g.neighbors(u).len() {
                let v = self.g.neighbors(u)[i];
                if alive[v] && self.pair_right[v] == NIL {
                    self.pair_left[u] = v;
                    self.pair_right[v] = u;
                    size += 1;
                    break;
                }
            }
        }
        loop {
            // BFS layering from free alive vertices.
            self.queue.clear();
            let mut found = false;
            for (u, &live) in alive.iter().enumerate().take(self.n) {
                if live && self.pair_left[u] == NIL {
                    self.dist[u] = 0;
                    self.queue.push_back(u);
                } else {
                    self.dist[u] = NIL;
                }
            }
            while let Some(u) = self.queue.pop_front() {
                for i in 0..self.g.neighbors(u).len() {
                    let v = self.g.neighbors(u)[i];
                    if !alive[v] {
                        continue;
                    }
                    let w = self.pair_right[v];
                    if w == NIL {
                        found = true;
                    } else if self.dist[w] == NIL {
                        self.dist[w] = self.dist[u] + 1;
                        self.queue.push_back(w);
                    }
                }
            }
            if !found {
                break;
            }
            for u in 0..self.n {
                if alive[u] && self.pair_left[u] == NIL && self.augment(u, alive) {
                    size += 1;
                }
            }
        }
        size.div_ceil(2)
    }

    fn augment(&mut self, u: usize, alive: &[bool]) -> bool {
        for i in 0..self.g.neighbors(u).len() {
            let v = self.g.neighbors(u)[i];
            if !alive[v] {
                continue;
            }
            let w = self.pair_right[v];
            if w == NIL || (self.dist[w] == self.dist[u] + 1 && self.augment(w, alive)) {
                self.pair_left[u] = v;
                self.pair_right[v] = u;
                return true;
            }
        }
        self.dist[u] = NIL;
        false
    }

    fn rec(&mut self, mut alive: Vec<bool>, mut deg: Vec<usize>, mut chosen: Vec<usize>) {
        self.nodes += 1;
        if Instant::now() >= self.deadline || self.budget.check().is_err() {
            self.timed_out = true;
            // This subtree stays open: its chosen-so-far size is a valid
            // subtree lower bound contribution.
            let lb = chosen.len();
            self.open_bound = Some(self.open_bound.map_or(lb, |b| b.min(lb)));
            return;
        }
        self.reduce(&mut alive, &mut deg, &mut chosen);
        if chosen.len() >= self.best_cover.len() {
            return; // cannot improve
        }
        // Branch on the highest-degree alive vertex; edge-free residuals
        // close the node with a strictly better cover.
        let branch_vertex = match (0..self.n).filter(|&v| deg[v] > 0).max_by_key(|&v| deg[v]) {
            Some(v) => v,
            None => {
                self.best_cover = chosen;
                return;
            }
        };
        // Two-tier bound: the maximal-matching bound is nearly free and
        // prunes most nodes; survivors pay for the exact LP bound.
        let cheap = chosen.len() + self.greedy_matching_bound(&alive);
        if cheap >= self.best_cover.len() {
            return;
        }
        if chosen.len() + self.lp_bound(&alive) >= self.best_cover.len() {
            return;
        }
        // Branch include-N(v) first: stronger when the branch vertex has
        // high degree, which the selection maximizes.
        {
            let mut a = alive.clone();
            let mut d = deg.clone();
            let mut c = chosen.clone();
            for i in 0..self.g.neighbors(branch_vertex).len() {
                let w = self.g.neighbors(branch_vertex)[i];
                if a[w] {
                    c.push(w);
                    self.kill(&mut a, &mut d, w);
                }
            }
            a[branch_vertex] = false;
            self.rec(a, d, c);
        }
        {
            chosen.push(branch_vertex);
            self.kill(&mut alive, &mut deg, branch_vertex);
            self.rec(alive, deg, chosen);
        }
    }
}

/// Computes a minimum vertex cover of `g`, component by component:
/// bipartite components are solved exactly in polynomial time
/// (Hopcroft–Karp + König), non-bipartite components go through
/// Nemhauser–Trotter kernelization and branch & bound with greedy-matching
/// and half-integral LP bounds. Within the time limit the result is proven
/// optimal; on expiry the best cover found so far is returned together with
/// a valid global lower bound.
pub fn minimum_vertex_cover(g: &UGraph, config: &VcConfig) -> VcResult {
    minimum_vertex_cover_budgeted(g, config, &Budget::unlimited())
}

/// [`minimum_vertex_cover`] under a shared [`Budget`]: the branch & bound
/// checks the budget's cancellation token and deadline at every recursion
/// step (on top of the config's own `time_limit`). Exhaustion behaves like
/// a time-out — the best cover found so far is returned with
/// `optimal == false` and a valid lower bound.
pub fn minimum_vertex_cover_budgeted(g: &UGraph, config: &VcConfig, budget: &Budget) -> VcResult {
    minimum_vertex_cover_seeded(g, config, budget, None)
}

/// [`minimum_vertex_cover_budgeted`] warm-started from a known cover of
/// `g` (need not be minimal): the seed is restricted to each non-bipartite
/// component — the restriction of a cover to an induced subgraph covers
/// that subgraph — and adopted as the branch & bound incumbent when it
/// beats the greedy one. Seeding only ever tightens pruning; the returned
/// cover is identical to the unseeded one whenever both prove optimality.
///
/// With `config.threads > 1`, non-bipartite components are solved on scoped
/// worker threads. The merge happens in component order, so the result does
/// not depend on the thread count.
pub fn minimum_vertex_cover_seeded(
    g: &UGraph,
    config: &VcConfig,
    budget: &Budget,
    seed: Option<&[usize]>,
) -> VcResult {
    use crate::{two_color, ColorResult};
    let deadline = Instant::now() + budget.remaining_or(config.time_limit);
    let (comp, count) = g.components();
    let mut cover = Vec::new();
    let mut lower_bound = 0usize;
    let mut optimal = true;
    let mut nodes = 0u64;
    // König-solvable bipartite components are handled inline; branch &
    // bound components are collected for (optionally concurrent) solving.
    let mut hard: Vec<(UGraph, Vec<usize>, Option<Vec<usize>>)> = Vec::new();
    for c in 0..count {
        let keep: Vec<bool> = comp.iter().map(|&x| x == c).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        if sub.num_edges() == 0 {
            continue;
        }
        match two_color(&sub) {
            ColorResult::Bipartite(colors) => {
                let local = bipartite_cover(&sub, &colors);
                lower_bound += local.len();
                cover.extend(local.into_iter().map(|v| back[v]));
            }
            ColorResult::OddCycle(_) => {
                let local_seed = seed.map(|seed| {
                    let mut inv = vec![NIL; g.num_vertices()];
                    for (k, &orig) in back.iter().enumerate() {
                        inv[orig] = k;
                    }
                    seed.iter()
                        .filter_map(|&v| (inv[v] != NIL).then_some(inv[v]))
                        .collect()
                });
                hard.push((sub, back, local_seed));
            }
        }
    }
    let solved: Vec<VcResult> = if config.threads > 1 && hard.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = hard
                .iter()
                .map(|(sub, _back, local_seed)| {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    scope.spawn(move || {
                        vc_nonbipartite(sub, remaining, budget, local_seed.as_deref())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("vertex-cover worker panicked"))
                .collect()
        })
    } else {
        hard.iter()
            .map(|(sub, _back, local_seed)| {
                let remaining = deadline.saturating_duration_since(Instant::now());
                vc_nonbipartite(sub, remaining, budget, local_seed.as_deref())
            })
            .collect()
    };
    for ((_sub, back, _seed), local) in hard.iter().zip(solved) {
        lower_bound += local.lower_bound;
        optimal &= local.optimal;
        nodes += local.nodes;
        cover.extend(local.cover.into_iter().map(|v| back[v]));
    }
    cover.sort_unstable();
    cover.dedup();
    VcResult {
        cover,
        optimal,
        lower_bound,
        nodes,
    }
}

/// Exact minimum vertex cover of a bipartite graph via König's theorem.
fn bipartite_cover(g: &UGraph, colors: &[u8]) -> Vec<usize> {
    // Left = color-0 vertices, right = color-1 vertices.
    let n = g.num_vertices();
    let mut left_ids = Vec::new();
    let mut right_ids = Vec::new();
    let mut pos = vec![usize::MAX; n];
    for v in 0..n {
        if colors[v] == 0 {
            pos[v] = left_ids.len();
            left_ids.push(v);
        } else {
            pos[v] = right_ids.len();
            right_ids.push(v);
        }
    }
    let mut adj = vec![Vec::new(); left_ids.len()];
    for &(u, v) in g.edges() {
        let (l, r) = if colors[u] == 0 { (u, v) } else { (v, u) };
        adj[pos[l]].push(pos[r]);
    }
    let m = hopcroft_karp(&adj, right_ids.len());
    let (cl, cr) = konig_cover(&adj, &m);
    let mut cover = Vec::new();
    for (i, &inc) in cl.iter().enumerate() {
        if inc {
            cover.push(left_ids[i]);
        }
    }
    for (i, &inc) in cr.iter().enumerate() {
        if inc {
            cover.push(right_ids[i]);
        }
    }
    cover
}

/// NT kernelization + branch & bound for one non-bipartite component.
fn vc_nonbipartite(
    g: &UGraph,
    time_limit: Duration,
    budget: &Budget,
    seed: Option<&[usize]>,
) -> VcResult {
    let nt = nt_kernel(g);
    // Solve the kernel.
    let mut keep = vec![false; g.num_vertices()];
    for &v in &nt.kernel {
        keep[v] = true;
    }
    let (kernel_graph, back) = g.induced_subgraph(&keep);
    let mut incumbent = greedy_cover(&kernel_graph);
    if let Some(seed) = seed {
        // A cover of `g` restricted to the kernel covers the kernel graph.
        let mut inv = vec![NIL; g.num_vertices()];
        for (k, &orig) in back.iter().enumerate() {
            inv[orig] = k;
        }
        let restricted: Vec<usize> = seed
            .iter()
            .filter_map(|&v| (inv[v] != NIL).then_some(inv[v]))
            .collect();
        if restricted.len() < incumbent.len() {
            incumbent = restricted;
        }
    }
    let deadline = Instant::now() + time_limit;
    let mut solver = Solver::new(&kernel_graph, incumbent, deadline, budget.clone());
    let alive = vec![true; kernel_graph.num_vertices()];
    let deg: Vec<usize> = (0..kernel_graph.num_vertices())
        .map(|v| kernel_graph.degree(v))
        .collect();
    solver.rec(alive, deg, Vec::new());

    let mut cover: Vec<usize> = nt.forced_in.clone();
    cover.extend(solver.best_cover.iter().map(|&v| back[v]));
    cover.sort_unstable();
    cover.dedup();

    let kernel_lp = lp_lower_bound(&kernel_graph).ceil() as usize;
    let kernel_lb = if solver.timed_out {
        // The optimum is min(best found, optima of subtrees left open); each
        // open subtree's optimum is at least its chosen-so-far size. The LP
        // bound is always valid, so take the stronger of the two.
        let open = solver
            .open_bound
            .map_or(solver.best_cover.len(), |b| b.min(solver.best_cover.len()));
        kernel_lp.max(open.min(solver.best_cover.len()))
    } else {
        solver.best_cover.len()
    };
    VcResult {
        optimal: !solver.timed_out,
        lower_bound: nt.forced_in.len() + kernel_lb,
        cover,
        nodes: solver.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_cover(g: &UGraph, cover: &[usize]) -> bool {
        let set: std::collections::HashSet<usize> = cover.iter().copied().collect();
        g.edges()
            .iter()
            .all(|&(u, v)| set.contains(&u) || set.contains(&v))
    }

    fn brute_force_vc(g: &UGraph) -> usize {
        let n = g.num_vertices();
        assert!(n <= 20);
        (0..1usize << n)
            .filter(|&mask| {
                g.edges()
                    .iter()
                    .all(|&(u, v)| mask >> u & 1 == 1 || mask >> v & 1 == 1)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0)
    }

    #[test]
    fn classic_small_graphs() {
        // Triangle: 2; C5: 3; star K1,4: 1; P4: 2.
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let r = minimum_vertex_cover(&tri, &VcConfig::default());
        assert!(r.optimal && r.cover.len() == 2 && is_cover(&tri, &r.cover));
        assert_eq!(r.lower_bound, 2);

        let mut c5 = UGraph::new(5);
        for i in 0..5 {
            c5.add_edge(i, (i + 1) % 5);
        }
        let r = minimum_vertex_cover(&c5, &VcConfig::default());
        assert!(r.optimal && r.cover.len() == 3 && is_cover(&c5, &r.cover));

        let mut star = UGraph::new(5);
        for i in 1..5 {
            star.add_edge(0, i);
        }
        let r = minimum_vertex_cover(&star, &VcConfig::default());
        assert!(r.optimal && r.cover == vec![0]);

        let mut p4 = UGraph::new(4);
        p4.add_edge(0, 1);
        p4.add_edge(1, 2);
        p4.add_edge(2, 3);
        let r = minimum_vertex_cover(&p4, &VcConfig::default());
        assert!(r.optimal && r.cover.len() == 2 && is_cover(&p4, &r.cover));
    }

    #[test]
    fn lp_bound_is_valid_and_half_integral() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        assert!((lp_lower_bound(&tri) - 1.5).abs() < 1e-9);
        // Bipartite C4: LP = integral optimum = 2.
        let mut c4 = UGraph::new(4);
        for i in 0..4 {
            c4.add_edge(i, (i + 1) % 4);
        }
        assert!((lp_lower_bound(&c4) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nt_partition_is_consistent() {
        // The three NT classes partition the vertex set, and forced_in
        // covers every edge incident to an excluded vertex.
        let mut g = UGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2); // triangle
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        let nt = nt_kernel(&g);
        let total = nt.forced_in.len() + nt.excluded.len() + nt.kernel.len();
        assert_eq!(total, 6);
        let forced: std::collections::HashSet<_> = nt.forced_in.iter().collect();
        for &x in &nt.excluded {
            for &w in g.neighbors(x) {
                assert!(
                    forced.contains(&w),
                    "excluded {x} has non-forced neighbor {w}"
                );
            }
        }
    }

    #[test]
    fn bipartite_components_solved_exactly() {
        // C4 (bipartite) plus a triangle: VC = 2 + 2 = 4.
        let mut g = UGraph::new(7);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(4, 6);
        let r = minimum_vertex_cover(&g, &VcConfig::default());
        assert!(r.optimal);
        assert_eq!(r.cover.len(), 4);
        assert_eq!(r.lower_bound, 4);
        assert!(is_cover(&g, &r.cover));
    }

    #[test]
    fn nt_kernel_keeps_odd_structures() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let nt = nt_kernel(&tri);
        assert_eq!(nt.kernel.len(), 3, "triangle is all ½");
    }

    #[test]
    fn greedy_is_a_cover() {
        let mut g = UGraph::new(8);
        let mut seed = 99u64;
        for u in 0..8usize {
            for v in (u + 1)..8 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if seed >> 33 & 1 == 1 {
                    g.add_edge(u, v);
                }
            }
        }
        assert!(is_cover(&g, &greedy_cover(&g)));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut seed = 0xDEAD_BEEF_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..15 {
            let n = 6 + (rng() % 7) as usize;
            let mut g = UGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng() % 100 < 35 {
                        g.add_edge(u, v);
                    }
                }
            }
            let expect = brute_force_vc(&g);
            let r = minimum_vertex_cover(&g, &VcConfig::default());
            assert!(r.optimal, "trial {trial} timed out");
            assert!(is_cover(&g, &r.cover), "trial {trial} invalid cover");
            assert_eq!(r.cover.len(), expect, "trial {trial} suboptimal");
            assert_eq!(r.lower_bound, expect, "trial {trial} bad bound");
        }
    }

    #[test]
    fn timeout_returns_valid_cover_and_bound() {
        // A dense-ish graph with zero budget: greedy fallback must hold.
        let mut g = UGraph::new(30);
        let mut seed = 7u64;
        for u in 0..30usize {
            for v in (u + 1)..30 {
                seed = seed
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                if seed >> 60 & 1 == 1 {
                    g.add_edge(u, v);
                }
            }
        }
        let r = minimum_vertex_cover(
            &g,
            &VcConfig {
                time_limit: Duration::from_millis(0),
                threads: 1,
            },
        );
        assert!(is_cover(&g, &r.cover));
        assert!(r.lower_bound <= r.cover.len());
    }

    #[test]
    fn cancelled_budget_degrades_like_timeout() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let r = minimum_vertex_cover_budgeted(&tri, &VcConfig::default(), &budget);
        assert!(is_cover(&tri, &r.cover));
        assert!(!r.optimal, "a cancelled solve must not claim optimality");
        assert!(r.lower_bound <= r.cover.len());
    }

    #[test]
    fn budget_deadline_caps_the_config_time_limit() {
        let mut tri = UGraph::new(3);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(0, 2);
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let r = minimum_vertex_cover_budgeted(&tri, &VcConfig::default(), &budget);
        assert!(is_cover(&tri, &r.cover));
        assert!(!r.optimal);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = UGraph::new(0);
        let r = minimum_vertex_cover(&g, &VcConfig::default());
        assert!(r.optimal && r.cover.is_empty() && r.lower_bound == 0);
        let g = UGraph::new(5);
        let r = minimum_vertex_cover(&g, &VcConfig::default());
        assert!(r.optimal && r.cover.is_empty());
    }
}

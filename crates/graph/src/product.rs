//! The Cartesian product `G □ K₂` used by the paper's Lemma 1.

use crate::UGraph;

/// Builds `G □ K₂`: two copies of `G` (vertex `v` becomes `v` and `v + n`)
/// plus a perfect matching `{v, v + n}` between the copies.
pub fn cartesian_with_k2(g: &UGraph) -> UGraph {
    let n = g.num_vertices();
    let mut p = UGraph::new(2 * n);
    for &(u, v) in g.edges() {
        p.add_edge(u, v);
        p.add_edge(u + n, v + n);
    }
    for v in 0..n {
        p.add_edge(v, v + n);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_becomes_prism() {
        let mut g = UGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let p = cartesian_with_k2(&g);
        assert_eq!(p.num_vertices(), 6);
        assert_eq!(p.num_edges(), 3 + 3 + 3);
        // Copies preserved.
        assert!(p.has_edge(0, 1) && p.has_edge(3, 4));
        // Matching edges present.
        for v in 0..3 {
            assert!(p.has_edge(v, v + 3));
        }
        // No cross edges beyond the matching.
        assert!(!p.has_edge(0, 4));
    }

    #[test]
    fn empty_graph_gives_matching_only() {
        let g = UGraph::new(4);
        let p = cartesian_with_k2(&g);
        assert_eq!(p.num_vertices(), 8);
        assert_eq!(p.num_edges(), 4);
    }
}

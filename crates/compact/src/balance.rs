//! Orientation balancing: given the set of `VH` nodes (an odd cycle
//! transversal), the remaining graph is bipartite and each connected
//! component's 2-coloring can be oriented either way (colors → {V, H}).
//! This module picks orientations that (a) satisfy the alignment
//! constraints with the fewest `VH` upgrades and (b) balance the row/column
//! counts to minimize the maximum dimension — the paper's Figure 6 case,
//! where `D` shrinks at unchanged `S`.

use std::collections::HashSet;

use flowc_graph::{two_color, ColorResult};

use crate::labeling::{Labeling, VhLabel};
use crate::preprocess::BddGraph;

/// Builds a complete labeling from a transversal: nodes in `vh` get `VH`,
/// the bipartite remainder is 2-colored per component and oriented to
/// minimize first alignment upgrades, then the maximum dimension.
///
/// When `align` is set, every root and the terminal end up providing a
/// wordline (Eq. 7), upgrading `V`-side aligned nodes to `VH` where the
/// component orientation cannot satisfy them all.
///
/// # Panics
///
/// Panics if removing `vh` does not leave a bipartite graph (i.e. `vh` is
/// not a valid odd cycle transversal).
pub fn balanced_labeling(graph: &BddGraph, vh: &HashSet<usize>, align: bool) -> Labeling {
    labeling_with_score(graph, vh, align, |rows, total| rows.max(total - rows))
}

/// Like [`balanced_labeling`], but orients components to fit inside the box
/// `rows ≤ max_rows, cols ≤ max_cols` (minimizing the total violation when
/// a perfect fit is unreachable) — the paper's Section III note on
/// user-specified row/column constraints.
///
/// # Panics
///
/// Panics if `vh` is not a valid odd cycle transversal.
pub fn boxed_labeling(
    graph: &BddGraph,
    vh: &HashSet<usize>,
    align: bool,
    max_rows: usize,
    max_cols: usize,
) -> Labeling {
    labeling_with_score(graph, vh, align, move |rows, total| {
        let cols = total - rows;
        rows.saturating_sub(max_rows) + cols.saturating_sub(max_cols)
    })
}

/// Like [`balanced_labeling`], but drives the row count as close as
/// possible to `target_rows` (the aspect-ratio sweep behind Figure 9 uses
/// this to trace equal-semiperimeter shapes).
///
/// # Panics
///
/// Panics if `vh` is not a valid odd cycle transversal.
pub(crate) fn targeted_labeling(
    graph: &BddGraph,
    vh: &HashSet<usize>,
    align: bool,
    target_rows: usize,
) -> Labeling {
    labeling_with_score(graph, vh, align, move |rows, _| rows.abs_diff(target_rows))
}

fn labeling_with_score(
    graph: &BddGraph,
    vh: &HashSet<usize>,
    align: bool,
    score: impl Fn(usize, usize) -> usize,
) -> Labeling {
    let n = graph.num_nodes();
    let keep: Vec<bool> = (0..n).map(|v| !vh.contains(&v)).collect();
    let (sub, back) = graph.graph.induced_subgraph(&keep);
    let colors = match two_color(&sub) {
        ColorResult::Bipartite(c) => c,
        ColorResult::OddCycle(_) => panic!("transversal does not make the graph bipartite"),
    };
    let (comp, count) = sub.components();

    // Aligned nodes: roots and terminal (when alignment is requested).
    let mut aligned = vec![false; n];
    if align {
        for &r in graph.roots.iter().flatten() {
            aligned[r] = true;
        }
        if let Some(t) = graph.terminal {
            aligned[t] = true;
        }
    }

    // Per component: class sizes and aligned counts per color.
    #[derive(Default, Clone, Copy)]
    struct CompInfo {
        size: [usize; 2],
        aligned: [usize; 2],
    }
    let mut infos = vec![CompInfo::default(); count];
    for v_sub in 0..sub.num_vertices() {
        let c = comp[v_sub];
        let col = colors[v_sub] as usize;
        infos[c].size[col] += 1;
        if aligned[back[v_sub]] {
            infos[c].aligned[col] += 1;
        }
    }

    // Orientation o means: color o is H, color 1-o is V. Upgrade cost of
    // orientation o = aligned nodes landing on the V side = aligned[1-o].
    // Choose the cheaper orientation; when costs tie, the component is free
    // and participates in the balancing DP.
    let mut forced: Vec<Option<usize>> = Vec::with_capacity(count);
    for info in &infos {
        forced.push(match info.aligned[1].cmp(&info.aligned[0]) {
            std::cmp::Ordering::Less => Some(0), // orient color0 = H
            std::cmp::Ordering::Greater => Some(1),
            std::cmp::Ordering::Equal => None,
        });
    }

    // Row contribution of component c under orientation o: H-class size plus
    // upgraded aligned V-class nodes (upgrades add to rows; V-class size is
    // the column contribution either way, upgrades add to S only via VH).
    let row_contrib = |c: usize, o: usize| infos[c].size[o] + infos[c].aligned[1 - o];
    let col_contrib = |c: usize, o: usize| infos[c].size[1 - o];

    // Base counts from the VH transversal itself.
    let base = vh.len();
    let mut fixed_r = base;
    let mut fixed_c = base;
    let mut free_comps: Vec<usize> = Vec::new();
    for (c, f) in forced.iter().enumerate().take(count) {
        match f {
            Some(o) => {
                fixed_r += row_contrib(c, *o);
                fixed_c += col_contrib(c, *o);
            }
            None => free_comps.push(c),
        }
    }

    // Subset-sum DP over the free components' row contributions: pick
    // orientations minimizing max(R, C). Total S is orientation-independent
    // for free components (tied upgrade costs).
    let orientation = choose_orientations(
        &free_comps,
        fixed_r,
        fixed_c,
        |c| (row_contrib(c, 0), col_contrib(c, 0)),
        |c| (row_contrib(c, 1), col_contrib(c, 1)),
        score,
    );

    // Materialize labels.
    let mut labels = vec![VhLabel::Vh; n];
    let mut comp_orientation = vec![0usize; count];
    for (i, &c) in free_comps.iter().enumerate() {
        comp_orientation[c] = orientation[i];
    }
    for (c, f) in forced.iter().enumerate() {
        if let Some(o) = f {
            comp_orientation[c] = *o;
        }
    }
    for v_sub in 0..sub.num_vertices() {
        let v = back[v_sub];
        let o = comp_orientation[comp[v_sub]];
        let is_h = colors[v_sub] as usize == o;
        labels[v] = if is_h {
            VhLabel::H
        } else if aligned[v] {
            VhLabel::Vh // V-side aligned node: upgrade
        } else {
            VhLabel::V
        };
    }
    Labeling::new(labels)
}

/// Chooses an orientation per free component to minimize `score(R, S)`
/// given fixed base counts, via a reachability DP over the achievable row
/// totals. `score` receives the total row count and total semiperimeter
/// (so `C = S − R`); [`balanced_labeling`] scores `max(R, C)`, while the
/// boxed variant scores constraint violation.
fn choose_orientations(
    free: &[usize],
    fixed_r: usize,
    fixed_c: usize,
    contrib0: impl Fn(usize) -> (usize, usize),
    contrib1: impl Fn(usize) -> (usize, usize),
    score: impl Fn(usize, usize) -> usize,
) -> Vec<usize> {
    if free.is_empty() {
        return Vec::new();
    }
    // For each free component, orientation o adds (r_o, c_o); note
    // r_o + c_o is the same for o=0 and o=1, so C is determined by R.
    let max_r: usize = fixed_r
        + free
            .iter()
            .map(|&c| contrib0(c).0.max(contrib1(c).0))
            .sum::<usize>();
    // dp[r] = true if row total r is reachable; parent pointers for
    // reconstruction.
    let mut reachable = vec![false; max_r + 1];
    reachable[fixed_r] = true;
    let mut parents: Vec<Vec<i8>> = Vec::with_capacity(free.len());
    for &c in free {
        let (r0, _) = contrib0(c);
        let (r1, _) = contrib1(c);
        let mut next = vec![false; max_r + 1];
        let mut parent = vec![-1i8; max_r + 1];
        for (r, &ok) in reachable.iter().enumerate() {
            if !ok {
                continue;
            }
            if r + r0 <= max_r && !next[r + r0] {
                next[r + r0] = true;
                parent[r + r0] = 0;
            }
            if r + r1 <= max_r && !next[r + r1] {
                next[r + r1] = true;
                parent[r + r1] = 1;
            }
        }
        parents.push(parent);
        reachable = next;
    }
    // Total S over free components is fixed; compute it to derive C.
    let free_total: usize = free
        .iter()
        .map(|&c| {
            let (r0, c0) = contrib0(c);
            r0 + c0
        })
        .sum();
    let total = fixed_r + fixed_c + free_total;
    // Pick the reachable R minimizing the caller's score.
    let best_r = (0..=max_r)
        .filter(|&r| reachable[r])
        .min_by_key(|&r| score(r, total))
        .expect("at least one assignment is reachable");
    // Reconstruct.
    let mut choices = vec![0usize; free.len()];
    let mut r = best_r;
    for i in (0..free.len()).rev() {
        let o = parents[i][r];
        debug_assert!(o >= 0);
        choices[i] = o as usize;
        let (r0, _) = contrib0(free[i]);
        let (r1, _) = contrib1(free[i]);
        r -= if o == 0 { r0 } else { r1 };
    }
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_bdd::build_sbdd;
    use flowc_logic::{GateKind, Network};

    fn graph_of(f: impl FnOnce(&mut Network) -> Vec<flowc_logic::NetId>) -> BddGraph {
        let mut n = Network::new("t");
        let outs = f(&mut n);
        for o in outs {
            n.mark_output(o);
        }
        BddGraph::from_bdds(&build_sbdd(&n, None))
    }

    #[test]
    fn bipartite_graph_needs_no_vh_without_alignment() {
        let g = graph_of(|n| {
            let a = n.add_input("a");
            let b = n.add_input("b");
            let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
            vec![f]
        });
        let l = balanced_labeling(&g, &HashSet::new(), false);
        assert!(l.is_valid(&g));
        assert_eq!(l.stats().num_vh, 0);
        assert_eq!(l.stats().semiperimeter, g.num_nodes());
    }

    #[test]
    fn alignment_may_force_upgrades() {
        // Path root - mid - terminal: root and terminal are the same color
        // class only if the path length is even; for a - b - 1 (two edges)
        // root and terminal share a color, so one orientation aligns both.
        let g = graph_of(|n| {
            let a = n.add_input("a");
            let b = n.add_input("b");
            let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
            vec![f]
        });
        let l = balanced_labeling(&g, &HashSet::new(), true);
        assert!(l.is_valid(&g));
        assert!(l.is_aligned(&g));
        // Root and terminal are two hops apart: same class, zero upgrades.
        assert_eq!(l.stats().num_vh, 0);
    }

    #[test]
    fn odd_distance_alignment_costs_one_upgrade() {
        // f = a: graph is root(a) - 1, one edge; root and terminal are in
        // different classes, so alignment needs one VH upgrade.
        let g = graph_of(|n| {
            let a = n.add_input("a");
            let f = n.add_gate(GateKind::Buf, &[a], "f").unwrap();
            vec![f]
        });
        let l = balanced_labeling(&g, &HashSet::new(), true);
        assert!(l.is_valid(&g) && l.is_aligned(&g));
        assert_eq!(l.stats().num_vh, 1);
        assert_eq!(l.stats().semiperimeter, g.num_nodes() + 1);
    }

    #[test]
    fn balancing_minimizes_max_dimension() {
        // Two disjoint stars (in BDD terms, two independent outputs) give
        // two free components with skewed class sizes; the DP must orient
        // them oppositely.
        let g = graph_of(|n| {
            // Outputs f = AND(a,b,c,d) and g = OR(e,f2,g2,h): each is a
            // chain, giving components of equal classes; instead build one
            // wide and one narrow component via distinct structures.
            let ins: Vec<_> = (0..4).map(|i| n.add_input(format!("x{i}"))).collect();
            let f = n.add_gate(GateKind::And, &ins, "f").unwrap();
            vec![f]
        });
        // Chain of 5 nodes (4 internal + terminal).
        let l = balanced_labeling(&g, &HashSet::new(), false);
        let s = l.stats();
        assert!(l.is_valid(&g));
        // Perfectly balanced or off by one.
        assert!(s.max_dimension <= s.semiperimeter / 2 + 1);
    }

    #[test]
    #[should_panic(expected = "transversal")]
    fn invalid_transversal_panics() {
        // The Fig. 2 BDD ((a∧b)∨c) contains the triangle b-c-1, so the
        // empty transversal is invalid.
        let g = graph_of(|n| {
            let a = n.add_input("a");
            let b = n.add_input("b");
            let c = n.add_input("c");
            let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
            let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
            vec![f]
        });
        let _ = balanced_labeling(&g, &HashSet::new(), false);
    }
}

//! The VH-labeling problem (Section V-B): each graph node is assigned `V`
//! (vertical bitline), `H` (horizontal wordline), or `VH` (both), subject to
//! the crossbar connection constraint that no edge joins two pure-`V` or two
//! pure-`H` nodes.

use crate::preprocess::BddGraph;

/// A node's wire assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VhLabel {
    /// Vertical only: the node becomes one bitline.
    V,
    /// Horizontal only: the node becomes one wordline.
    H,
    /// Both: a wordline and a bitline joined by an always-on memristor.
    Vh,
}

impl VhLabel {
    /// Whether the label provides a wordline.
    pub fn has_h(self) -> bool {
        matches!(self, VhLabel::H | VhLabel::Vh)
    }

    /// Whether the label provides a bitline.
    pub fn has_v(self) -> bool {
        matches!(self, VhLabel::V | VhLabel::Vh)
    }
}

/// A complete VH-labeling of a [`BddGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    labels: Vec<VhLabel>,
}

/// The size figures a labeling implies (Eq. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelingStats {
    /// Wordlines: `#H + #VH`.
    pub rows: usize,
    /// Bitlines: `#V + #VH`.
    pub cols: usize,
    /// Semiperimeter `S = rows + cols = n + #VH`.
    pub semiperimeter: usize,
    /// Maximum dimension `D = max(rows, cols)`.
    pub max_dimension: usize,
    /// Number of `VH` labels (the odd-cycle-transversal size `k`).
    pub num_vh: usize,
}

impl LabelingStats {
    /// The weighted objective `γ·S + (1−γ)·D` of Eq. 1.
    pub fn objective(&self, gamma: f64) -> f64 {
        gamma * self.semiperimeter as f64 + (1.0 - gamma) * self.max_dimension as f64
    }
}

impl Labeling {
    /// Wraps a label vector.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the graph's node count when
    /// validated; construction itself is unchecked.
    pub fn new(labels: Vec<VhLabel>) -> Self {
        Labeling { labels }
    }

    /// The label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn label(&self, v: usize) -> VhLabel {
        self.labels[v]
    }

    /// All labels, indexed by node.
    pub fn labels(&self) -> &[VhLabel] {
        &self.labels
    }

    /// Mutable access for post-passes (alignment upgrades, re-orientation).
    pub fn set(&mut self, v: usize, label: VhLabel) {
        self.labels[v] = label;
    }

    /// Checks the connection constraints of Eq. 2 against `graph`: every
    /// edge must be realizable as a wordline-bitline junction, i.e. one
    /// endpoint offers H and the other offers V.
    pub fn is_valid(&self, graph: &BddGraph) -> bool {
        if self.labels.len() != graph.num_nodes() {
            return false;
        }
        graph.graph.edges().iter().all(|&(u, v)| {
            let (a, b) = (self.labels[u], self.labels[v]);
            (a.has_h() && b.has_v()) || (a.has_v() && b.has_h())
        })
    }

    /// Checks the paper's alignment constraints (Eq. 7): every root and the
    /// 1-terminal must provide a wordline.
    pub fn is_aligned(&self, graph: &BddGraph) -> bool {
        let term_ok = graph.terminal.is_none_or(|t| self.labels[t].has_h());
        let roots_ok = graph
            .roots
            .iter()
            .flatten()
            .all(|&r| self.labels[r].has_h());
        term_ok && roots_ok
    }

    /// Computes the size statistics (rows, columns, S, D).
    pub fn stats(&self) -> LabelingStats {
        let rows = self.labels.iter().filter(|l| l.has_h()).count();
        let cols = self.labels.iter().filter(|l| l.has_v()).count();
        let num_vh = self
            .labels
            .iter()
            .filter(|l| matches!(l, VhLabel::Vh))
            .count();
        LabelingStats {
            rows,
            cols,
            semiperimeter: rows + cols,
            max_dimension: rows.max(cols),
            num_vh,
        }
    }

    /// Upgrades every misaligned root/terminal to provide a wordline
    /// (`V → VH`), enforcing Eq. 7 at minimal semiperimeter cost. Returns
    /// the number of upgrades.
    pub fn enforce_alignment(&mut self, graph: &BddGraph) -> usize {
        let mut upgrades = 0;
        let mut targets: Vec<usize> = graph.roots.iter().flatten().copied().collect();
        if let Some(t) = graph.terminal {
            targets.push(t);
        }
        for v in targets {
            if !self.labels[v].has_h() {
                self.labels[v] = VhLabel::Vh;
                upgrades += 1;
            }
        }
        upgrades
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_bdd::build_sbdd;
    use flowc_logic::{GateKind, Network};

    fn path_graph() -> BddGraph {
        // f = a ∧ b: nodes a - b - 1, a path (bipartite).
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
        n.mark_output(f);
        BddGraph::from_bdds(&build_sbdd(&n, None))
    }

    #[test]
    fn validity_rules() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 3);
        // Alternating H-V-H along the path is valid.
        // Identify the path order from edges; nodes: root a, node b, term 1.
        let mut l = Labeling::new(vec![VhLabel::H; 3]);
        assert!(!l.is_valid(&g), "all-H violates every edge");
        // Find the middle node (degree 2).
        let mid = (0..3).find(|&v| g.graph.degree(v) == 2).unwrap();
        l.set(mid, VhLabel::V);
        assert!(l.is_valid(&g), "H-V-H is valid");
        // All-VH is always valid (the trivial solution).
        let all_vh = Labeling::new(vec![VhLabel::Vh; 3]);
        assert!(all_vh.is_valid(&g));
    }

    #[test]
    fn stats_identities() {
        let l = Labeling::new(vec![VhLabel::H, VhLabel::V, VhLabel::Vh, VhLabel::H]);
        let s = l.stats();
        assert_eq!(s.rows, 3);
        assert_eq!(s.cols, 2);
        assert_eq!(s.semiperimeter, 5);
        assert_eq!(s.max_dimension, 3);
        assert_eq!(s.num_vh, 1);
        // S = n + k.
        assert_eq!(s.semiperimeter, 4 + s.num_vh);
        assert!((s.objective(1.0) - 5.0).abs() < 1e-12);
        assert!((s.objective(0.0) - 3.0).abs() < 1e-12);
        assert!((s.objective(0.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn alignment_detection_and_enforcement() {
        let g = path_graph();
        let root = g.roots[0].unwrap();
        let term = g.terminal.unwrap();
        let mid = (0..3).find(|&v| v != root && v != term).unwrap();
        let mut l = Labeling::new(vec![VhLabel::V; 3]);
        l.set(mid, VhLabel::H);
        assert!(l.is_valid(&g));
        assert!(!l.is_aligned(&g), "root and terminal are V");
        let upgrades = l.enforce_alignment(&g);
        assert_eq!(upgrades, 2);
        assert!(l.is_aligned(&g));
        assert!(l.is_valid(&g), "upgrades never break validity");
        assert_eq!(l.stats().num_vh, 2);
    }

    #[test]
    fn wrong_length_is_invalid() {
        let g = path_graph();
        let l = Labeling::new(vec![VhLabel::Vh; 2]);
        assert!(!l.is_valid(&g));
    }
}

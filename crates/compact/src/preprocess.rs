//! Graph pre-processing (Section V-A of the paper): convert a (shared) BDD
//! into the undirected graph whose nodes become nanowires and whose edges
//! become memristors. The 0-terminal and its incoming edges are dropped —
//! flow-based computing only captures the `1` output.

use std::collections::HashMap;

use flowc_bdd::{NetworkBdds, Ref};
use flowc_graph::UGraph;

/// The literal programmed onto a memristor: input `input`, possibly negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Network primary-input index.
    pub input: usize,
    /// True for the else-edge (variable must be 0 to conduct).
    pub negated: bool,
}

/// The undirected graph view of a BDD forest, ready for VH-labeling.
#[derive(Debug, Clone)]
pub struct BddGraph {
    /// The graph: one vertex per BDD node (0-terminal excluded).
    pub graph: UGraph,
    /// Literal per edge, keyed by `(min_vertex, max_vertex)`.
    pub labels: HashMap<(usize, usize), Literal>,
    /// Graph vertex of the 1-terminal (the crossbar's input port), if the
    /// forest reaches it (a forest of constant-0 outputs does not).
    pub terminal: Option<usize>,
    /// For each circuit output, the vertex of its root — `None` for a
    /// constant-0 output (whose root is the dropped 0-terminal).
    pub roots: Vec<Option<usize>>,
    /// Debug names per vertex (variable name of the BDD node, or `"1"`).
    pub node_names: Vec<String>,
    /// Number of Boolean inputs of the source network.
    pub num_inputs: usize,
}

impl BddGraph {
    /// Number of graph nodes (the paper's `n`: BDD nodes minus the dropped
    /// 0-terminal).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of graph edges (the BDD edges not pointing to 0).
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Builds the graph view of `bdds` (all roots share one graph — the
    /// SBDD view). Vertices are created for every node reachable from a
    /// root, except the 0-terminal.
    pub fn from_bdds(bdds: &NetworkBdds) -> Self {
        let m = &bdds.manager;
        // Map BDD variable id -> network input index.
        let mut var_to_input = vec![usize::MAX; bdds.vars.len()];
        for (input_idx, v) in bdds.vars.iter().enumerate() {
            var_to_input[v.index()] = input_idx;
        }

        let live = m.reachable(&bdds.roots);
        let mut vertex_of: HashMap<Ref, usize> = HashMap::new();
        let mut node_names = Vec::new();
        let mut terminal = None;
        for &r in &live {
            if r == Ref::ZERO {
                continue;
            }
            let v = vertex_of.len();
            vertex_of.insert(r, v);
            if r == Ref::ONE {
                terminal = Some(v);
                node_names.push("1".to_string());
            } else {
                node_names.push(m.var_name(m.node_var(r)).to_string());
            }
        }

        let mut graph = UGraph::new(vertex_of.len());
        let mut labels = HashMap::new();
        // Insert edges in the deterministic `live` (DFS) order, not HashMap
        // iteration order: downstream solvers tie-break equally-optimal
        // labelings by edge order, so two builds of the same BDD must
        // produce identically-ordered graphs.
        for &r in &live {
            if r.is_terminal() {
                continue;
            }
            let u = vertex_of[&r];
            let var = m.node_var(r);
            let input = var_to_input[var.index()];
            for (child, negated) in [(m.node_hi(r), false), (m.node_lo(r), true)] {
                if child == Ref::ZERO {
                    continue;
                }
                let w = vertex_of[&child];
                let added = graph.add_edge(u, w);
                debug_assert!(added, "reduced BDDs have no parallel edges");
                labels.insert((u.min(w), u.max(w)), Literal { input, negated });
            }
        }

        let roots = bdds
            .roots
            .iter()
            .map(|r| vertex_of.get(r).copied())
            .collect();
        BddGraph {
            graph,
            labels,
            terminal,
            roots,
            node_names,
            num_inputs: bdds.vars.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_bdd::build_sbdd;
    use flowc_logic::{GateKind, Network};

    fn fig2_graph() -> BddGraph {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        BddGraph::from_bdds(&build_sbdd(&n, None))
    }

    #[test]
    fn fig2_structure() {
        let g = fig2_graph();
        // ROBDD of (a∧b)∨c: nodes a, b, c, terminal 1 (0 dropped) = 4.
        assert_eq!(g.num_nodes(), 4);
        // Edges: a→b (hi), a→c (lo), b→1 (hi), b→c (lo), c→1 (hi) = 5.
        assert_eq!(g.num_edges(), 5);
        assert!(g.terminal.is_some());
        assert_eq!(g.roots.len(), 1);
        assert!(g.roots[0].is_some());
        // Every edge has a literal.
        assert_eq!(g.labels.len(), g.num_edges());
    }

    #[test]
    fn terminal_edges_use_parent_literals() {
        let g = fig2_graph();
        let t = g.terminal.unwrap();
        // Edges into the terminal carry the parent's variable.
        for &(u, v) in g.graph.edges() {
            if u == t || v == t {
                let lit = g.labels[&(u.min(v), u.max(v))];
                assert!(lit.input < 3);
            }
        }
    }

    #[test]
    fn constant_outputs() {
        let mut n = Network::new("consts");
        let _a = n.add_input("a");
        let zero = n.add_const0("z");
        let one = n.add_const1("o");
        n.mark_output(zero);
        n.mark_output(one);
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        assert_eq!(g.roots[0], None, "constant-0 root is dropped");
        assert_eq!(g.roots[1], g.terminal, "constant-1 root is the terminal");
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn shared_nodes_shared_vertices() {
        // Two outputs sharing a subfunction share graph vertices.
        let mut n = Network::new("share");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        let g2 = n.add_gate(GateKind::Xor, &[ab, c], "g").unwrap();
        n.mark_output(f);
        n.mark_output(g2);
        let shared = BddGraph::from_bdds(&build_sbdd(&n, None));
        assert_eq!(shared.roots.len(), 2);
        // Strictly smaller than two separate copies (which would double the
        // a/b spine).
        assert!(shared.num_nodes() < 2 * 4);
    }

    #[test]
    fn paper_semiperimeter_identity() {
        // n nodes in the graph == BDD size minus the 0 terminal.
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::Xor, &[a, b], "f").unwrap();
        n.mark_output(f);
        let bdds = build_sbdd(&n, None);
        let size = bdds.shared_size();
        let g = BddGraph::from_bdds(&bdds);
        assert_eq!(g.num_nodes(), size - 1);
    }
}

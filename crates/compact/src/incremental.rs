//! Incremental re-synthesis over streaming netlist edits.
//!
//! A [`EditSession`] holds an editable view of a netlist and the COMPACT
//! artifacts of its last synthesis. Each applied [`NetlistEdit`] is keyed
//! by per-output *cone-of-influence* content hashes — an FNV digest of the
//! transitive fan-in of each primary output, not of the whole network — so
//! an edit invalidates exactly the outputs whose cones it touches. Edits
//! that leave every cone intact (dead-logic inserts, removals of unused
//! gates, reverts back to a recently-seen state) resolve as cache hits
//! without running the solver at all.
//!
//! When a cone does change, the previous VH-labeling is *repaired* rather
//! than discarded: [`repair_labeling`] matches the old BDD graph's nodes
//! to the new one with the Hopcroft–Karp matcher (the same machinery the
//! defect-repair path uses for permutation search), transfers the matched
//! labels, upgrades anything unmatched or newly-infeasible to `Vh`, and
//! hands the result to the branch & bound as a warm-start incumbent.
//! When the match turns out to be an attribute-preserving isomorphism —
//! the edit rebuilt the BDD but did not change its labeling model, as
//! function-preserving rewires and reverts do — the permuted labeling is
//! provably optimal and ships directly, with no solver stage at all.
//! Otherwise the solver still *proves* optimality, so an incremental
//! solve lands on the same objective value a cold solve would — repair
//! changes the path, never the destination. The fallback ladder is:
//!
//! 1. **Hit** — the combined cone key matches a cached result (or the
//!    session's labeling artifact cache already holds this graph's
//!    optimum); no solve runs.
//! 2. **Repaired** — the old labeling transferred wholesale: either the
//!    perfect-transfer fast path shipped it without solving, or the
//!    solver accepted it as its incumbent with most nodes matched.
//! 3. **Warm-started** — little of the old labeling survived the match,
//!    but the (mostly-`Vh`) transfer still seeded the solver.
//! 4. **Cold** — the solver ran without a usable incumbent.
//!
//! The differential guarantee (incremental ≡ cold after every edit) is
//! exercised by `flowc-conform`'s edit-stream fuzzer; see DESIGN.md §15.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use flowc_budget::Budget;
use flowc_graph::{hopcroft_karp, BipartiteMatching};
use flowc_logic::{GateKind, NetId, Network};
use flowc_xbar::metrics::CrossbarMetrics;

use crate::labeling::{Labeling, VhLabel};
use crate::mapping::map_to_crossbar;
use crate::pass::{BddBuildPass, GraphExtractPass, NormalizePass, Pass};
use crate::pipeline::{CompactError, CompactResult, Config};
use crate::preprocess::BddGraph;
use crate::session::{graph_key, synthesize_in_budgeted, ArtifactKey, Session, SessionConfig};
use crate::supervisor::DegradationReport;

// ---------------------------------------------------------------------------
// The edit vocabulary
// ---------------------------------------------------------------------------

/// One typed edit against an [`EditableNetlist`]. Nets are addressed by
/// name (the stable identity across edits); output slots by position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistEdit {
    /// Add a gate driving a fresh net `name`, fed by existing nets.
    AddGate {
        /// Fresh net name the new gate drives.
        name: String,
        /// Gate function.
        kind: GateKind,
        /// Operand net names, in pin order.
        inputs: Vec<String>,
    },
    /// Remove a gate nothing references (no fanout, not an output).
    RemoveGate {
        /// Net name of the gate to remove.
        name: String,
    },
    /// Reconnect one input pin of an existing gate to another net.
    RewireInput {
        /// Net name of the gate being rewired.
        gate: String,
        /// Pin index within the gate's operand list.
        pin: usize,
        /// Net name of the new source.
        source: String,
    },
    /// Point an existing output slot at a different net.
    RetargetOutput {
        /// Output slot (position in the output list).
        index: usize,
        /// Net name the slot should observe.
        target: String,
    },
    /// Append a new primary output observing `target`.
    AddOutput {
        /// Net name the new output observes.
        target: String,
    },
    /// Remove an output slot (the remaining slots shift down).
    DropOutput {
        /// Output slot to remove.
        index: usize,
    },
}

impl fmt::Display for NetlistEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistEdit::AddGate { name, kind, inputs } => {
                write!(f, "add {name} {}", kind.name())?;
                for i in inputs {
                    write!(f, " {i}")?;
                }
                Ok(())
            }
            NetlistEdit::RemoveGate { name } => write!(f, "remove {name}"),
            NetlistEdit::RewireInput { gate, pin, source } => {
                write!(f, "rewire {gate} {pin} {source}")
            }
            NetlistEdit::RetargetOutput { index, target } => {
                write!(f, "retarget {index} {target}")
            }
            NetlistEdit::AddOutput { target } => write!(f, "add-output {target}"),
            NetlistEdit::DropOutput { index } => write!(f, "drop-output {index}"),
        }
    }
}

fn parse_kind(name: &str) -> Option<GateKind> {
    [
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
    ]
    .into_iter()
    .find(|&kind| kind.name() == name)
}

/// Parses one edit-script line (the inverse of [`NetlistEdit`]'s
/// `Display`). Grammar, one edit per line:
///
/// ```text
/// add <net> <kind> <operand>...      remove <net>
/// rewire <gate> <pin> <source>       retarget <slot> <net>
/// add-output <net>                   drop-output <slot>
/// ```
///
/// # Errors
///
/// A human-readable message naming the malformed token.
pub fn parse_edit(line: &str) -> Result<NetlistEdit, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or("empty edit line")?;
    let rest: Vec<&str> = words.collect();
    let index = |w: &str| -> Result<usize, String> {
        w.parse().map_err(|_| format!("`{w}` is not a slot index"))
    };
    match verb {
        "add" => {
            if rest.len() < 2 {
                return Err("add needs `<net> <kind> <operand>...`".into());
            }
            let kind =
                parse_kind(rest[1]).ok_or_else(|| format!("unknown gate kind `{}`", rest[1]))?;
            Ok(NetlistEdit::AddGate {
                name: rest[0].to_string(),
                kind,
                inputs: rest[2..].iter().map(|s| s.to_string()).collect(),
            })
        }
        "remove" => match rest.as_slice() {
            [name] => Ok(NetlistEdit::RemoveGate {
                name: name.to_string(),
            }),
            _ => Err("remove needs `<net>`".into()),
        },
        "rewire" => match rest.as_slice() {
            [gate, pin, source] => Ok(NetlistEdit::RewireInput {
                gate: gate.to_string(),
                pin: index(pin)?,
                source: source.to_string(),
            }),
            _ => Err("rewire needs `<gate> <pin> <source>`".into()),
        },
        "retarget" => match rest.as_slice() {
            [slot, target] => Ok(NetlistEdit::RetargetOutput {
                index: index(slot)?,
                target: target.to_string(),
            }),
            _ => Err("retarget needs `<slot> <net>`".into()),
        },
        "add-output" => match rest.as_slice() {
            [target] => Ok(NetlistEdit::AddOutput {
                target: target.to_string(),
            }),
            _ => Err("add-output needs `<net>`".into()),
        },
        "drop-output" => match rest.as_slice() {
            [slot] => Ok(NetlistEdit::DropOutput {
                index: index(slot)?,
            }),
            _ => Err("drop-output needs `<slot>`".into()),
        },
        other => Err(format!("unknown edit verb `{other}`")),
    }
}

/// Parses a whole edit script: one edit per line, `#` comments and blank
/// lines skipped.
///
/// # Errors
///
/// The first malformed line, with its 1-based line number.
pub fn parse_edit_script(text: &str) -> Result<Vec<NetlistEdit>, String> {
    let mut edits = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        edits.push(parse_edit(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(edits)
}

/// Why an edit (or a session operation) was rejected. Every variant is a
/// *refusal*: the netlist is left exactly as it was before the call.
#[derive(Debug, Clone, PartialEq)]
pub enum EditError {
    /// A referenced net name does not exist.
    UnknownNet(String),
    /// The named net exists but is a primary input, not a gate.
    NotAGate(String),
    /// `AddGate` would shadow an existing net name.
    NameTaken(String),
    /// `RemoveGate` target still feeds a gate or a primary output.
    GateInUse(String),
    /// A pin index is out of range for the gate's operand list.
    PinOutOfRange {
        /// The gate being rewired.
        gate: String,
        /// The offending pin index.
        pin: usize,
        /// The gate's arity.
        arity: usize,
    },
    /// An output slot index is out of range.
    OutputOutOfRange(usize),
    /// The edit would leave the netlist with no primary outputs.
    NoOutputs,
    /// Rewiring would close a combinational cycle.
    WouldCycle(String),
    /// The operand count is illegal for the gate kind.
    Arity {
        /// The gate kind.
        kind: GateKind,
        /// The offered operand count.
        got: usize,
    },
    /// Re-synthesis after a structural change failed.
    Synthesis(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownNet(n) => write!(f, "no net named `{n}`"),
            EditError::NotAGate(n) => write!(f, "net `{n}` is a primary input, not a gate"),
            EditError::NameTaken(n) => write!(f, "net name `{n}` is already in use"),
            EditError::GateInUse(n) => {
                write!(f, "gate `{n}` still feeds a gate or output")
            }
            EditError::PinOutOfRange { gate, pin, arity } => {
                write!(f, "gate `{gate}` has {arity} pins, no pin {pin}")
            }
            EditError::OutputOutOfRange(i) => write!(f, "no output slot {i}"),
            EditError::NoOutputs => write!(f, "edit would leave the netlist with no outputs"),
            EditError::WouldCycle(n) => {
                write!(
                    f,
                    "rewiring through `{n}` would close a combinational cycle"
                )
            }
            EditError::Arity { kind, got } => {
                write!(f, "illegal operand count {got} for `{}`", kind.name())
            }
            EditError::Synthesis(msg) => write!(f, "re-synthesis failed: {msg}"),
        }
    }
}

impl std::error::Error for EditError {}

impl From<CompactError> for EditError {
    fn from(e: CompactError) -> Self {
        EditError::Synthesis(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// The editable netlist
// ---------------------------------------------------------------------------

/// One gate of an [`EditableNetlist`], with name-based operand wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditGate {
    /// Net name the gate drives.
    pub name: String,
    /// Gate function.
    pub kind: GateKind,
    /// Operand net names, in pin order.
    pub inputs: Vec<String>,
}

/// A name-keyed, mutable view of a combinational netlist.
///
/// [`Network`](flowc_logic::Network) is append-only and acyclic by
/// construction — ideal for synthesis, useless for editing. This type
/// holds the same circuit as named gates with name-based wiring, accepts
/// [`NetlistEdit`]s with full validation (rejecting cycles, dangling
/// references, and arity violations *before* mutating), and materializes
/// back into a `Network` in a deterministic topological order.
#[derive(Debug, Clone)]
pub struct EditableNetlist {
    name: String,
    inputs: Vec<String>,
    input_index: HashMap<String, usize>,
    gates: Vec<EditGate>,
    gate_index: HashMap<String, usize>,
    outputs: Vec<String>,
}

fn arity_ok(kind: GateKind, n: usize) -> bool {
    match kind {
        GateKind::Const0 | GateKind::Const1 => n == 0,
        GateKind::Buf | GateKind::Not => n == 1,
        GateKind::Mux => n == 3,
        _ => n >= 2,
    }
}

impl EditableNetlist {
    /// Builds the editable view of `network`, using its net names as the
    /// stable edit-time identities.
    pub fn from_network(network: &Network) -> EditableNetlist {
        let inputs: Vec<String> = network
            .inputs()
            .iter()
            .map(|&i| network.net_name(i).to_string())
            .collect();
        let input_index = inputs
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let mut gates = Vec::with_capacity(network.num_gates());
        let mut gate_index = HashMap::new();
        for gate in network.gates() {
            let name = network.net_name(gate.output).to_string();
            gate_index.insert(name.clone(), gates.len());
            gates.push(EditGate {
                name,
                kind: gate.kind,
                inputs: gate
                    .inputs
                    .iter()
                    .map(|&i| network.net_name(i).to_string())
                    .collect(),
            });
        }
        let outputs = network
            .outputs()
            .iter()
            .map(|&o| network.net_name(o).to_string())
            .collect();
        EditableNetlist {
            name: network.name().to_string(),
            inputs,
            input_index,
            gates,
            gate_index,
            outputs,
        }
    }

    /// Primary-input names, in order.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Gates, in insertion order (not necessarily topological).
    pub fn gates(&self) -> &[EditGate] {
        &self.gates
    }

    /// Primary-output net names, in slot order.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    fn net_exists(&self, name: &str) -> bool {
        self.input_index.contains_key(name) || self.gate_index.contains_key(name)
    }

    /// True if removing `name` would dangle a reference: some gate reads
    /// it, or some output slot observes it.
    fn is_referenced(&self, name: &str) -> bool {
        self.outputs.iter().any(|o| o == name)
            || self
                .gates
                .iter()
                .any(|g| g.inputs.iter().any(|i| i == name))
    }

    /// True if `needle` is in the transitive fan-in cone of `from`
    /// (the cycle check for rewiring: `gate` must not feed `source`).
    fn cone_contains(&self, from: &str, needle: &str) -> bool {
        let mut stack = vec![from];
        let mut seen: HashMap<&str, ()> = HashMap::new();
        while let Some(net) = stack.pop() {
            if net == needle {
                return true;
            }
            if seen.insert(net, ()).is_some() {
                continue;
            }
            if let Some(&g) = self.gate_index.get(net) {
                for op in &self.gates[g].inputs {
                    stack.push(op);
                }
            }
        }
        false
    }

    /// Applies one edit, validating it completely first.
    ///
    /// # Errors
    ///
    /// [`EditError`] describing the refusal; the netlist is unchanged.
    pub fn apply(&mut self, edit: &NetlistEdit) -> Result<(), EditError> {
        match edit {
            NetlistEdit::AddGate { name, kind, inputs } => {
                if self.net_exists(name) {
                    return Err(EditError::NameTaken(name.clone()));
                }
                if !arity_ok(*kind, inputs.len()) {
                    return Err(EditError::Arity {
                        kind: *kind,
                        got: inputs.len(),
                    });
                }
                for op in inputs {
                    if !self.net_exists(op) {
                        return Err(EditError::UnknownNet(op.clone()));
                    }
                }
                // A fresh gate only reads existing nets, so no cycle is
                // possible.
                self.gate_index.insert(name.clone(), self.gates.len());
                self.gates.push(EditGate {
                    name: name.clone(),
                    kind: *kind,
                    inputs: inputs.clone(),
                });
                Ok(())
            }
            NetlistEdit::RemoveGate { name } => {
                let &idx = self.gate_index.get(name).ok_or_else(|| {
                    match self.input_index.contains_key(name) {
                        true => EditError::NotAGate(name.clone()),
                        false => EditError::UnknownNet(name.clone()),
                    }
                })?;
                if self.is_referenced(name) {
                    return Err(EditError::GateInUse(name.clone()));
                }
                self.gates.remove(idx);
                self.gate_index.remove(name);
                for g in self.gate_index.values_mut() {
                    if *g > idx {
                        *g -= 1;
                    }
                }
                Ok(())
            }
            NetlistEdit::RewireInput { gate, pin, source } => {
                let &idx = self.gate_index.get(gate).ok_or_else(|| {
                    match self.input_index.contains_key(gate) {
                        true => EditError::NotAGate(gate.clone()),
                        false => EditError::UnknownNet(gate.clone()),
                    }
                })?;
                let arity = self.gates[idx].inputs.len();
                if *pin >= arity {
                    return Err(EditError::PinOutOfRange {
                        gate: gate.clone(),
                        pin: *pin,
                        arity,
                    });
                }
                if !self.net_exists(source) {
                    return Err(EditError::UnknownNet(source.clone()));
                }
                // `gate` must not sit in `source`'s fan-in cone, else the
                // new wire closes a combinational loop.
                if self.cone_contains(source, gate) {
                    return Err(EditError::WouldCycle(source.clone()));
                }
                self.gates[idx].inputs[*pin] = source.clone();
                Ok(())
            }
            NetlistEdit::RetargetOutput { index, target } => {
                if *index >= self.outputs.len() {
                    return Err(EditError::OutputOutOfRange(*index));
                }
                if !self.net_exists(target) {
                    return Err(EditError::UnknownNet(target.clone()));
                }
                self.outputs[*index] = target.clone();
                Ok(())
            }
            NetlistEdit::AddOutput { target } => {
                if !self.net_exists(target) {
                    return Err(EditError::UnknownNet(target.clone()));
                }
                self.outputs.push(target.clone());
                Ok(())
            }
            NetlistEdit::DropOutput { index } => {
                if *index >= self.outputs.len() {
                    return Err(EditError::OutputOutOfRange(*index));
                }
                if self.outputs.len() == 1 {
                    return Err(EditError::NoOutputs);
                }
                self.outputs.remove(*index);
                Ok(())
            }
        }
    }

    /// Gate indices in a deterministic topological order (Kahn's
    /// algorithm with an insertion-order tie-break), so materialization
    /// is stable across storage permutations.
    fn topo_order(&self) -> Result<Vec<usize>, EditError> {
        let n = self.gates.len();
        // indegree counts only gate→gate wires; input operands are free.
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (g, gate) in self.gates.iter().enumerate() {
            for op in &gate.inputs {
                if let Some(&src) = self.gate_index.get(op) {
                    indegree[g] += 1;
                    fanout[src].push(g);
                }
            }
        }
        // A sorted ready-pool (not a queue) keeps the order canonical.
        let mut ready: Vec<usize> = (0..n).filter(|&g| indegree[g] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // pop() takes the lowest
        let mut order = Vec::with_capacity(n);
        while let Some(g) = ready.pop() {
            order.push(g);
            for &next in &fanout[g] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    // Insert keeping the descending sort.
                    let pos = ready
                        .binary_search_by(|x| next.cmp(x))
                        .unwrap_or_else(|p| p);
                    ready.insert(pos, next);
                }
            }
        }
        if order.len() != n {
            return Err(EditError::WouldCycle(
                self.gates[order.len().min(n - 1)].name.clone(),
            ));
        }
        Ok(order)
    }

    /// Materializes the current state as a validated, topologically
    /// ordered [`Network`].
    ///
    /// # Errors
    ///
    /// [`EditError`] if the state is somehow inconsistent (defensive; the
    /// per-edit validation keeps this unreachable through public edits).
    pub fn materialize(&self) -> Result<Network, EditError> {
        let mut network = Network::new(&self.name);
        let mut ids: HashMap<&str, NetId> = HashMap::new();
        for input in &self.inputs {
            ids.insert(input, network.add_input(input));
        }
        for &g in &self.topo_order()? {
            let gate = &self.gates[g];
            let operands: Vec<NetId> = gate
                .inputs
                .iter()
                .map(|op| {
                    ids.get(op.as_str())
                        .copied()
                        .ok_or_else(|| EditError::UnknownNet(op.clone()))
                })
                .collect::<Result<_, _>>()?;
            let id = network
                .add_gate(gate.kind, &operands, &gate.name)
                .map_err(|e| EditError::Synthesis(e.to_string()))?;
            ids.insert(&gate.name, id);
        }
        for out in &self.outputs {
            let &id = ids
                .get(out.as_str())
                .ok_or_else(|| EditError::UnknownNet(out.clone()))?;
            network.mark_output(id);
        }
        Ok(network)
    }

    /// The cone-of-influence content hash of one output slot: an FNV-1a
    /// digest of the slot's transitive fan-in, in canonical (root-first
    /// DFS post-order) local numbering. Gate *names* and storage order do
    /// not contribute; global input indices do (the BDD variable order is
    /// a property of the whole input list, so two cones only share
    /// artifacts when they read the same global variables).
    pub fn cone_hash(&self, slot: usize) -> Option<u64> {
        let root = self.outputs.get(slot)?;
        let mut hasher = Fnv::new();
        let mut local: HashMap<usize, u64> = HashMap::new();
        self.hash_cone_of(root, &mut local, &mut hasher);
        Some(hasher.finish())
    }

    fn hash_cone_of(&self, root: &str, local: &mut HashMap<usize, u64>, hasher: &mut Fnv) {
        // Iterative DFS; the second visit of a frame emits the gate.
        enum Frame<'a> {
            Enter(&'a str),
            Emit(usize),
        }
        let mut stack = vec![Frame::Enter(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(net) => {
                    if let Some(&input) = self.input_index.get(net) {
                        // Inputs hash by global index; emitted per *use*
                        // inside the gate record below, nothing here.
                        let _ = input;
                        continue;
                    }
                    let g = self.gate_index[net];
                    if local.contains_key(&g) {
                        continue;
                    }
                    // Reserve before descending so shared fan-in is
                    // emitted once; the id is final because post-order
                    // emission below assigns ids in the same DFS order.
                    stack.push(Frame::Emit(g));
                    for op in self.gates[g].inputs.iter().rev() {
                        stack.push(Frame::Enter(op));
                    }
                }
                Frame::Emit(g) => {
                    if local.contains_key(&g) {
                        continue;
                    }
                    let id = local.len() as u64;
                    local.insert(g, id);
                    let gate = &self.gates[g];
                    hasher.write_str(gate.kind.name());
                    hasher.write_u64(gate.inputs.len() as u64);
                    for op in &gate.inputs {
                        match self.input_index.get(op) {
                            Some(&i) => {
                                hasher.write_u64(0);
                                hasher.write_u64(i as u64);
                            }
                            None => {
                                hasher.write_u64(1);
                                hasher.write_u64(local[&self.gate_index[op]]);
                            }
                        }
                    }
                }
            }
        }
        // The root reference itself (an output can observe an input).
        match self.input_index.get(root) {
            Some(&i) => {
                hasher.write_u64(0);
                hasher.write_u64(i as u64);
            }
            None => {
                hasher.write_u64(1);
                hasher.write_u64(local[&self.gate_index[root]]);
            }
        }
    }

    /// Cone hashes of every output slot, in slot order.
    pub fn output_cone_hashes(&self) -> Vec<u64> {
        (0..self.outputs.len())
            .map(|s| self.cone_hash(s).expect("slot in range"))
            .collect()
    }

    /// The combined artifact key for the current state: the FNV fold of
    /// the input count and the ordered per-output cone hashes. Edits that
    /// only touch dead logic keep this key, so the [`EditSession`] resolves
    /// them as cache hits.
    pub fn combined_cone_key(&self) -> u64 {
        let mut hasher = Fnv::new();
        hasher.write_u64(self.inputs.len() as u64);
        for hash in self.output_cone_hashes() {
            hasher.write_u64(hash);
        }
        hasher.finish()
    }
}

/// FNV-1a, matching the digest family used for the session artifact keys.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Label repair
// ---------------------------------------------------------------------------

/// Repairs a VH-labeling across a graph change: matches `new`'s nodes to
/// `old`'s by BDD-variable name with the Hopcroft–Karp matcher (candidates
/// ordered by degree similarity so structurally-alike nodes pair first),
/// transfers the matched labels, upgrades unmatched nodes to `Vh`, then
/// restores Eq. 2 feasibility and Eq. 7 alignment. Returns the repaired
/// labeling — always valid and aligned for `new` — and the matched-node
/// count (the repair-quality signal the [`EditSession`] ladder uses).
///
/// The result is an *incumbent*, not an answer: handed to the branch &
/// bound as a warm start it can only speed the proof up, never change the
/// optimum the solver certifies.
pub fn repair_labeling(old: &BddGraph, old_labels: &Labeling, new: &BddGraph) -> (Labeling, usize) {
    if old_labels.labels().len() != old.num_nodes() || new.num_nodes() == 0 {
        let mut labeling = Labeling::new(vec![VhLabel::Vh; new.num_nodes()]);
        labeling.enforce_alignment(new);
        return (labeling, 0);
    }
    let matching = transfer_matching(old, new);
    let labeling = repair_from_matching(old_labels, new, &matching);
    (labeling, matching.size)
}

/// The Hopcroft–Karp node correspondence between two BDD graphs:
/// candidates are same-BDD-variable nodes, degree-similar pairs tried
/// first. `pair_left[u]` maps `new`'s node `u` onto `old`'s node space.
fn transfer_matching(old: &BddGraph, new: &BddGraph) -> BipartiteMatching {
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (v, name) in old.node_names.iter().enumerate() {
        by_name.entry(name.as_str()).or_default().push(v);
    }
    let adjacency: Vec<Vec<usize>> = (0..new.num_nodes())
        .map(|u| {
            let mut candidates = by_name
                .get(new.node_names[u].as_str())
                .cloned()
                .unwrap_or_default();
            // Degree-similar candidates first: they are likeliest to keep
            // the transferred label feasible.
            candidates.sort_by_key(|&v| {
                (
                    old.graph.degree(v).abs_diff(new.graph.degree(u)),
                    v, // deterministic tie-break
                )
            });
            candidates
        })
        .collect();
    hopcroft_karp(&adjacency, old.num_nodes())
}

/// Transfers matched labels onto `new` and restores feasibility: the
/// second half of [`repair_labeling`], split out so the edit session can
/// reuse one matching for both the warm-start candidate and the perfect
/// transfer check.
fn repair_from_matching(
    old_labels: &Labeling,
    new: &BddGraph,
    matching: &BipartiteMatching,
) -> Labeling {
    let mut labels = vec![VhLabel::Vh; new.num_nodes()];
    for (u, &v) in matching.pair_left.iter().enumerate() {
        if v != usize::MAX {
            labels[u] = old_labels.label(v);
        }
    }
    let mut labeling = Labeling::new(labels);
    // Restore edge feasibility (Eq. 2). Upgrading an endpoint to `Vh`
    // makes every edge at that endpoint feasible and never breaks an
    // edge fixed earlier (labels only gain capability), so one pass
    // suffices.
    for &(a, b) in new.graph.edges() {
        let (la, lb) = (labeling.label(a), labeling.label(b));
        let feasible = (la.has_h() && lb.has_v()) || (la.has_v() && lb.has_h());
        if !feasible {
            labeling.set(b, VhLabel::Vh);
        }
    }
    labeling.enforce_alignment(new);
    debug_assert!(labeling.is_valid(new));
    labeling
}

/// Whether `matching` is an attribute-preserving isomorphism from `new`
/// onto `old`: a node bijection under which the edge sets coincide and
/// the alignment-constrained ports (output roots plus the 1-terminal)
/// correspond. The VH-labeling problem of Eq. 1–7 is defined entirely by
/// the undirected edge set, the port set, and the objective weights, so
/// under such a bijection both graphs pose *literally the same*
/// optimization problem — an optimal labeling of one permutes into an
/// optimal labeling of the other. (Edge literals are deliberately
/// ignored: they steer the crossbar mapping, not the labeling model.)
fn is_attribute_isomorphism(old: &BddGraph, new: &BddGraph, matching: &BipartiteMatching) -> bool {
    let n = new.num_nodes();
    if n == 0 || old.num_nodes() != n || matching.size != n {
        return false;
    }
    if old.graph.num_edges() != new.graph.num_edges() {
        return false;
    }
    let to_old = &matching.pair_left;
    let old_edges: HashSet<(usize, usize)> = old
        .graph
        .edges()
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    if old_edges.len() != old.graph.num_edges() {
        return false; // parallel edges would alias under the set view
    }
    for &(a, b) in new.graph.edges() {
        let (x, y) = (to_old[a], to_old[b]);
        if !old_edges.contains(&(x.min(y), x.max(y))) {
            return false;
        }
    }
    // Eq. 7 constrains the *set* of ports; multiplicity (two outputs
    // sharing a root) adds no constraint.
    let old_ports: HashSet<usize> = old
        .roots
        .iter()
        .flatten()
        .copied()
        .chain(old.terminal)
        .collect();
    let new_ports: HashSet<usize> = new
        .roots
        .iter()
        .flatten()
        .copied()
        .chain(new.terminal)
        .collect();
    old_ports.len() == new_ports.len() && new_ports.iter().all(|&p| old_ports.contains(&to_old[p]))
}

/// Attempts the perfect-transfer fast path: when the matching is an
/// attribute-preserving isomorphism, permute `old_labels` onto `new` and
/// return it verbatim — valid, aligned, and with exactly the old stats,
/// optimality verdict, and gap (all are properties of the shared model).
/// Returns `None` when the graphs differ structurally (the caller falls
/// back to warm-started solving) or when the transfer is unexpectedly
/// infeasible (defensive; should not happen for a valid `old_labels`).
fn perfect_transfer(
    old: &BddGraph,
    old_labels: &Labeling,
    new: &BddGraph,
    matching: &BipartiteMatching,
) -> Option<Labeling> {
    if !is_attribute_isomorphism(old, new, matching) {
        return None;
    }
    let labels = matching
        .pair_left
        .iter()
        .map(|&v| old_labels.label(v))
        .collect();
    let labeling = Labeling::new(labels);
    (labeling.is_valid(new) && labeling.is_aligned(new)).then_some(labeling)
}

// ---------------------------------------------------------------------------
// The edit session
// ---------------------------------------------------------------------------

/// How an applied edit was resolved, from cheapest to costliest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditResolution {
    /// Every affected cone (and so every artifact) was already cached;
    /// no solve ran.
    Hit,
    /// The Hopcroft–Karp label repair carried the old solution over:
    /// the perfect-transfer fast path shipped it without solving, or the
    /// solver accepted it as its warm-start incumbent.
    Repaired,
    /// The transfer survived only partially, but still seeded the solver.
    WarmStarted,
    /// The solver ran without a usable incumbent.
    Cold,
}

impl EditResolution {
    /// Stable lowercase tag (wire format for `/metrics` and logs).
    pub fn name(self) -> &'static str {
        match self {
            EditResolution::Hit => "hit",
            EditResolution::Repaired => "repaired",
            EditResolution::WarmStarted => "warm-started",
            EditResolution::Cold => "cold",
        }
    }
}

/// Running counters for one [`EditSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Edits applied (accepted; refusals don't count).
    pub edits: usize,
    /// Edits resolved from cache without a solve.
    pub hits: usize,
    /// Edits resolved by Hopcroft–Karp label repair.
    pub repairs: usize,
    /// Edits resolved by a warm-started solve (partial transfer).
    pub warm_starts: usize,
    /// Edits that fell through to a cold solve.
    pub cold_solves: usize,
    /// Output cones invalidated across all edits.
    pub outputs_invalidated: usize,
}

impl IncrementalStats {
    /// Edits that avoided a cold solve (the ISSUE's headline counter).
    pub fn resolved_incrementally(&self) -> usize {
        self.hits + self.repairs + self.warm_starts
    }
}

/// The outcome of one accepted edit.
#[derive(Debug, Clone)]
pub struct EditOutcome {
    /// How the re-synthesis was resolved.
    pub resolution: EditResolution,
    /// Output cones this edit invalidated (0 for a pure cache hit on an
    /// unchanged key).
    pub outputs_invalidated: usize,
    /// The (possibly cached) synthesis result for the post-edit netlist.
    pub result: Arc<CompactResult>,
    /// Wall-clock time spent resolving the edit.
    pub wall: Duration,
}

/// Configuration for an [`EditSession`].
#[derive(Debug, Clone)]
pub struct EditSessionConfig {
    /// The synthesis configuration every state is solved under.
    pub synthesis: Config,
    /// The artifact-session configuration. `warm_labels` is forced on —
    /// warm-start chaining is the repair ladder's second rung.
    pub session: SessionConfig,
    /// Distinct netlist states whose full results are retained for
    /// revert-style hits (FIFO eviction).
    pub results: usize,
}

impl Default for EditSessionConfig {
    fn default() -> EditSessionConfig {
        EditSessionConfig {
            synthesis: Config::default(),
            session: SessionConfig::default(),
            results: 32,
        }
    }
}

/// A synthesis artifact snapshot for one netlist state.
struct EditPoint {
    cone_hashes: Vec<u64>,
    result: Arc<CompactResult>,
    graph: Arc<BddGraph>,
}

/// A long-lived session over one evolving netlist: applies
/// [`NetlistEdit`]s and re-synthesizes only what each edit actually
/// changed. See the [module docs](self) for the resolution ladder.
pub struct EditSession {
    netlist: EditableNetlist,
    config: Config,
    session: Session,
    results: HashMap<u64, Arc<EditPoint>>,
    order: VecDeque<u64>,
    capacity: usize,
    current_key: u64,
    current: Arc<EditPoint>,
    stats: IncrementalStats,
}

impl EditSession {
    /// Opens a session on `network`, paying one cold synthesis for the
    /// starting state (not counted in the edit stats).
    ///
    /// # Errors
    ///
    /// [`EditError::Synthesis`] if the initial synthesis fails (an
    /// invalid network, or an internal pipeline bug).
    pub fn new(network: &Network, config: EditSessionConfig) -> Result<EditSession, EditError> {
        let EditSessionConfig {
            synthesis,
            mut session,
            results,
        } = config;
        session.warm_labels = true;
        let session = Session::new(session);
        let netlist = EditableNetlist::from_network(network);
        let budget = session.budget().clone();
        let (point, _) = solve_state(&netlist, &session, &synthesis, None, &budget)?;
        let current_key = netlist.combined_cone_key();
        let mut this = EditSession {
            current_key,
            netlist,
            config: synthesis,
            session,
            results: HashMap::new(),
            order: VecDeque::new(),
            capacity: results.max(1),
            current: Arc::clone(&point),
            stats: IncrementalStats::default(),
        };
        this.remember(current_key, point);
        Ok(this)
    }

    /// The current synthesis result (always in sync with the netlist).
    pub fn result(&self) -> &CompactResult {
        &self.current.result
    }

    /// The editable netlist view.
    pub fn netlist(&self) -> &EditableNetlist {
        &self.netlist
    }

    /// The underlying artifact session (trace, cache stats).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Running hit/repair/fallback counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Applies one edit under the session budget.
    ///
    /// # Errors
    ///
    /// See [`EditSession::apply_budgeted`].
    pub fn apply(&mut self, edit: &NetlistEdit) -> Result<EditOutcome, EditError> {
        let budget = self.session.budget().clone();
        self.apply_budgeted(edit, &budget)
    }

    /// Applies one edit, re-synthesizing under `budget` if any output
    /// cone changed.
    ///
    /// # Errors
    ///
    /// An [`EditError`] refusal leaves both the netlist and the cached
    /// result exactly as they were (invalid edits are rejected before any
    /// mutation; a synthesis failure rolls the netlist back).
    pub fn apply_budgeted(
        &mut self,
        edit: &NetlistEdit,
        budget: &Budget,
    ) -> Result<EditOutcome, EditError> {
        let sw = budget.stopwatch();
        let before = self.netlist.clone();
        self.netlist.apply(edit)?;
        self.stats.edits += 1;

        let cone_hashes = self.netlist.output_cone_hashes();
        let combined = self.netlist.combined_cone_key();
        let invalidated = invalidated_cones(&self.current.cone_hashes, &cone_hashes);

        // Rung 1: the cone key is unchanged, or matches a retained state
        // (a revert) — the cached result *is* the answer.
        if combined == self.current_key {
            self.stats.hits += 1;
            return Ok(EditOutcome {
                resolution: EditResolution::Hit,
                outputs_invalidated: 0,
                result: Arc::clone(&self.current.result),
                wall: sw.elapsed(),
            });
        }
        if let Some(point) = self.results.get(&combined).cloned() {
            self.stats.hits += 1;
            self.stats.outputs_invalidated += invalidated;
            self.current_key = combined;
            self.current = point;
            return Ok(EditOutcome {
                resolution: EditResolution::Hit,
                outputs_invalidated: invalidated,
                result: Arc::clone(&self.current.result),
                wall: sw.elapsed(),
            });
        }

        // The invalidation decision is made; the relabel is next. A crash
        // here must leave any disk labeling cache consistent (exercised
        // by the serve crash-recovery harness).
        flowc_failpoint::maybe_crash("compact.incremental.relabel");

        self.stats.outputs_invalidated += invalidated;
        let solved = solve_state(
            &self.netlist,
            &self.session,
            &self.config,
            Some(&self.current),
            budget,
        );
        let (point, matched) = match solved {
            Ok(ok) => ok,
            Err(e) => {
                // Roll back so the session stays self-consistent.
                self.netlist = before;
                self.stats.edits -= 1;
                self.stats.outputs_invalidated -= invalidated;
                return Err(e);
            }
        };
        debug_assert_eq!(point.cone_hashes, cone_hashes);
        let resolution = classify(&point, matched);
        match resolution {
            EditResolution::Hit => self.stats.hits += 1,
            EditResolution::Repaired => self.stats.repairs += 1,
            EditResolution::WarmStarted => self.stats.warm_starts += 1,
            EditResolution::Cold => self.stats.cold_solves += 1,
        }
        self.current_key = combined;
        self.current = Arc::clone(&point);
        self.remember(combined, point);
        Ok(EditOutcome {
            resolution,
            outputs_invalidated: invalidated,
            result: Arc::clone(&self.current.result),
            wall: sw.elapsed(),
        })
    }

    fn remember(&mut self, key: u64, point: Arc<EditPoint>) {
        if self.results.insert(key, point).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    if old != self.current_key {
                        self.results.remove(&old);
                    } else {
                        // Never evict the live state; retry it later.
                        self.order.push_back(old);
                        break;
                    }
                }
            }
        }
    }
}

/// Count of cone hashes in `new` not covered by `old` (multiset
/// difference, so output reordering alone invalidates nothing).
fn invalidated_cones(old: &[u64], new: &[u64]) -> usize {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &h in old {
        *counts.entry(h).or_insert(0) += 1;
    }
    new.iter()
        .filter(|h| {
            if let Some(c) = counts.get_mut(h) {
                if *c > 0 {
                    *c -= 1;
                    return false;
                }
            }
            true
        })
        .count()
}

/// Synthesizes `netlist`'s current state inside `session`, repairing
/// `previous`'s labeling into a warm-start incumbent first. Returns the
/// artifact snapshot plus the Hopcroft–Karp matched-node count.
fn solve_state(
    netlist: &EditableNetlist,
    session: &Session,
    config: &Config,
    previous: Option<&EditPoint>,
    budget: &Budget,
) -> Result<(Arc<EditPoint>, usize), EditError> {
    let network = netlist.materialize()?;
    let bdd = BddBuildPass
        .run_with_budget(session, (&network, config.var_order.as_deref()), budget)
        .map_err(EditError::from)?;
    let graph = GraphExtractPass.run_with_budget(session, (&bdd.bdds, bdd.key), budget)?;
    let gkey: ArtifactKey = graph_key(bdd.key);
    let mut matched = 0;
    if let Some(prev) = previous {
        if prev.result.labeling.labels().len() != prev.graph.num_nodes() || graph.num_nodes() == 0 {
            let (candidate, m) = repair_labeling(&prev.graph, &prev.result.labeling, &graph);
            matched = m;
            session.offer_warm_hint(gkey, candidate);
        } else {
            let matching = transfer_matching(&prev.graph, &graph);
            matched = matching.size;
            // Perfect-transfer fast path: the labeling of an
            // attribute-isomorphic graph *is* the answer — permute it and
            // skip the solver. A proven-optimal labeling stays optimal
            // (the model is identical); an anytime incumbent keeps its
            // objective and its relative gap (the bound is a graph
            // property and transfers too). Function-preserving rewires,
            // probe outputs, and reverts whose network fingerprint
            // changed land here. Gated on `align` because with alignment
            // off the shipped labeling is post-processed beyond the
            // model the solve covered.
            if config.align {
                if let Some(labeling) =
                    perfect_transfer(&prev.graph, &prev.result.labeling, &graph, &matching)
                {
                    let point =
                        transfer_point(netlist, session, &network, prev, &graph, labeling, budget)?;
                    session.offer_warm_hint(gkey, point.result.labeling.clone());
                    return Ok((Arc::new(point), matched));
                }
            }
            let candidate = repair_from_matching(&prev.result.labeling, &graph, &matching);
            session.offer_warm_hint(gkey, candidate);
        }
    }
    let result = synthesize_in_budgeted(session, &network, config, budget)?;
    let point = Arc::new(EditPoint {
        cone_hashes: netlist.output_cone_hashes(),
        result: Arc::new(result),
        graph,
    });
    Ok((point, matched))
}

/// Builds the [`EditPoint`] for a perfect transfer: maps the permuted
/// labeling to a crossbar and assembles a [`CompactResult`] carrying the
/// previous solve's provenance, with no solver stage at all. The
/// degradation report marks the warm start as accepted and the labeling
/// as freshly produced, so [`classify`] grades the edit `Repaired`.
fn transfer_point(
    netlist: &EditableNetlist,
    session: &Session,
    network: &Network,
    prev: &EditPoint,
    graph: &Arc<BddGraph>,
    labeling: Labeling,
    budget: &Budget,
) -> Result<EditPoint, EditError> {
    let sw = budget.stopwatch();
    let norm = NormalizePass.run_with_budget(session, network, budget)?;
    let stats = labeling.stats();
    let crossbar =
        map_to_crossbar(graph, &labeling, &norm.output_names).map_err(CompactError::Map)?;
    let metrics = CrossbarMetrics::of(&crossbar);
    let prev_report = prev.result.degradation.as_ref();
    let result = CompactResult {
        crossbar,
        stats,
        metrics,
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        labeling,
        optimal: prev.result.optimal,
        relative_gap: prev.result.relative_gap,
        trace: None,
        synthesis_time: sw.elapsed(),
        degradation: Some(DegradationReport {
            rung: prev_report.map_or(crate::supervisor::Rung::ExactMip, |d| d.rung),
            degraded: false,
            attempts: Vec::new(),
            relative_gap: prev.result.relative_gap,
            bdd_wall: Duration::ZERO,
            bdd_budget_lifted: false,
            exhausted: None,
            solver_nodes: 0,
            warm_start: Some(true),
            label_cached: false,
        }),
    };
    Ok(EditPoint {
        cone_hashes: netlist.output_cone_hashes(),
        result: Arc::new(result),
        graph: Arc::clone(graph),
    })
}

/// Classifies a fresh solve against the resolution ladder using the
/// degradation report's provenance flags plus the repair match count.
fn classify(point: &EditPoint, matched: usize) -> EditResolution {
    let Some(report) = point.result.degradation.as_ref() else {
        return EditResolution::Cold;
    };
    if report.label_cached {
        return EditResolution::Hit;
    }
    if report.warm_start != Some(true) {
        return EditResolution::Cold;
    }
    // Warm start accepted: grade it by how much of the previous labeling
    // the Hopcroft–Karp transfer actually carried over.
    if matched * 2 >= point.graph.num_nodes().max(1) {
        EditResolution::Repaired
    } else {
        EditResolution::WarmStarted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::GateKind;

    /// The paper's Fig. 2 example: f = (a ∧ b) ∨ c.
    fn fig2() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn edits_round_trip_through_the_script_grammar() {
        let edits = vec![
            NetlistEdit::AddGate {
                name: "g9".into(),
                kind: GateKind::Nand,
                inputs: vec!["a".into(), "b".into()],
            },
            NetlistEdit::RemoveGate { name: "g9".into() },
            NetlistEdit::RewireInput {
                gate: "f".into(),
                pin: 1,
                source: "a".into(),
            },
            NetlistEdit::RetargetOutput {
                index: 0,
                target: "ab".into(),
            },
            NetlistEdit::AddOutput { target: "c".into() },
            NetlistEdit::DropOutput { index: 1 },
        ];
        let script: String = edits.iter().map(|e| format!("{e}\n")).collect();
        assert_eq!(parse_edit_script(&script).unwrap(), edits);
        assert!(parse_edit("warp f 0 a").is_err());
        assert!(parse_edit("add g9 quux a b").is_err());
        assert!(parse_edit_script("rewire f one a\n").is_err());
    }

    #[test]
    fn invalid_edits_are_refused_without_mutation() {
        let mut nl = EditableNetlist::from_network(&fig2());
        let frozen = nl.clone();
        for (edit, want) in [
            (
                NetlistEdit::AddGate {
                    name: "ab".into(),
                    kind: GateKind::And,
                    inputs: vec!["a".into(), "b".into()],
                },
                EditError::NameTaken("ab".into()),
            ),
            (
                NetlistEdit::AddGate {
                    name: "g9".into(),
                    kind: GateKind::Not,
                    inputs: vec!["a".into(), "b".into()],
                },
                EditError::Arity {
                    kind: GateKind::Not,
                    got: 2,
                },
            ),
            (
                NetlistEdit::AddGate {
                    name: "g9".into(),
                    kind: GateKind::And,
                    inputs: vec!["a".into(), "zz".into()],
                },
                EditError::UnknownNet("zz".into()),
            ),
            (
                NetlistEdit::RemoveGate { name: "ab".into() },
                EditError::GateInUse("ab".into()),
            ),
            (
                NetlistEdit::RemoveGate { name: "a".into() },
                EditError::NotAGate("a".into()),
            ),
            (
                NetlistEdit::RewireInput {
                    gate: "f".into(),
                    pin: 7,
                    source: "a".into(),
                },
                EditError::PinOutOfRange {
                    gate: "f".into(),
                    pin: 7,
                    arity: 2,
                },
            ),
            (
                NetlistEdit::RewireInput {
                    gate: "ab".into(),
                    pin: 0,
                    source: "f".into(),
                },
                EditError::WouldCycle("f".into()),
            ),
            (
                NetlistEdit::RetargetOutput {
                    index: 3,
                    target: "a".into(),
                },
                EditError::OutputOutOfRange(3),
            ),
            (NetlistEdit::DropOutput { index: 0 }, EditError::NoOutputs),
        ] {
            assert_eq!(nl.apply(&edit).unwrap_err(), want, "{edit}");
        }
        assert_eq!(nl.gates(), frozen.gates());
        assert_eq!(nl.outputs(), frozen.outputs());
    }

    #[test]
    fn rewiring_a_gate_to_itself_is_a_cycle() {
        let mut nl = EditableNetlist::from_network(&fig2());
        let err = nl
            .apply(&NetlistEdit::RewireInput {
                gate: "ab".into(),
                pin: 0,
                source: "ab".into(),
            })
            .unwrap_err();
        assert_eq!(err, EditError::WouldCycle("ab".into()));
    }

    #[test]
    fn dead_logic_does_not_perturb_the_cone_key() {
        let mut nl = EditableNetlist::from_network(&fig2());
        let key = nl.combined_cone_key();
        nl.apply(&NetlistEdit::AddGate {
            name: "dead".into(),
            kind: GateKind::Xor,
            inputs: vec!["a".into(), "c".into()],
        })
        .unwrap();
        assert_eq!(nl.combined_cone_key(), key, "dead gate changed the key");
        nl.apply(&NetlistEdit::RemoveGate {
            name: "dead".into(),
        })
        .unwrap();
        assert_eq!(nl.combined_cone_key(), key);
        // A live change must move it.
        nl.apply(&NetlistEdit::RewireInput {
            gate: "f".into(),
            pin: 1,
            source: "b".into(),
        })
        .unwrap();
        assert_ne!(nl.combined_cone_key(), key, "live rewire kept the key");
    }

    #[test]
    fn cone_hashes_ignore_names_and_storage_order() {
        // Same structure, different gate names and creation order of the
        // independent cones.
        let mut left = Network::new("l");
        let a = left.add_input("a");
        let b = left.add_input("b");
        let g0 = left.add_gate(GateKind::And, &[a, b], "g0").unwrap();
        let g1 = left.add_gate(GateKind::Or, &[a, b], "g1").unwrap();
        left.mark_output(g0);
        left.mark_output(g1);
        let mut right = Network::new("r");
        let a = right.add_input("a");
        let b = right.add_input("b");
        let h1 = right.add_gate(GateKind::Or, &[a, b], "h1").unwrap();
        let h0 = right.add_gate(GateKind::And, &[a, b], "h0").unwrap();
        right.mark_output(h0);
        right.mark_output(h1);
        let left = EditableNetlist::from_network(&left);
        let right = EditableNetlist::from_network(&right);
        assert_eq!(left.output_cone_hashes(), right.output_cone_hashes());
        assert_eq!(left.combined_cone_key(), right.combined_cone_key());
    }

    #[test]
    fn materialize_is_deterministic_and_valid() {
        let mut nl = EditableNetlist::from_network(&fig2());
        nl.apply(&NetlistEdit::AddGate {
            name: "g9".into(),
            kind: GateKind::Xor,
            inputs: vec!["f".into(), "c".into()],
        })
        .unwrap();
        nl.apply(&NetlistEdit::AddOutput {
            target: "g9".into(),
        })
        .unwrap();
        let m1 = nl.materialize().unwrap();
        let m2 = nl.materialize().unwrap();
        m1.validate().unwrap();
        assert_eq!(m1.content_hash(), m2.content_hash());
        assert_eq!(m1.num_outputs(), 2);
    }

    #[test]
    fn repair_produces_a_valid_aligned_incumbent() {
        use crate::pipeline::synthesize;
        let base = fig2();
        let cold = synthesize(&base, &Config::default()).unwrap();
        let mut nl = EditableNetlist::from_network(&base);
        nl.apply(&NetlistEdit::RewireInput {
            gate: "f".into(),
            pin: 1,
            source: "b".into(),
        })
        .unwrap();
        let session = Session::new(SessionConfig::default());
        let budget = session.budget().clone();
        let (point, _) = solve_state(&nl, &session, &Config::default(), None, &budget).unwrap();
        let (repaired, matched) = repair_labeling(&point.graph, &cold.labeling, &point.graph);
        assert!(repaired.is_valid(&point.graph));
        assert!(repaired.is_aligned(&point.graph));
        assert!(matched <= point.graph.num_nodes());
        // Repairing a graph onto itself with its own labeling transfers
        // everything and stays optimal-shaped.
        let (self_repair, m) = repair_labeling(&point.graph, &point.result.labeling, &point.graph);
        assert_eq!(m, point.graph.num_nodes());
        assert!(self_repair.is_valid(&point.graph));
    }

    #[test]
    fn the_session_ladder_resolves_noops_reverts_and_live_edits() {
        let mut session = EditSession::new(&fig2(), EditSessionConfig::default()).unwrap();
        let s0 = session.result().stats.semiperimeter;
        assert!(s0 > 0);

        // Dead gate: key unchanged → Hit without a solve.
        let out = session
            .apply(&NetlistEdit::AddGate {
                name: "dead".into(),
                kind: GateKind::Nor,
                inputs: vec!["a".into(), "b".into()],
            })
            .unwrap();
        assert_eq!(out.resolution, EditResolution::Hit);
        assert_eq!(out.outputs_invalidated, 0);

        // Live rewire: must re-solve (any non-Hit rung is legal; the
        // equivalence fuzzer checks the answer, this checks the ladder).
        let out = session
            .apply(&NetlistEdit::RewireInput {
                gate: "f".into(),
                pin: 1,
                source: "dead".into(),
            })
            .unwrap();
        assert_ne!(out.resolution, EditResolution::Hit);
        assert_eq!(out.outputs_invalidated, 1);

        // Revert: the previous state is retained → Hit.
        let out = session
            .apply(&NetlistEdit::RewireInput {
                gate: "f".into(),
                pin: 1,
                source: "c".into(),
            })
            .unwrap();
        assert_eq!(out.resolution, EditResolution::Hit);
        assert_eq!(session.result().stats.semiperimeter, s0);

        let stats = session.stats();
        assert_eq!(stats.edits, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.resolved_incrementally() + stats.cold_solves, 3);

        // A refused edit changes nothing.
        let before = session.stats();
        assert!(session
            .apply(&NetlistEdit::RemoveGate { name: "a".into() })
            .is_err());
        assert_eq!(session.stats(), before);
        assert_eq!(session.result().stats.semiperimeter, s0);
    }
}

//! Defect-aware repair: make a synthesized design functionally valid on an
//! imperfect physical array described by a [`DefectMap`].
//!
//! The repair ladder, from cheapest to most drastic:
//!
//! 1. **Identity** — apply the defects where the design stands; many maps
//!    are entirely benign (stuck-off under unused cells, stuck-on under
//!    `VH` bridges).
//! 2. **Permutation** — permute wordlines and bitlines so every programmed
//!    `Literal` device lands on a healthy cell and every stuck-on cell
//!    lands on a benign crossing (an always-on `VH` bridge, or — in the
//!    relaxed pass — an `Off` don't-care whose bridge the verifier then
//!    has to bless). The permutation search is an alternating bipartite
//!    matching (Hopcroft–Karp from `flowc-graph`): match rows under the
//!    current column placement, then columns under the new row placement,
//!    and iterate.
//! 3. **Spares** — the same matching, but allowed to use the physical
//!    lines beyond the design's own size (the defect map's array may be
//!    larger than the design; the surplus lines are spare rows/columns).
//! 4. **Resynthesis** — ask the PR-1 supervisor for a *differently shaped*
//!    design (perturbed variable order, then the heuristic labeling) under
//!    a caller-supplied [`Budget`], and retry placement on it.
//!
//! Every candidate placement is accepted only after functional
//! verification of the defective array against the reference network, so a
//! returned [`RepairedDesign`] is *verified* valid under its defect map.
//! When the ladder runs dry the result is a typed
//! [`RepairError::Irreparable`] carrying the full attempt log — never a
//! panic.

use std::fmt;

use flowc_budget::Budget;
use flowc_graph::hopcroft_karp;
use flowc_logic::Network;
use flowc_xbar::fault::{apply_defects, CellState, DefectMap};
use flowc_xbar::verify::verify_functional;
use flowc_xbar::{Crossbar, DeviceAssignment, XbarError};

use crate::pipeline::Config;
use crate::session::{synthesize_in_budgeted, Session};

/// Tuning knobs for the repair ladder.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Assignments checked when verifying a candidate placement
    /// (exhaustive below 2^16 regardless; see
    /// [`flowc_xbar::verify::verify_functional`]).
    pub verify_samples: usize,
    /// Alternating row/column matching rounds per permutation pass.
    pub matching_rounds: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            verify_samples: 256,
            matching_rounds: 3,
        }
    }
}

/// One rung of the repair ladder, as recorded in the attempt log.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepairAction {
    /// Defects applied to the design in place, no permutation.
    Identity,
    /// Permutation search. `strict` forbids stuck-on cells under `Off`
    /// crossings; `spares` allows physical lines beyond the design size.
    Permute {
        /// Whether stuck-on-under-`Off` placements were forbidden.
        strict: bool,
        /// Whether spare physical lines were in play.
        spares: bool,
    },
    /// A fresh design was synthesized and placement retried on it.
    Resynthesize {
        /// Which perturbation produced the candidate design.
        variant: String,
    },
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAction::Identity => write!(f, "identity placement"),
            RepairAction::Permute { strict, spares } => write!(
                f,
                "{} permutation{}",
                if *strict { "strict" } else { "relaxed" },
                if *spares { " with spares" } else { "" }
            ),
            RepairAction::Resynthesize { variant } => write!(f, "resynthesis ({variant})"),
        }
    }
}

/// One attempted rung with its outcome.
#[derive(Debug, Clone)]
pub struct RepairAttempt {
    /// What was tried.
    pub action: RepairAction,
    /// Whether it produced a verified-valid placement.
    pub success: bool,
    /// Human-readable outcome (mismatch counts, matching deficits, …).
    pub detail: String,
}

/// How the shipped placement was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// The defect map was benign as placed; nothing moved.
    Benign,
    /// A row/column permutation within the design's own footprint.
    Permutation,
    /// The permutation uses spare physical lines beyond the design size.
    Spares,
    /// A resynthesized design was placed instead of the original.
    Resynthesis,
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepairStrategy::Benign => "benign",
            RepairStrategy::Permutation => "permutation",
            RepairStrategy::Spares => "spares",
            RepairStrategy::Resynthesis => "resynthesis",
        })
    }
}

/// Structured provenance of a successful repair.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The rung that produced the shipped placement.
    pub strategy: RepairStrategy,
    /// Every rung tried, in order.
    pub attempts: Vec<RepairAttempt>,
    /// Faults in the defect map.
    pub defects: usize,
    /// Physical array rows (the defect map's).
    pub physical_rows: usize,
    /// Physical array columns.
    pub physical_cols: usize,
    /// Logical-row → physical-wordline assignment of the shipped design.
    pub row_perm: Vec<usize>,
    /// Logical-column → physical-bitline assignment.
    pub col_perm: Vec<usize>,
    /// Assignments the accepting verification checked.
    pub verified_assignments: usize,
}

impl RepairReport {
    /// One-line human-readable summary (for logs and the CLI).
    pub fn summary(&self) -> String {
        format!(
            "repaired via {} after {} attempt(s); {} defect(s) on a {}x{} array; verified on {} assignments",
            self.strategy,
            self.attempts.len(),
            self.defects,
            self.physical_rows,
            self.physical_cols,
            self.verified_assignments
        )
    }
}

/// A design placed on the physical array and verified under its defects.
#[derive(Debug, Clone)]
pub struct RepairedDesign {
    /// The placed design: physical-array-sized, ports rebound. Programming
    /// this onto the defective array computes the reference function.
    pub crossbar: Crossbar,
    /// Provenance of the repair.
    pub report: RepairReport,
}

/// Errors from the repair ladder. Irreparability is a *result*, reported
/// with the full attempt log — callers decide whether it is fatal.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum RepairError {
    /// No rung produced a placement that verifies under the defect map.
    Irreparable {
        /// Every rung tried, in order, with outcomes.
        attempts: Vec<RepairAttempt>,
        /// Faults in the defect map.
        defects: usize,
    },
    /// The physical array is smaller than the design.
    MapTooSmall {
        /// Design size `(rows, cols)`.
        design: (usize, usize),
        /// Physical array size `(rows, cols)`.
        map: (usize, usize),
    },
    /// An evaluation/placement error from the crossbar layer (indicates a
    /// bug, not a defect condition).
    Xbar(XbarError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Irreparable { attempts, defects } => {
                write!(
                    f,
                    "irreparable under {defects} defect(s); attempts: {}",
                    attempts
                        .iter()
                        .map(|a| format!("{} ({})", a.action, a.detail))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            RepairError::MapTooSmall { design, map } => write!(
                f,
                "defect map describes a {}x{} array, smaller than the {}x{} design",
                map.0, map.1, design.0, design.1
            ),
            RepairError::Xbar(e) => write!(f, "crossbar error during repair: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<XbarError> for RepairError {
    fn from(e: XbarError) -> Self {
        RepairError::Xbar(e)
    }
}

/// Whether a design cell may be placed on a physical cell in `state`.
/// `strict` additionally forbids the one hazardous pairing that might
/// still be logically masked: a stuck-on cell under an `Off` crossing
/// (which bridges two wires the design meant to keep apart).
fn cell_compatible(a: DeviceAssignment, state: CellState, strict: bool) -> bool {
    match state {
        CellState::Healthy => true,
        CellState::ForcedOff => a == DeviceAssignment::Off,
        CellState::ForcedOn => a == DeviceAssignment::On || (!strict && a == DeviceAssignment::Off),
    }
}

/// Completes a partial matching into a full injective assignment by handing
/// unmatched logical lines the lowest-index free physical lines.
fn complete_assignment(pair_left: &[usize], bound: usize) -> Vec<usize> {
    let mut used = vec![false; bound];
    for &p in pair_left {
        if p != usize::MAX {
            used[p] = true;
        }
    }
    let mut free = (0..bound).filter(|&p| !used[p]);
    pair_left
        .iter()
        .map(|&p| {
            if p != usize::MAX {
                p
            } else {
                free.next().expect("bound >= pair_left.len() by contract")
            }
        })
        .collect()
}

/// Alternating bipartite-matching search for a defect-avoiding placement.
/// Returns `(row_perm, col_perm, fully_matched)`; even a partial result is
/// returned (its residual faults may verify benign).
fn permutation_search(
    design: &Crossbar,
    defects: &DefectMap,
    phys_rows: usize,
    phys_cols: usize,
    strict: bool,
    rounds: usize,
) -> (Vec<usize>, Vec<usize>, bool) {
    let (rows, cols) = (design.rows(), design.cols());
    let cell = |r: usize, c: usize| design.get(r, c).expect("in range");
    let mut col_perm: Vec<usize> = (0..cols).collect();
    let mut row_perm: Vec<usize> = (0..rows).collect();
    let mut perfect = false;
    for _ in 0..rounds.max(1) {
        // Rows against the current column placement.
        let row_adj: Vec<Vec<usize>> = (0..rows)
            .map(|lr| {
                (0..phys_rows)
                    .filter(|&pr| {
                        (0..cols).all(|lc| {
                            cell_compatible(
                                cell(lr, lc),
                                defects.cell_state(pr, col_perm[lc]),
                                strict,
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        let rm = hopcroft_karp(&row_adj, phys_rows);
        row_perm = complete_assignment(&rm.pair_left, phys_rows);
        // Columns against the new row placement.
        let col_adj: Vec<Vec<usize>> = (0..cols)
            .map(|lc| {
                (0..phys_cols)
                    .filter(|&pc| {
                        (0..rows).all(|lr| {
                            cell_compatible(
                                cell(lr, lc),
                                defects.cell_state(row_perm[lr], pc),
                                strict,
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        let cm = hopcroft_karp(&col_adj, phys_cols);
        col_perm = complete_assignment(&cm.pair_left, phys_cols);
        if rm.size == rows && cm.size == cols {
            perfect = true;
            break;
        }
    }
    (row_perm, col_perm, perfect)
}

/// Places the design by the given permutation, applies the defects, and
/// verifies against the reference. `Ok(Some(placed))` means the placement
/// is functionally valid on the defective array.
fn try_placement(
    network: &Network,
    design: &Crossbar,
    defects: &DefectMap,
    row_perm: &[usize],
    col_perm: &[usize],
    samples: usize,
) -> Result<(Option<Crossbar>, String, usize), RepairError> {
    let placed = design.place(row_perm, col_perm, defects.rows(), defects.cols())?;
    let faulty = apply_defects(&placed, defects)?;
    let report = verify_functional(&faulty, network, samples)?;
    if report.mismatches.is_empty() {
        Ok((
            Some(placed),
            format!("verified on {} assignments", report.checked),
            report.checked,
        ))
    } else {
        Ok((
            None,
            format!(
                "{} mismatch(es) in {} assignments",
                report.mismatches.len(),
                report.checked
            ),
            report.checked,
        ))
    }
}

/// Repairs by placement only (identity → permutation → spares): finds a
/// wordline/bitline permutation of `design` onto the defect map's physical
/// array under which the defective array still computes `network`.
///
/// # Errors
///
/// [`RepairError::MapTooSmall`] when the design does not fit the physical
/// array, [`RepairError::Irreparable`] (with the attempt log) when no
/// placement verifies.
pub fn repair_placement(
    network: &Network,
    design: &Crossbar,
    defects: &DefectMap,
    cfg: &RepairConfig,
) -> Result<RepairedDesign, RepairError> {
    let (rows, cols) = (design.rows(), design.cols());
    if defects.rows() < rows || defects.cols() < cols {
        return Err(RepairError::MapTooSmall {
            design: (rows, cols),
            map: (defects.rows(), defects.cols()),
        });
    }
    let has_spares = defects.rows() > rows || defects.cols() > cols;
    let mut attempts: Vec<RepairAttempt> = Vec::new();
    let ship = |action: RepairAction,
                strategy: RepairStrategy,
                placed: Crossbar,
                row_perm: Vec<usize>,
                col_perm: Vec<usize>,
                detail: String,
                checked: usize,
                attempts: &mut Vec<RepairAttempt>| {
        attempts.push(RepairAttempt {
            action,
            success: true,
            detail,
        });
        RepairedDesign {
            crossbar: placed,
            report: RepairReport {
                strategy,
                attempts: attempts.clone(),
                defects: defects.len(),
                physical_rows: defects.rows(),
                physical_cols: defects.cols(),
                row_perm,
                col_perm,
                verified_assignments: checked,
            },
        }
    };

    // Rung 1: identity placement — the defects may all be benign.
    let id_rows: Vec<usize> = (0..rows).collect();
    let id_cols: Vec<usize> = (0..cols).collect();
    let (placed, detail, checked) = try_placement(
        network,
        design,
        defects,
        &id_rows,
        &id_cols,
        cfg.verify_samples,
    )?;
    if let Some(placed) = placed {
        return Ok(ship(
            RepairAction::Identity,
            RepairStrategy::Benign,
            placed,
            id_rows,
            id_cols,
            detail,
            checked,
            &mut attempts,
        ));
    }
    attempts.push(RepairAttempt {
        action: RepairAction::Identity,
        success: false,
        detail,
    });

    // Rungs 2–3: permutation within the design footprint, then with
    // spares; strict compatibility before the relaxed one at each scope.
    let mut scopes = vec![(rows, cols, false)];
    if has_spares {
        scopes.push((defects.rows(), defects.cols(), true));
    }
    for &(pr, pc, spares) in &scopes {
        for strict in [true, false] {
            let action = RepairAction::Permute { strict, spares };
            let (row_perm, col_perm, matched) =
                permutation_search(design, defects, pr, pc, strict, cfg.matching_rounds);
            let (placed, detail, checked) = try_placement(
                network,
                design,
                defects,
                &row_perm,
                &col_perm,
                cfg.verify_samples,
            )?;
            let matched_note = if matched { "" } else { " (partial matching)" };
            if let Some(placed) = placed {
                let strategy = if spares {
                    RepairStrategy::Spares
                } else {
                    RepairStrategy::Permutation
                };
                return Ok(ship(
                    action,
                    strategy,
                    placed,
                    row_perm,
                    col_perm,
                    format!("{detail}{matched_note}"),
                    checked,
                    &mut attempts,
                ));
            }
            attempts.push(RepairAttempt {
                action,
                success: false,
                detail: format!("{detail}{matched_note}"),
            });
        }
    }
    Err(RepairError::Irreparable {
        attempts,
        defects: defects.len(),
    })
}

/// The perturbed synthesis configurations the resynthesis rung walks, in
/// order: a reversed then rotated BDD variable order (same strategy), and
/// finally the heuristic labeling (a differently shaped, `VH`-heavier
/// design with more placement freedom).
fn resynthesis_variants(network: &Network, config: &Config) -> Vec<(String, Config)> {
    let k = network.num_inputs();
    let mut variants = Vec::new();
    if k > 1 {
        variants.push((
            "reversed variable order".to_string(),
            Config {
                var_order: Some((0..k).rev().collect()),
                ..config.clone()
            },
        ));
        variants.push((
            "rotated variable order".to_string(),
            Config {
                var_order: Some((0..k).map(|i| (i + 1) % k).collect()),
                ..config.clone()
            },
        ));
    }
    variants.push((
        "heuristic labeling".to_string(),
        Config {
            strategy: crate::pipeline::VhStrategy::Heuristic { gamma: 0.5 },
            ..config.clone()
        },
    ));
    variants
}

/// The full repair ladder: placement repair of `design`, then
/// budget-bounded resynthesis of alternative designs (through the PR-1
/// supervisor, so resynthesis itself degrades gracefully rather than
/// failing) with placement repair retried on each.
///
/// # Errors
///
/// As [`repair_placement`]; [`RepairError::Irreparable`] carries the
/// attempt log across *all* candidate designs.
pub fn repair_with_resynthesis(
    network: &Network,
    config: &Config,
    design: &Crossbar,
    defects: &DefectMap,
    cfg: &RepairConfig,
    budget: &Budget,
) -> Result<RepairedDesign, RepairError> {
    let session = Session::with_budget(budget.clone());
    repair_with_resynthesis_in(&session, network, config, design, defects, cfg, budget)
}

/// [`repair_with_resynthesis`] inside an existing [`Session`]: candidate
/// synthesis is bounded by `budget` (typically a fresh per-trial deadline)
/// while the variants that keep the original variable order — the
/// heuristic labeling — reuse the session's cached BDD and graph
/// artifacts instead of rebuilding them every trial.
///
/// # Errors
///
/// See [`repair_with_resynthesis`].
#[allow(clippy::too_many_arguments)]
pub fn repair_with_resynthesis_in(
    session: &Session,
    network: &Network,
    config: &Config,
    design: &Crossbar,
    defects: &DefectMap,
    cfg: &RepairConfig,
    budget: &Budget,
) -> Result<RepairedDesign, RepairError> {
    let mut attempts = match repair_placement(network, design, defects, cfg) {
        Ok(done) => return Ok(done),
        Err(RepairError::Irreparable { attempts, .. }) => attempts,
        Err(other) => return Err(other),
    };
    for (variant, alt_config) in resynthesis_variants(network, config) {
        let action = RepairAction::Resynthesize {
            variant: variant.clone(),
        };
        let fresh = match synthesize_in_budgeted(session, network, &alt_config, budget) {
            Ok(r) => r,
            Err(e) => {
                attempts.push(RepairAttempt {
                    action,
                    success: false,
                    detail: format!("synthesis failed: {e}"),
                });
                continue;
            }
        };
        if fresh.crossbar.rows() > defects.rows() || fresh.crossbar.cols() > defects.cols() {
            attempts.push(RepairAttempt {
                action,
                success: false,
                detail: format!(
                    "candidate is {}x{}, larger than the {}x{} array",
                    fresh.crossbar.rows(),
                    fresh.crossbar.cols(),
                    defects.rows(),
                    defects.cols()
                ),
            });
            continue;
        }
        match repair_placement(network, &fresh.crossbar, defects, cfg) {
            Ok(mut done) => {
                attempts.push(RepairAttempt {
                    action,
                    success: true,
                    detail: format!(
                        "candidate {}x{} placed ({})",
                        fresh.crossbar.rows(),
                        fresh.crossbar.cols(),
                        done.report.summary()
                    ),
                });
                done.report.strategy = RepairStrategy::Resynthesis;
                done.report.attempts = attempts;
                return Ok(done);
            }
            Err(RepairError::Irreparable {
                attempts: sub_attempts,
                ..
            }) => {
                attempts.push(RepairAttempt {
                    action,
                    success: false,
                    detail: format!(
                        "candidate placement failed after {} attempt(s)",
                        sub_attempts.len()
                    ),
                });
            }
            Err(other) => return Err(other),
        }
    }
    Err(RepairError::Irreparable {
        attempts,
        defects: defects.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::synthesize;
    use flowc_logic::{GateKind, Network};
    use flowc_xbar::fault::{inject, DefectRates, Fault};

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    fn fig2_design() -> (Network, Crossbar) {
        let n = fig2_network();
        let r = synthesize(&n, &Config::default()).unwrap();
        (n, r.crossbar)
    }

    /// A repaired design must verify clean with the defects applied.
    fn assert_repaired_valid(n: &Network, repaired: &RepairedDesign, defects: &DefectMap) {
        let faulty = apply_defects(&repaired.crossbar, defects).unwrap();
        let report = verify_functional(&faulty, n, 1024).unwrap();
        assert!(
            report.mismatches.is_empty(),
            "repaired design mismatches: {:?} ({})",
            report.mismatches,
            repaired.report.summary()
        );
    }

    #[test]
    fn empty_map_is_benign() {
        let (n, x) = fig2_design();
        let defects = DefectMap::new(x.rows(), x.cols());
        let repaired = repair_placement(&n, &x, &defects, &RepairConfig::default()).unwrap();
        assert_eq!(repaired.report.strategy, RepairStrategy::Benign);
        assert_repaired_valid(&n, &repaired, &defects);
    }

    #[test]
    fn functional_stuck_off_is_repaired_by_permutation() {
        let (n, x) = fig2_design();
        // The fig2 design is fully dense (every cell programmed), so a
        // stuck-off cell under a literal is provably irreparable inside the
        // same footprint — the ladder must say so with a typed error...
        let (lr, lc, _) = x
            .programmed_devices()
            .find(|(_, _, a)| a.is_literal())
            .expect("design has literals");
        let mut tight = DefectMap::new(x.rows(), x.cols());
        tight.add(Fault::StuckOff { row: lr, col: lc }).unwrap();
        match repair_placement(&n, &x, &tight, &RepairConfig::default()) {
            Err(RepairError::Irreparable { attempts, .. }) => {
                assert!(attempts.len() >= 2, "identity tried before permutation");
                assert!(!attempts[0].success);
            }
            other => panic!("dense footprint must be irreparable, got {other:?}"),
        }
        // ...while one spare column gives the permutation/spares rungs room
        // to steer the literal off the dead cell.
        let mut defects = DefectMap::new(x.rows(), x.cols() + 1);
        defects.add(Fault::StuckOff { row: lr, col: lc }).unwrap();
        let repaired = repair_placement(&n, &x, &defects, &RepairConfig::default()).unwrap();
        assert_ne!(repaired.report.strategy, RepairStrategy::Benign);
        assert!(repaired.report.attempts.len() >= 2, "identity tried first");
        assert!(!repaired.report.attempts[0].success);
        assert_repaired_valid(&n, &repaired, &defects);
    }

    #[test]
    fn broken_row_is_repaired_with_a_spare() {
        let (n, x) = fig2_design();
        // Physical array has one spare row; every cell of each non-spare
        // physical row is stuck off in turn — only a placement that moves
        // the victim row onto the spare can work.
        let mut defects = DefectMap::new(x.rows() + 1, x.cols());
        for c in 0..x.cols() {
            defects.add(Fault::StuckOff { row: 0, col: c }).unwrap();
        }
        let repaired = repair_placement(&n, &x, &defects, &RepairConfig::default()).unwrap();
        assert_repaired_valid(&n, &repaired, &defects);
        assert!(
            !repaired.report.row_perm.contains(&0)
                || repaired.report.strategy == RepairStrategy::Benign,
            "no load-bearing row may sit on the dead physical row 0: {:?}",
            repaired.report.row_perm
        );
    }

    #[test]
    fn saturated_array_is_typed_irreparable() {
        let (n, x) = fig2_design();
        let mut defects = DefectMap::new(x.rows(), x.cols());
        for r in 0..x.rows() {
            defects.add(Fault::OpenWordline { row: r }).unwrap();
        }
        let err = repair_placement(&n, &x, &defects, &RepairConfig::default()).unwrap_err();
        match err {
            RepairError::Irreparable { attempts, defects } => {
                assert_eq!(defects, x.rows());
                assert!(attempts.iter().all(|a| !a.success));
                assert!(attempts.len() >= 3, "identity + strict + relaxed");
            }
            other => panic!("expected Irreparable, got {other}"),
        }
    }

    #[test]
    fn map_smaller_than_design_is_rejected() {
        let (n, x) = fig2_design();
        let defects = DefectMap::new(x.rows() - 1, x.cols());
        assert!(matches!(
            repair_placement(&n, &x, &defects, &RepairConfig::default()),
            Err(RepairError::MapTooSmall { .. })
        ));
    }

    #[test]
    fn repair_is_deterministic() {
        let (n, x) = fig2_design();
        let defects = inject(x.rows(), x.cols(), &DefectRates::uniform(0.1), 99);
        let a = repair_placement(&n, &x, &defects, &RepairConfig::default());
        let b = repair_placement(&n, &x, &defects, &RepairConfig::default());
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.report.row_perm, rb.report.row_perm);
                assert_eq!(ra.report.col_perm, rb.report.col_perm);
                assert_eq!(ra.report.strategy, rb.report.strategy);
            }
            (Err(RepairError::Irreparable { .. }), Err(RepairError::Irreparable { .. })) => {}
            (a, b) => panic!("nondeterministic outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn resynthesis_ladder_survives_repairable_and_rejects_hopeless() {
        let (n, x) = fig2_design();
        let cfg = Config::default();
        // Repairable: a single stuck-off under a literal.
        let (lr, lc, _) = x
            .programmed_devices()
            .find(|(_, _, a)| a.is_literal())
            .unwrap();
        let mut defects = DefectMap::new(x.rows() + 2, x.cols() + 2);
        defects.add(Fault::StuckOff { row: lr, col: lc }).unwrap();
        let repaired = repair_with_resynthesis(
            &n,
            &cfg,
            &x,
            &defects,
            &RepairConfig::default(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_repaired_valid(&n, &repaired, &defects);
        // Hopeless: every wordline open. Resynthesis cannot help; the
        // error is typed and the attempt log names the resynthesis rungs.
        let mut dead = DefectMap::new(x.rows() + 2, x.cols() + 2);
        for r in 0..dead.rows() {
            dead.add(Fault::OpenWordline { row: r }).unwrap();
        }
        let err = repair_with_resynthesis(
            &n,
            &cfg,
            &x,
            &dead,
            &RepairConfig::default(),
            &Budget::unlimited(),
        )
        .unwrap_err();
        match err {
            RepairError::Irreparable { attempts, .. } => {
                assert!(attempts
                    .iter()
                    .any(|a| matches!(a.action, RepairAction::Resynthesize { .. })));
            }
            other => panic!("expected Irreparable, got {other}"),
        }
    }

    #[test]
    fn repaired_multi_output_benchmark_verifies() {
        let b = flowc_logic::bench_suite::by_name("ctrl").unwrap();
        let n = b.network().unwrap();
        let design = synthesize(&n, &Config::default()).unwrap().crossbar;
        let defects = inject(
            design.rows() + 2,
            design.cols() + 2,
            &DefectRates::uniform(0.02),
            7,
        );
        match repair_with_resynthesis(
            &n,
            &Config::default(),
            &design,
            &defects,
            &RepairConfig::default(),
            &Budget::unlimited(),
        ) {
            Ok(repaired) => assert_repaired_valid(&n, &repaired, &defects),
            Err(RepairError::Irreparable { .. }) => {
                // Acceptable at this density; the property under test is
                // "verified or typed", not universal repairability.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}

//! The shared synthesis `Session`: budgets, seeded randomness, per-stage
//! statistics, and a content-addressed artifact cache for the staged
//! COMPACT pipeline.
//!
//! The paper's flow (Figure 3: network → shared BDD → undirected graph →
//! VH-labeling → crossbar) used to run as one monolithic `synthesize`
//! call, so every caller that varied only a late stage — a γ sweep, a
//! strategy cross-check, repair's budget-bounded resynthesis — rebuilt the
//! BDD and graph from scratch. A [`Session`] separates the stages behind
//! explicit, cacheable artifacts:
//!
//! - **BDD artifacts** ([`flowc_bdd::NetworkBdds`]) are keyed by a stable
//!   content hash of the network structure plus the variable order.
//! - **Graph artifacts** ([`crate::BddGraph`]) are keyed by the BDD key.
//!
//! Both live behind [`Arc`] handles, so a cache hit is a refcount bump —
//! no rebuild, no deep clone. Each stage execution is recorded in a
//! [`StageTrace`] (wall-clock, item counts, cache hit/miss), which tests
//! and the bench harness assert on: a 5-point γ sweep through one session
//! performs exactly **one** BDD build and one graph extraction.
//!
//! [`synthesize_batch`] runs many tasks (different networks, or γ /
//! strategy points of one network) across `std::thread::scope` workers.
//! Results come back in task order regardless of scheduling, and each
//! task may be given a budget slice ([`BatchConfig::per_task_budget`])
//! carved from the session budget with [`Budget::capped`].
//!
//! **Determinism contract.** Every stage is a deterministic function of
//! its input artifact and configuration (no `RandomState`, seeded RNG
//! streams only), so with solver time limits generous enough for every
//! point to close — or with the deterministic heuristic strategies — a
//! batch produces identical results at any thread count, in task order.
//! Under tight wall-clock budgets the anytime solvers may stop at
//! different incumbents run-to-run; that nondeterminism comes from the
//! clock, not from the session or the batch machinery.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use flowc_bdd::NetworkBdds;
use flowc_budget::Budget;
use flowc_graph::OctResult;
use flowc_logic::Network;
use flowc_report::Json;

use crate::labeling::{Labeling, VhLabel};
use crate::pass::{BddBuildPass, GraphExtractPass, LadderPass, NormalizePass, Pass, VerifyPass};
use crate::pipeline::{CompactError, CompactResult, Config, VhStrategy};
use crate::preprocess::BddGraph;
use crate::supervisor::{DegradationReport, LadderOutcome, Rung};

/// Content-addressed identity of a cached artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey(pub u64);

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a combination of key material (stage tags + upstream hashes).
fn combine(parts: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &x in parts {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01B3);
        }
    }
    h
}

/// Stage tags folded into artifact keys so different stages of the same
/// upstream content never collide.
const TAG_BDD: u64 = 0xB00D_0001;
const TAG_GRAPH: u64 = 0x6AA9_0002;
const TAG_LABEL: u64 = 0x1ABE_0003;

/// The key of the BDD artifact for `network` under `var_order`.
pub fn bdd_key(network: &Network, var_order: Option<&[usize]>) -> ArtifactKey {
    let mut parts = vec![TAG_BDD, network.content_hash()];
    match var_order {
        Some(order) => {
            parts.push(1 + order.len() as u64);
            parts.extend(order.iter().map(|&i| i as u64));
        }
        None => parts.push(0),
    }
    ArtifactKey(combine(&parts))
}

/// The key of the graph artifact extracted from the BDD artifact `bdd`.
pub fn graph_key(bdd: ArtifactKey) -> ArtifactKey {
    ArtifactKey(combine(&[TAG_GRAPH, bdd.0]))
}

/// The key of the labeling artifact for the graph artifact `graph` under
/// `config`'s strategy (γ bits, alignment, strategy shape). The solver
/// time limit is deliberately **not** part of the key: a labeling is only
/// stored when its content is budget-independent — proven optimal, or
/// produced by a deterministic heuristic strategy — so any budget that
/// reaches the cache would have computed the same artifact.
pub fn label_key(graph: ArtifactKey, config: &Config) -> ArtifactKey {
    let mut parts = vec![TAG_LABEL, graph.0, u64::from(config.align)];
    match &config.strategy {
        VhStrategy::Weighted {
            gamma,
            exact_node_limit,
            ..
        } => {
            parts.push(1);
            parts.push(gamma.to_bits());
            parts.push(*exact_node_limit as u64);
        }
        VhStrategy::MinSemiperimeter { .. } => parts.push(2),
        VhStrategy::Heuristic { gamma } => {
            parts.push(3);
            parts.push(gamma.to_bits());
        }
        VhStrategy::Staircase => parts.push(4),
    }
    ArtifactKey(combine(&parts))
}

/// The pipeline stages a session traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StageKind {
    /// Netlist validation and artifact-key derivation.
    Normalize,
    /// (Shared) BDD construction.
    BddBuild,
    /// BDD → undirected graph extraction.
    GraphExtract,
    /// VH-labeling (the supervised degradation ladder).
    VhLabel,
    /// Crossbar mapping of the winning labeling.
    Map,
    /// Functional verification of the mapped design.
    Verify,
}

impl StageKind {
    /// Stable lowercase stage name (used in traces and JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Normalize => "normalize",
            StageKind::BddBuild => "bdd-build",
            StageKind::GraphExtract => "graph-extract",
            StageKind::VhLabel => "vh-label",
            StageKind::Map => "map",
            StageKind::Verify => "verify",
        }
    }

    /// Every stage kind, in pipeline order.
    pub fn all() -> [StageKind; 6] {
        [
            StageKind::Normalize,
            StageKind::BddBuild,
            StageKind::GraphExtract,
            StageKind::VhLabel,
            StageKind::Map,
            StageKind::Verify,
        ]
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a stage execution was served from the artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The artifact was found in the cache; no work was done.
    Hit,
    /// The artifact was computed and inserted into the cache.
    Miss,
    /// The stage's output is not cacheable (labeling, mapping, verify).
    Uncached,
}

/// Branch & bound solver statistics attached to a [`StageKind::VhLabel`]
/// record (the per-γ-point figures the `--gamma-sweep` report and the
/// serve `/metrics` endpoint surface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Branch & bound nodes explored (0 for non-MIP rungs and cache hits).
    pub nodes: u64,
    /// Proven relative optimality gap at termination.
    pub gap: f64,
    /// Warm-start outcome: `None` when no warm start was offered,
    /// `Some(accepted)` otherwise.
    pub warm_start: Option<bool>,
}

/// One stage execution recorded by a session.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Which stage ran.
    pub kind: StageKind,
    /// Wall-clock time spent (≈0 for cache hits).
    pub wall: Duration,
    /// Cache interaction of this execution.
    pub cache: CacheOutcome,
    /// Stage-specific size figure: gates normalized, BDD nodes built,
    /// graph nodes extracted/labeled, devices mapped, or assignments
    /// verified.
    pub items: usize,
    /// The artifact key involved, when the stage is cacheable.
    pub key: Option<ArtifactKey>,
    /// Solver statistics, for [`StageKind::VhLabel`] records.
    pub solve: Option<SolveStats>,
}

/// The per-stage execution log of a session, with counter views.
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    /// Every stage execution, in completion order.
    pub records: Vec<StageRecord>,
}

impl StageTrace {
    /// Number of times `kind` executed (cache hits included).
    pub fn runs(&self, kind: StageKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Number of times `kind` actually computed its output (cache misses
    /// plus uncached executions) — the figure the γ-sweep reuse tests
    /// assert equals 1 for [`StageKind::BddBuild`].
    pub fn builds(&self, kind: StageKind) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == kind && r.cache != CacheOutcome::Hit)
            .count()
    }

    /// Number of cache hits for `kind`.
    pub fn hits(&self, kind: StageKind) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == kind && r.cache == CacheOutcome::Hit)
            .count()
    }

    /// Total wall-clock time spent in `kind`.
    pub fn total_wall(&self, kind: StageKind) -> Duration {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.wall)
            .sum()
    }

    /// One line per stage kind with runs, builds, hits, and wall time —
    /// for logs and the CLI's `--gamma-sweep` summary.
    pub fn summary(&self) -> String {
        StageKind::all()
            .iter()
            .filter(|&&k| self.runs(k) > 0)
            .map(|&k| {
                format!(
                    "{}: {} run(s), {} build(s), {} hit(s), {:.3}s",
                    k,
                    self.runs(k),
                    self.builds(k),
                    self.hits(k),
                    self.total_wall(k).as_secs_f64()
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Aggregate cache statistics of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits across all cacheable stages.
    pub hits: usize,
    /// Cache misses (artifact computed and stored).
    pub misses: usize,
    /// Artifacts currently cached.
    pub entries: usize,
    /// Artifacts evicted to respect the capacity bound.
    pub evicted: usize,
    /// Labelings served from the on-disk cache (checksum verified).
    pub disk_hits: usize,
    /// On-disk entries rejected by checksum/format verification and
    /// treated as misses (the corrupt file is deleted).
    pub disk_corrupt: usize,
}

/// Session construction parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The shared resource budget for every stage run in the session.
    pub budget: Budget,
    /// Seed for the session's deterministic RNG stream.
    pub seed: u64,
    /// Maximum cached artifacts per stage kind; oldest-inserted entries
    /// are evicted first, so long-running consumers (the conform fuzzer
    /// pushes thousands of distinct networks through one session) stay
    /// bounded in memory.
    pub cache_capacity: usize,
    /// When set, every synthesized design is functionally verified on
    /// this many assignments as a traced [`StageKind::Verify`] stage; a
    /// mismatch is a [`CompactError::Synthesis`] (an internal bug, never
    /// a budget condition).
    pub verify_samples: Option<usize>,
    /// Chain branch & bound warm starts across solves over the same graph
    /// (a γ sweep seeds each point with the previous incumbent, re-costed
    /// under the new γ). Off by default: a warm start can pick a different
    /// *tied* optimum, so sessions that must be bit-deterministic across
    /// execution orders (batch vs. sequential) leave it disabled. Sweep
    /// drivers that run points sequentially opt in.
    pub warm_labels: bool,
    /// Directory for a write-through on-disk labeling cache. Cacheable
    /// labelings (proven-optimal or deterministic — the same ones the
    /// in-memory cache stores) are persisted as CRC32-enveloped JSON and
    /// probed on a memory miss, so they survive process restarts. A
    /// corrupt or torn file fails checksum verification and is treated
    /// as a miss (and deleted), never served.
    pub disk_cache: Option<PathBuf>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            budget: Budget::unlimited(),
            seed: 0xC0AC_7000_5EED,
            cache_capacity: 64,
            verify_samples: None,
            warm_labels: false,
            disk_cache: None,
        }
    }
}

/// A bounded insertion-order (FIFO) artifact cache.
#[derive(Debug)]
struct ArtifactCache<T> {
    map: HashMap<ArtifactKey, T>,
    order: Vec<ArtifactKey>,
    capacity: usize,
    evicted: usize,
}

impl<T: Clone> ArtifactCache<T> {
    fn new(capacity: usize) -> Self {
        ArtifactCache {
            map: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    fn get(&self, key: ArtifactKey) -> Option<T> {
        self.map.get(&key).cloned()
    }

    fn insert(&mut self, key: ArtifactKey, value: T) {
        if self.map.insert(key, value).is_none() {
            self.order.push(key);
            if self.order.len() > self.capacity {
                let oldest = self.order.remove(0);
                self.map.remove(&oldest);
                self.evicted += 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// A cached VH-labeling outcome. Stored only when budget-independent:
/// proven optimal for its objective, or produced by a deterministic
/// heuristic strategy (see [`label_key`]).
#[derive(Debug, Clone)]
pub struct LabelArtifact {
    /// The labeling (alignment already enforced by the ladder).
    pub labeling: Labeling,
    /// Whether it was proven optimal for its objective.
    pub optimal: bool,
    /// Relative optimality gap at the original solve's termination.
    pub relative_gap: f64,
    /// The ladder rung that originally produced it.
    pub rung: Rung,
}

/// File the labeling artifact `key` persists to under the disk cache root.
fn label_path(dir: &Path, key: ArtifactKey) -> PathBuf {
    dir.join(format!("label-{key}.json"))
}

/// Serializes a [`LabelArtifact`] for the on-disk cache. Labels pack into
/// one character per node: `V`, `H`, or `B` (both).
fn label_to_json(artifact: &LabelArtifact) -> Json {
    let labels: String = artifact
        .labeling
        .labels()
        .iter()
        .map(|l| match l {
            VhLabel::V => 'V',
            VhLabel::H => 'H',
            VhLabel::Vh => 'B',
        })
        .collect();
    Json::Obj(vec![
        ("labels".into(), Json::str(labels)),
        ("optimal".into(), Json::Bool(artifact.optimal)),
        ("relative_gap".into(), Json::Num(artifact.relative_gap)),
        ("rung".into(), Json::str(artifact.rung.name())),
    ])
}

/// Inverse of [`label_to_json`]; `None` on any shape mismatch (unknown
/// label character or rung name, missing or mistyped field), which the
/// caller treats exactly like a checksum failure.
fn label_from_json(payload: &Json) -> Option<LabelArtifact> {
    let text = payload.get("labels")?.as_str()?;
    let mut labels = Vec::with_capacity(text.len());
    for c in text.chars() {
        labels.push(match c {
            'V' => VhLabel::V,
            'H' => VhLabel::H,
            'B' => VhLabel::Vh,
            _ => return None,
        });
    }
    Some(LabelArtifact {
        labeling: Labeling::new(labels),
        optimal: payload.get("optimal")?.as_bool()?,
        relative_gap: payload.get("relative_gap")?.as_f64()?,
        rung: Rung::parse(payload.get("rung")?.as_str()?)?,
    })
}

/// Mutable session state behind one lock: the artifact caches, the stage
/// trace, the RNG stream, and hit/miss counters. One coarse mutex keeps
/// lock ordering trivial; every critical section is a map probe or a
/// record push, never a build (artifacts are computed outside the lock).
#[derive(Debug)]
struct SessionState {
    bdds: ArtifactCache<Arc<NetworkBdds>>,
    graphs: ArtifactCache<Arc<BddGraph>>,
    labels: ArtifactCache<Arc<LabelArtifact>>,
    /// Best known labeling per *graph* key, offered as a branch & bound
    /// warm start to subsequent solves over the same graph (a γ sweep
    /// re-costs it under each point's objective).
    warm_hints: HashMap<ArtifactKey, Labeling>,
    /// Proven-optimal odd cycle transversals per *graph* key. The OCT is a
    /// pure, γ-independent function of the graph, so reuse never changes a
    /// result — it only skips the dominant stage of the anytime path.
    /// Bounded FIFO: `oct_order` tracks insertion for eviction.
    octs: HashMap<ArtifactKey, Arc<OctResult>>,
    oct_order: VecDeque<ArtifactKey>,
    trace: StageTrace,
    rng_state: u64,
    hits: usize,
    misses: usize,
    disk_hits: usize,
    disk_corrupt: usize,
    /// Keys whose artifact is being built right now (single-flight): a
    /// second thread asking for the same key blocks on [`Session::build_cv`]
    /// instead of duplicating the build.
    in_flight: HashSet<ArtifactKey>,
}

/// A synthesis session: the shared context every pass runs in.
///
/// Owns the [`Budget`], a seeded deterministic RNG stream, the per-stage
/// [`StageTrace`], and the content-addressed artifact cache. All state is
/// behind interior mutability (`&Session` suffices everywhere), so one
/// session can be shared by [`synthesize_batch`] workers and by the
/// conformance oracles without cloning artifacts.
#[derive(Debug)]
pub struct Session {
    budget: Budget,
    seed: u64,
    verify_samples: Option<usize>,
    warm_labels: bool,
    disk_cache: Option<PathBuf>,
    state: Mutex<SessionState>,
    /// Signaled whenever an in-flight build finishes (published or
    /// abandoned), waking threads blocked on the same artifact key.
    build_cv: Condvar,
}

impl Default for Session {
    fn default() -> Self {
        Session::new(SessionConfig::default())
    }
}

impl Session {
    /// Creates a session from explicit parameters.
    pub fn new(config: SessionConfig) -> Self {
        Session {
            budget: config.budget,
            seed: config.seed,
            verify_samples: config.verify_samples,
            warm_labels: config.warm_labels,
            disk_cache: config.disk_cache,
            state: Mutex::new(SessionState {
                bdds: ArtifactCache::new(config.cache_capacity),
                graphs: ArtifactCache::new(config.cache_capacity),
                labels: ArtifactCache::new(config.cache_capacity),
                warm_hints: HashMap::new(),
                octs: HashMap::new(),
                oct_order: VecDeque::new(),
                trace: StageTrace::default(),
                rng_state: config.seed,
                hits: 0,
                misses: 0,
                disk_hits: 0,
                disk_corrupt: 0,
                in_flight: HashSet::new(),
            }),
            build_cv: Condvar::new(),
        }
    }

    /// A session with the default configuration except for `budget`.
    pub fn with_budget(budget: Budget) -> Self {
        Session::new(SessionConfig {
            budget,
            ..SessionConfig::default()
        })
    }

    /// The session budget (shared by every stage).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The seed the session's RNG stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Assignments to verify each design on, when verification is enabled.
    pub fn verify_samples(&self) -> Option<usize> {
        self.verify_samples
    }

    /// The next value of the session's deterministic RNG stream
    /// (splitmix64). Consumers that need per-task seeds (defect
    /// injection, sampling) draw here so a session replays bit-for-bit
    /// from its seed.
    pub fn next_seed(&self) -> u64 {
        let mut state = self.lock();
        state.rng_state = state.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A snapshot of the stage trace so far.
    pub fn trace(&self) -> StageTrace {
        self.lock().trace.clone()
    }

    /// Aggregate cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let state = self.lock();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            entries: state.bdds.len() + state.graphs.len() + state.labels.len(),
            evicted: state.bdds.evicted + state.graphs.evicted + state.labels.evicted,
            disk_hits: state.disk_hits,
            disk_corrupt: state.disk_corrupt,
        }
    }

    /// Drops every cached artifact and warm hint (the trace is kept).
    pub fn clear_cache(&self) {
        let mut state = self.lock();
        state.bdds.clear();
        state.graphs.clear();
        state.labels.clear();
        state.warm_hints.clear();
        state.octs.clear();
        state.oct_order.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionState> {
        // A panicking stage can poison the lock while holding only
        // consistent state (probes and pushes); recover the guard.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Claims the BDD artifact `key` for single-flight construction: a
    /// cached artifact (possibly published by a sibling thread we waited
    /// out) comes back [`Claim::Ready`]; otherwise the caller owns the
    /// build and must publish via [`Session::store_bdd`] before dropping
    /// the ticket.
    pub(crate) fn claim_bdd(&self, key: ArtifactKey) -> Claim<'_, Arc<NetworkBdds>> {
        self.claim_with(key, |state| state.bdds.get(key))
    }

    /// [`Session::claim_bdd`] for graph artifacts.
    pub(crate) fn claim_graph(&self, key: ArtifactKey) -> Claim<'_, Arc<BddGraph>> {
        self.claim_with(key, |state| state.graphs.get(key))
    }

    /// [`Session::claim_bdd`] for labeling artifacts. A builder whose
    /// outcome turns out not to be cacheable (not proven optimal) simply
    /// drops the ticket unpublished; waiters then solve for themselves.
    ///
    /// With [`SessionConfig::disk_cache`] set, a memory miss probes the
    /// on-disk cache before the caller is handed the build: a checksum-
    /// verified entry is promoted into memory and returned [`Claim::Ready`]
    /// (the dropped ticket releases the single-flight claim), while a
    /// corrupt one is deleted and counted, and the build proceeds.
    pub(crate) fn claim_label(&self, key: ArtifactKey) -> Claim<'_, Arc<LabelArtifact>> {
        match self.claim_with(key, |state| state.labels.get(key)) {
            Claim::Build(ticket) => match self.load_label_from_disk(key) {
                Some(artifact) => {
                    drop(ticket);
                    Claim::Ready(artifact)
                }
                None => Claim::Build(ticket),
            },
            ready => ready,
        }
    }

    /// Reads `key`'s labeling from the on-disk cache, promoting a valid
    /// entry into the in-memory cache. Checksum or format failures delete
    /// the file and count as [`CacheStats::disk_corrupt`]; a missing file
    /// (or no disk cache configured) is a plain `None`.
    fn load_label_from_disk(&self, key: ArtifactKey) -> Option<Arc<LabelArtifact>> {
        let dir = self.disk_cache.as_ref()?;
        let path = label_path(dir, key);
        let corrupt = match flowc_report::read_json_checked(&path) {
            Ok(payload) => match label_from_json(&payload) {
                Some(artifact) => {
                    let artifact = Arc::new(artifact);
                    let mut state = self.lock();
                    state.labels.insert(key, Arc::clone(&artifact));
                    state.disk_hits += 1;
                    return Some(artifact);
                }
                // Envelope checksum passed but the payload shape didn't:
                // same remedy as a checksum failure.
                None => true,
            },
            Err(e) => e.is_corrupt(),
        };
        if corrupt {
            let _ = std::fs::remove_file(&path);
            self.lock().disk_corrupt += 1;
        }
        None
    }

    /// The best known labeling for the graph artifact `graph`, to seed a
    /// branch & bound warm start (re-costed under the caller's γ).
    pub(crate) fn warm_hint(&self, graph: ArtifactKey) -> Option<Labeling> {
        if !self.warm_labels {
            return None;
        }
        self.lock().warm_hints.get(&graph).cloned()
    }

    /// Offers `labeling` as the warm hint for `graph`. Last writer wins:
    /// any valid labeling is a usable seed, and adjacent sweep points
    /// (the most recent writers) make the best ones.
    pub(crate) fn offer_warm_hint(&self, graph: ArtifactKey, labeling: Labeling) {
        if !self.warm_labels {
            return;
        }
        self.lock().warm_hints.insert(graph, labeling);
    }

    /// Caps [`SessionState::octs`]: one entry per distinct graph is fine
    /// for sweeps, but conformance/serve sessions stream thousands of
    /// graphs through and must not grow without bound.
    const OCT_HINT_CAP: usize = 256;

    /// The cached proven-optimal odd cycle transversal for `graph`, if any.
    /// Unlike warm labels this is not gated behind an opt-in: the OCT is
    /// deterministic per graph, so a hit returns exactly what a fresh
    /// solve would compute.
    pub(crate) fn oct_hint(&self, graph: ArtifactKey) -> Option<Arc<OctResult>> {
        self.lock().octs.get(&graph).cloned()
    }

    /// Publishes a proven-optimal OCT for `graph` (first writer wins —
    /// every writer would publish the same value). Evicts FIFO beyond
    /// [`Session::OCT_HINT_CAP`] entries.
    pub(crate) fn offer_oct_hint(&self, graph: ArtifactKey, oct: Arc<OctResult>) {
        let mut state = self.lock();
        if state.octs.contains_key(&graph) {
            return;
        }
        while state.octs.len() >= Self::OCT_HINT_CAP {
            match state.oct_order.pop_front() {
                Some(old) => {
                    state.octs.remove(&old);
                }
                None => break,
            }
        }
        state.octs.insert(graph, oct);
        state.oct_order.push_back(graph);
    }

    fn claim_with<T>(
        &self,
        key: ArtifactKey,
        get: impl Fn(&SessionState) -> Option<T>,
    ) -> Claim<'_, T> {
        let mut state = self.lock();
        loop {
            if let Some(value) = get(&state) {
                return Claim::Ready(value);
            }
            if state.in_flight.insert(key) {
                return Claim::Build(BuildTicket { session: self, key });
            }
            // Another thread is building this artifact; wait for it to
            // publish (then hit the cache) or abandon (then claim the
            // build ourselves on the next loop iteration).
            state = self.build_cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn store_bdd(&self, key: ArtifactKey, bdds: Arc<NetworkBdds>) {
        self.lock().bdds.insert(key, bdds);
    }

    pub(crate) fn store_graph(&self, key: ArtifactKey, graph: Arc<BddGraph>) {
        self.lock().graphs.insert(key, graph);
    }

    pub(crate) fn store_label(&self, key: ArtifactKey, label: Arc<LabelArtifact>) {
        if let Some(dir) = &self.disk_cache {
            // Best-effort write-through (atomic + CRC32-enveloped): a
            // failed persist only costs future processes the disk hit.
            let _ = flowc_report::write_json_checked(&label_path(dir, key), &label_to_json(&label));
        }
        self.lock().labels.insert(key, label);
    }

    pub(crate) fn record(&self, record: StageRecord) {
        let mut state = self.lock();
        match record.cache {
            CacheOutcome::Hit => state.hits += 1,
            CacheOutcome::Miss => state.misses += 1,
            CacheOutcome::Uncached => {}
        }
        state.trace.records.push(record);
    }
}

/// Outcome of claiming a cacheable artifact (see [`Session::claim_bdd`]).
pub(crate) enum Claim<'s, T> {
    /// The artifact is available — either it was already cached, or this
    /// thread waited out a sibling's in-flight build of the same key.
    Ready(T),
    /// This thread owns the build. Publish the artifact with the matching
    /// `store_*`, then drop the ticket; dropping without publishing
    /// (failure, panic unwind) releases the claim so a waiter can retry.
    Build(BuildTicket<'s>),
}

/// Exclusive permission to build one artifact key (single-flight lease).
pub(crate) struct BuildTicket<'s> {
    session: &'s Session,
    key: ArtifactKey,
}

impl Drop for BuildTicket<'_> {
    fn drop(&mut self) {
        let mut state = self.session.lock();
        state.in_flight.remove(&self.key);
        drop(state);
        self.session.build_cv.notify_all();
    }
}

/// Runs the full staged pipeline inside `session`: normalize → BDD build
/// (cached) → graph extraction (cached) → VH-labeling ladder → mapping →
/// optional verification. This is the engine behind
/// [`crate::pipeline::synthesize`] and
/// [`crate::supervisor::synthesize_with_budget`], which wrap it with a
/// one-shot session.
///
/// # Errors
///
/// As [`crate::pipeline::synthesize`]: an error indicates an internal bug
/// (budget and input conditions degrade instead of failing).
pub fn synthesize_in(
    session: &Session,
    network: &Network,
    config: &Config,
) -> Result<CompactResult, CompactError> {
    run_staged(session, network, config, session.budget())
}

/// [`synthesize_in`] under an explicit budget instead of the session's
/// own: solver work is bounded by `budget` while artifacts still come
/// from (and land in) the session cache. This is what a campaign wants
/// when each trial gets a fresh deadline but all trials share one BDD.
///
/// # Errors
///
/// See [`synthesize_in`].
pub fn synthesize_in_budgeted(
    session: &Session,
    network: &Network,
    config: &Config,
    budget: &Budget,
) -> Result<CompactResult, CompactError> {
    run_staged(session, network, config, budget)
}

/// The staged engine under an explicit budget (the session budget for
/// direct calls, a [`Budget::capped`] slice for batch tasks). The
/// session's cache and trace are shared either way.
fn run_staged(
    session: &Session,
    network: &Network,
    config: &Config,
    budget: &Budget,
) -> Result<CompactResult, CompactError> {
    let sw = budget.stopwatch();
    let norm = NormalizePass.run_with_budget(session, network, budget)?;
    let bdd =
        BddBuildPass.run_with_budget(session, (network, config.var_order.as_deref()), budget)?;
    let graph = GraphExtractPass.run_with_budget(session, (&bdd.bdds, bdd.key), budget)?;
    let ladder = LadderPass { config }.run_with_budget(
        session,
        (
            &*graph,
            graph_key(bdd.key),
            norm.output_names.as_slice(),
            bdd.lift_trigger,
        ),
        budget,
    )?;
    if let Some(samples) = session.verify_samples() {
        VerifyPass { samples }.run_with_budget(session, (&ladder.crossbar, network), budget)?;
    }
    let LadderOutcome {
        crossbar,
        labeling,
        metrics,
        rung,
        degraded,
        optimal,
        relative_gap,
        trace,
        attempts,
        exhausted,
        solver_nodes,
        warm_start,
        from_cache,
        ..
    } = ladder;
    let stats = labeling.stats();
    Ok(CompactResult {
        crossbar,
        stats,
        metrics,
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        labeling,
        optimal,
        relative_gap,
        trace,
        synthesis_time: sw.elapsed(),
        degradation: Some(DegradationReport {
            rung,
            degraded: degraded || bdd.budget_lifted,
            attempts,
            relative_gap,
            bdd_wall: bdd.wall,
            bdd_budget_lifted: bdd.budget_lifted,
            exhausted,
            solver_nodes,
            warm_start,
            label_cached: from_cache,
        }),
    })
}

/// One unit of work for [`synthesize_batch`].
#[derive(Debug, Clone)]
pub struct BatchTask {
    /// Display label carried into results and reports (e.g. `"γ=0.25"`).
    pub label: String,
    /// The network to synthesize. An [`Arc`] handle so many tasks over
    /// one network share it without deep clones.
    pub network: Arc<Network>,
    /// The synthesis configuration for this task.
    pub config: Config,
}

impl BatchTask {
    /// A task synthesizing `network` under `config`, labeled `label`.
    pub fn new(label: impl Into<String>, network: Arc<Network>, config: Config) -> Self {
        BatchTask {
            label: label.into(),
            network,
            config,
        }
    }
}

/// Tuning for [`synthesize_batch`].
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// Worker threads; 0 means `std::thread::available_parallelism`.
    pub threads: usize,
    /// Optional per-task wall-clock slice, carved from the session budget
    /// with [`Budget::capped`] (the sooner of the slice and the session
    /// deadline wins; cancellation stays shared).
    pub per_task_budget: Option<Duration>,
}

/// Tasks for a γ sweep of one network: `gammas.len()` weighted-strategy
/// points sharing one [`Arc<Network>`], so a session-backed batch builds
/// the BDD and extracts the graph exactly once.
///
/// Points are ordered by **descending** γ to maximize warm-start reuse:
/// γ = 1 (pure semiperimeter) closes fastest, and each point's optimum
/// seeds the next point's branch & bound incumbent through the session's
/// warm-hint registry. Consumers that want results in a particular γ
/// order should read each task's γ from its label or
/// [`BatchTask::config`] rather than assuming input order.
pub fn gamma_sweep_tasks(
    network: &Arc<Network>,
    gammas: &[f64],
    time_limit: Duration,
) -> Vec<BatchTask> {
    let mut ordered: Vec<f64> = gammas.to_vec();
    ordered.sort_by(|a, b| b.total_cmp(a));
    ordered
        .iter()
        .map(|&gamma| {
            let mut config = Config::gamma(gamma);
            if let VhStrategy::Weighted { time_limit: tl, .. } = &mut config.strategy {
                *tl = time_limit;
            }
            BatchTask::new(format!("γ={gamma:.3}"), Arc::clone(network), config)
        })
        .collect()
}

/// Runs every task through `session`, in parallel across scoped threads,
/// and returns the results **in task order** (worker scheduling cannot
/// reorder them). Artifacts are shared through the session cache, so
/// tasks that agree on network + variable order reuse one BDD and one
/// graph. Panics inside a task are isolated per task and surfaced as
/// [`CompactError::Synthesis`] results, never poisoning sibling tasks.
pub fn synthesize_batch(
    session: &Session,
    tasks: &[BatchTask],
    batch: &BatchConfig,
) -> Vec<Result<CompactResult, CompactError>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    if tasks.is_empty() {
        return Vec::new();
    }
    let threads = if batch.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        batch.threads
    }
    .min(tasks.len());

    // Tasks that agree on network + variable order dedupe through the
    // session's single-flight claims: the first worker to reach a key
    // builds it, siblings block on the claim and then hit the cache, so
    // the trace records one build regardless of scheduling.

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CompactResult, CompactError>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let task = &tasks[i];
                let sliced;
                let budget = match batch.per_task_budget {
                    Some(slice) => {
                        sliced = session.budget().capped(slice);
                        &sliced
                    }
                    None => session.budget(),
                };
                let run = catch_unwind(AssertUnwindSafe(|| {
                    run_staged(session, &task.network, &task.config, budget)
                }));
                let result = match run {
                    Ok(r) => r,
                    Err(_) => Err(CompactError::Synthesis(format!(
                        "batch task `{}` panicked",
                        task.label
                    ))),
                };
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot is filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::{GateKind, Network};

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn artifact_keys_separate_stage_and_order() {
        let n = fig2_network();
        let k1 = bdd_key(&n, None);
        let k2 = bdd_key(&n, Some(&[2, 1, 0]));
        let k3 = bdd_key(&n, Some(&[0, 1, 2]));
        assert_ne!(k1, k2, "variable order is part of the key");
        assert_ne!(k2, k3);
        assert_ne!(k1, graph_key(k1), "stage tag is part of the key");
        assert_eq!(k1, bdd_key(&n, None), "keys are stable");
    }

    #[test]
    fn second_synthesis_hits_the_cache() {
        let n = fig2_network();
        let session = Session::default();
        let a = synthesize_in(&session, &n, &Config::gamma(0.3)).unwrap();
        let b = synthesize_in(&session, &n, &Config::gamma(0.7)).unwrap();
        assert_eq!(a.graph_nodes, b.graph_nodes);
        let trace = session.trace();
        assert_eq!(trace.builds(StageKind::BddBuild), 1);
        assert_eq!(trace.hits(StageKind::BddBuild), 1);
        assert_eq!(trace.builds(StageKind::GraphExtract), 1);
        assert_eq!(trace.hits(StageKind::GraphExtract), 1);
        let stats = session.cache_stats();
        // Two BDD/graph hits; misses and entries count the BDD, the graph,
        // and one cached labeling per γ (both close optimally on fig2).
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);

        // Re-running an identical config must serve the labeling itself
        // from the cache: no new misses, three new hits (BDD, graph, label).
        let c = synthesize_in(&session, &n, &Config::gamma(0.7)).unwrap();
        assert_eq!(c.stats.semiperimeter, b.stats.semiperimeter);
        assert!(c.degradation.as_ref().is_some_and(|d| d.label_cached));
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn cache_eviction_is_bounded_fifo() {
        let mut cache: ArtifactCache<usize> = ArtifactCache::new(2);
        cache.insert(ArtifactKey(1), 10);
        cache.insert(ArtifactKey(2), 20);
        cache.insert(ArtifactKey(1), 11); // update, not a new entry
        cache.insert(ArtifactKey(3), 30); // evicts key 1 (oldest inserted)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted, 1);
        assert_eq!(cache.get(ArtifactKey(1)), None);
        assert_eq!(cache.get(ArtifactKey(2)), Some(20));
        assert_eq!(cache.get(ArtifactKey(3)), Some(30));
    }

    fn disk_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flowc-session-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn disk_session(dir: &Path) -> Session {
        Session::new(SessionConfig {
            disk_cache: Some(dir.to_path_buf()),
            ..SessionConfig::default()
        })
    }

    #[test]
    fn disk_cache_round_trips_labelings_across_sessions() {
        let dir = disk_dir("roundtrip");
        let n = fig2_network();

        let first = disk_session(&dir);
        let a = synthesize_in(&first, &n, &Config::gamma(0.3)).unwrap();
        let persisted = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with("label-"))
            .count();
        assert_eq!(
            persisted, 1,
            "the proven-optimal labeling is written through"
        );

        // A fresh session over the same directory stands in for a process
        // restart: the VH solve must come back from disk, not recompute.
        let second = disk_session(&dir);
        let b = synthesize_in(&second, &n, &Config::gamma(0.3)).unwrap();
        assert_eq!(a.stats.semiperimeter, b.stats.semiperimeter);
        assert!(b.degradation.as_ref().is_some_and(|d| d.label_cached));
        let stats = second.cache_stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.disk_corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_a_deleted_counted_miss() {
        let dir = disk_dir("corrupt");
        let key = ArtifactKey(0x7E57);
        let artifact = Arc::new(LabelArtifact {
            labeling: Labeling::new(vec![VhLabel::V, VhLabel::Vh, VhLabel::H]),
            optimal: true,
            relative_gap: 0.0,
            rung: Rung::ExactMip,
        });
        disk_session(&dir).store_label(key, Arc::clone(&artifact));
        let path = label_path(&dir, key);

        // Flip payload bytes under the envelope: the checksum catches it,
        // the entry is deleted, and the caller owns the build.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("VBH", "HBH", 1)).unwrap();
        let probe = disk_session(&dir);
        assert!(matches!(probe.claim_label(key), Claim::Build(_)));
        assert_eq!(probe.cache_stats().disk_corrupt, 1);
        assert!(!path.exists(), "the corrupt entry is deleted");

        // Re-probing the now-missing file is a plain miss, not corruption.
        assert!(matches!(probe.claim_label(key), Claim::Build(_)));
        assert_eq!(probe.cache_stats().disk_corrupt, 1);

        // A checksum-valid envelope whose payload has the wrong shape is
        // handled exactly like a checksum failure.
        flowc_report::write_json_checked(&path, &Json::str("not a labeling")).unwrap();
        assert!(matches!(probe.claim_label(key), Claim::Build(_)));
        assert_eq!(probe.cache_stats().disk_corrupt, 2);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn label_json_round_trips_and_rejects_unknown_shapes() {
        let artifact = LabelArtifact {
            labeling: Labeling::new(vec![VhLabel::H, VhLabel::V, VhLabel::Vh]),
            optimal: false,
            relative_gap: 0.25,
            rung: Rung::AnytimeMip,
        };
        let back = label_from_json(&label_to_json(&artifact)).unwrap();
        assert_eq!(back.labeling.labels(), artifact.labeling.labels());
        assert!(!back.optimal);
        assert_eq!(back.relative_gap, 0.25);
        assert_eq!(back.rung, Rung::AnytimeMip);

        let mut bad = label_to_json(&artifact);
        if let Json::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "rung" {
                    *v = Json::str("warp-drive");
                }
            }
        }
        assert!(
            label_from_json(&bad).is_none(),
            "unknown rung names are rejected"
        );
        assert!(label_from_json(&Json::str("nope")).is_none());
    }

    #[test]
    fn session_rng_stream_is_deterministic() {
        let a = Session::new(SessionConfig {
            seed: 42,
            ..SessionConfig::default()
        });
        let b = Session::new(SessionConfig {
            seed: 42,
            ..SessionConfig::default()
        });
        let xs: Vec<u64> = (0..4).map(|_| a.next_seed()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_seed()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn verify_samples_records_a_verify_stage() {
        let n = fig2_network();
        let session = Session::new(SessionConfig {
            verify_samples: Some(64),
            ..SessionConfig::default()
        });
        synthesize_in(&session, &n, &Config::default()).unwrap();
        let trace = session.trace();
        assert_eq!(trace.runs(StageKind::Verify), 1);
        // fig2 has 3 inputs, so verification is exhaustive: 8 assignments.
        assert!(trace
            .records
            .iter()
            .any(|r| r.kind == StageKind::Verify && r.items == 8));
    }
}

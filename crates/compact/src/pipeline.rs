//! The end-to-end COMPACT flow (Figure 3 of the paper): network → (shared)
//! BDD → undirected graph → VH-labeling → crossbar.

use std::fmt;
use std::time::Duration;

use flowc_budget::Stopwatch;

use flowc_bdd::NetworkBdds;
use flowc_logic::Network;
use flowc_milp::SolveTrace;
use flowc_xbar::metrics::CrossbarMetrics;
use flowc_xbar::Crossbar;

use crate::labeling::{Labeling, LabelingStats};
use crate::mapping::{map_to_crossbar, MapError};
use crate::mip_method::{solve as mip_solve, MipConfig};
use crate::oct_method::{min_semiperimeter, OctMethodConfig};
use crate::preprocess::BddGraph;

/// Which VH-labeling solver drives the synthesis.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum VhStrategy {
    /// Section VI-A: minimal semiperimeter via the odd cycle transversal
    /// (exactly the γ = 1 objective).
    MinSemiperimeter {
        /// Budget for the exact transversal solve.
        time_limit: Duration,
    },
    /// Section VI-B: the weighted objective `γ·S + (1−γ)·D` via the Eq. 4
    /// MIP (exact on small graphs, staged anytime otherwise).
    Weighted {
        /// The trade-off weight γ.
        gamma: f64,
        /// Total wall-clock budget.
        time_limit: Duration,
        /// Node-count ceiling for the exact MIP path.
        exact_node_limit: usize,
    },
    /// Fast greedy path (heuristic OCT + balancing), for very large inputs.
    Heuristic {
        /// The trade-off weight γ (used by the balancing objective).
        gamma: f64,
    },
    /// The all-VH staircase diagonal (every node labeled `VH`, `S = 2n`):
    /// no search at all, valid for any graph. This is the terminal rung of
    /// the degradation ladder exposed as a strategy of its own, so load
    /// shedding (the serve admission controller) can force the cheapest
    /// possible synthesis up front instead of discovering it by falling
    /// down the ladder.
    Staircase,
}

impl Default for VhStrategy {
    fn default() -> Self {
        VhStrategy::Weighted {
            gamma: 0.5,
            time_limit: Duration::from_secs(30),
            exact_node_limit: 80,
        }
    }
}

/// Synthesis configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// The labeling solver. Defaults to the weighted objective at γ = 0.5,
    /// the paper's recommended setting.
    pub strategy: VhStrategy,
    /// Enforce the Eq. 7 alignment constraints (the paper's experiments
    /// include them by default). When disabled, misaligned roots are still
    /// upgraded at mapping time so the design remains realizable.
    pub align: bool,
    /// Optional BDD variable order (a permutation of the input indices).
    pub var_order: Option<Vec<usize>>,
    /// Worker threads for the exact VH-labeling branch & bound (1 =
    /// sequential; the parallel engine proves the same optimum).
    pub label_threads: usize,
}

impl Default for Config {
    /// The paper's default: weighted objective, γ = 0.5, alignment on.
    fn default() -> Self {
        Config::gamma(0.5)
    }
}

impl Config {
    /// The weighted strategy at a given γ with alignment on (the paper's
    /// experimental setup).
    pub fn gamma(gamma: f64) -> Self {
        Config {
            strategy: VhStrategy::Weighted {
                gamma,
                time_limit: Duration::from_secs(30),
                exact_node_limit: 80,
            },
            align: true,
            var_order: None,
            label_threads: 1,
        }
    }
}

/// Errors from the synthesis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompactError {
    /// Crossbar mapping failed (invalid labeling — indicates a solver bug).
    Map(MapError),
    /// The supervised pipeline could not produce any design at all (even
    /// the terminal fallback failed) — indicates a bug, not a budget or
    /// input condition.
    Synthesis(String),
    /// The budget's cancel flag fired before any design could ship (e.g.
    /// during the BDD build, which has no degraded fallback). Unlike
    /// deadline or node-ceiling exhaustion — which degrade and still ship
    /// a design — an explicit cancellation must *stop*, so it surfaces as
    /// this typed error instead of triggering an unbounded rebuild.
    Cancelled,
}

impl fmt::Display for CompactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactError::Map(e) => write!(f, "crossbar mapping failed: {e}"),
            CompactError::Synthesis(msg) => write!(f, "synthesis failed: {msg}"),
            CompactError::Cancelled => write!(f, "synthesis cancelled"),
        }
    }
}

impl std::error::Error for CompactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompactError::Map(e) => Some(e),
            CompactError::Synthesis(_) | CompactError::Cancelled => None,
        }
    }
}

/// The synthesized design with its provenance and cost figures.
#[derive(Debug, Clone)]
pub struct CompactResult {
    /// The crossbar design.
    pub crossbar: Crossbar,
    /// The VH-labeling behind it.
    pub labeling: Labeling,
    /// Labeling-level size statistics (rows, cols, S, D).
    pub stats: LabelingStats,
    /// Crossbar-level metrics (adds area, power, delay).
    pub metrics: CrossbarMetrics,
    /// BDD nodes after preprocessing (the paper's `n`).
    pub graph_nodes: usize,
    /// BDD edges after preprocessing.
    pub graph_edges: usize,
    /// Whether the labeling was proven optimal for its objective.
    pub optimal: bool,
    /// Relative optimality gap at termination (0 when proven optimal).
    pub relative_gap: f64,
    /// Solver convergence trace, when the strategy produces one.
    pub trace: Option<SolveTrace>,
    /// Wall-clock synthesis time (the paper's one-time initialization).
    pub synthesis_time: Duration,
    /// Supervisor provenance: which ladder rung shipped the design and
    /// what was attempted along the way. `None` for unsupervised entry
    /// points ([`synthesize_bdds`], the constrained search).
    pub degradation: Option<crate::supervisor::DegradationReport>,
}

/// Runs the full COMPACT flow on a network. Builds the shared BDD (SBDD)
/// over all outputs — the multi-output mode of Section VII.
///
/// Every call is supervised: solver panics are isolated and answered by
/// the degradation ladder (see [`crate::supervisor`]), so a result is
/// returned even when a stage misbehaves. To bound the run by wall clock
/// or node ceilings as well, use
/// [`crate::supervisor::synthesize_with_budget`].
///
/// # Errors
///
/// Returns [`CompactError::Map`] or [`CompactError::Synthesis`] only on
/// internal bugs; see [`crate::supervisor::synthesize_with_budget`].
pub fn synthesize(network: &Network, config: &Config) -> Result<CompactResult, CompactError> {
    crate::supervisor::synthesize_with_budget(network, config, &flowc_budget::Budget::unlimited())
}

/// Runs the labeling and mapping stages on an already-built BDD forest.
/// Useful for comparing SBDD and per-output ROBDD flows (Table III).
///
/// # Errors
///
/// See [`synthesize`].
pub fn synthesize_bdds(
    bdds: &NetworkBdds,
    output_names: &[String],
    config: &Config,
) -> Result<CompactResult, CompactError> {
    let sw = Stopwatch::unbudgeted();
    let graph = BddGraph::from_bdds(bdds);
    let (mut labeling, optimal, relative_gap, trace) = run_strategy(&graph, config);
    // Mapping requires wordlines on all ports even when alignment was not
    // requested as a constraint.
    labeling.enforce_alignment(&graph);
    let stats = labeling.stats();
    let crossbar = map_to_crossbar(&graph, &labeling, output_names).map_err(CompactError::Map)?;
    let metrics = CrossbarMetrics::of(&crossbar);
    Ok(CompactResult {
        crossbar,
        stats,
        metrics,
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        labeling,
        optimal,
        relative_gap,
        trace,
        synthesis_time: sw.elapsed(),
        degradation: None,
    })
}

fn run_strategy(graph: &BddGraph, config: &Config) -> (Labeling, bool, f64, Option<SolveTrace>) {
    match &config.strategy {
        VhStrategy::MinSemiperimeter { time_limit } => {
            let r = min_semiperimeter(
                graph,
                &OctMethodConfig {
                    time_limit: *time_limit,
                    align: config.align,
                    ..Default::default()
                },
            );
            let gap = if r.optimal { 0.0 } else { 1.0 };
            (r.labeling, r.optimal, gap, None)
        }
        VhStrategy::Weighted {
            gamma,
            time_limit,
            exact_node_limit,
        } => {
            let out = mip_solve(
                graph,
                &MipConfig {
                    gamma: *gamma,
                    align: config.align,
                    time_limit: *time_limit,
                    exact_node_limit: *exact_node_limit,
                    threads: config.label_threads.max(1),
                },
            );
            (out.labeling, out.optimal, out.relative_gap, Some(out.trace))
        }
        VhStrategy::Heuristic { gamma } => {
            let vh: std::collections::HashSet<usize> = flowc_graph::oct_heuristic(&graph.graph)
                .into_iter()
                .collect();
            let labeling = crate::balance::balanced_labeling(graph, &vh, config.align);
            let _ = gamma;
            (labeling, false, 1.0, None)
        }
        VhStrategy::Staircase => {
            let vh: std::collections::HashSet<usize> = (0..graph.num_nodes()).collect();
            let labeling = crate::balance::balanced_labeling(graph, &vh, config.align);
            (labeling, false, 1.0, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::bench_suite;
    use flowc_logic::{GateKind, Network};
    use flowc_xbar::verify::verify_functional;

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn default_config_synthesizes_fig2() {
        let n = fig2_network();
        let r = synthesize(&n, &Config::default()).unwrap();
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
        assert!(r.stats.semiperimeter <= r.graph_nodes + 2);
        assert!(r.metrics.active_devices == r.graph_edges);
        assert!(r.synthesis_time.as_secs() < 30);
    }

    #[test]
    fn all_strategies_produce_valid_designs() {
        let n = fig2_network();
        for strategy in [
            VhStrategy::MinSemiperimeter {
                time_limit: Duration::from_secs(5),
            },
            VhStrategy::Weighted {
                gamma: 0.5,
                time_limit: Duration::from_secs(5),
                exact_node_limit: 80,
            },
            VhStrategy::Heuristic { gamma: 0.5 },
            VhStrategy::Staircase,
        ] {
            let cfg = Config {
                strategy,
                align: true,
                var_order: None,
                label_threads: 1,
            };
            let r = synthesize(&n, &cfg).unwrap();
            let report = verify_functional(&r.crossbar, &n, 64).unwrap();
            assert!(report.is_valid(), "{:?}", cfg.strategy);
        }
    }

    #[test]
    fn multi_output_benchmark_verifies() {
        // ctrl: 7 inputs, exhaustive verification of all 128 assignments.
        let b = bench_suite::by_name("ctrl").unwrap();
        let n = b.network().unwrap();
        let r = synthesize(&n, &Config::gamma(0.5)).unwrap();
        let report = verify_functional(&r.crossbar, &n, 1 << 7).unwrap();
        assert!(report.is_valid(), "mismatches: {:?}", report.mismatches);
        // The headline property: S stays close to n (S ≈ 1.1n in the
        // paper), far below the baseline's 1.9n.
        assert!(
            (r.stats.semiperimeter as f64) < 1.5 * r.graph_nodes as f64,
            "S = {} for n = {}",
            r.stats.semiperimeter,
            r.graph_nodes
        );
    }

    #[test]
    fn int2float_verifies_exhaustively() {
        let b = bench_suite::by_name("int2float").unwrap();
        let n = b.network().unwrap();
        let r = synthesize(&n, &Config::gamma(0.5)).unwrap();
        let report = verify_functional(&r.crossbar, &n, 1 << 11).unwrap();
        assert!(report.is_valid());
        assert!(r
            .labeling
            .is_aligned(&crate::preprocess::BddGraph::from_bdds(
                &flowc_bdd::build_sbdd(&n, None)
            )));
    }

    #[test]
    fn custom_var_order_is_used() {
        let n = fig2_network();
        let cfg = Config {
            var_order: Some(vec![2, 1, 0]),
            ..Config::gamma(0.5)
        };
        let r = synthesize(&n, &cfg).unwrap();
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }
}

//! The resilient synthesis supervisor: every supervised `synthesize` call
//! is bounded by a cooperative [`Budget`], isolated from solver panics, and
//! guaranteed to return *some* functionally valid crossbar by walking a
//! graceful-degradation ladder:
//!
//! 1. **Exact** — the Eq. 4 MIP (weighted strategy) or the exact Lemma-1
//!    OCT (min-semiperimeter strategy), proven optimal when it closes.
//! 2. **Anytime MIP** — the staged greedy-OCT → exact-OCT → hill-climb
//!    path, which improves an always-valid incumbent until the budget runs
//!    out.
//! 3. **Heuristic OCT** — the greedy transversal plus balancing, no solver
//!    involved.
//! 4. **All-VH** — the terminal rung: label every node `VH`. This is the
//!    staircase-shaped diagonal assignment (every node occupies one row and
//!    one column, `S = 2n`), which is valid for *any* graph and needs no
//!    search at all. It cannot fail and cannot be budgeted away.
//!
//! A rung is abandoned (and the next one tried) when it panics, returns
//! nothing, or produces a labeling that cannot be mapped. Budget exhaustion
//! *inside* a rung degrades gracefully where the rung supports it (the
//! solvers all return their incumbent); only a rung with no incumbent at
//! all falls through. Every attempt is recorded in a [`DegradationReport`]
//! attached to the result.
//!
//! Since PR 4 the supervisor is staged through [`crate::session`]:
//! [`synthesize_with_budget`] wraps a one-shot [`crate::session::Session`],
//! the BDD build runs as [`crate::pass::BddBuildPass`] (budgeted first
//! attempt, one unbudgeted rebuild on exhaustion or panic —
//! `bdd_budget_lifted` in the report), and the ladder itself is
//! [`run_ladder`], driven by [`crate::pass::LadderPass`]. Callers that
//! want artifact reuse across calls (γ sweeps, repair, the conformance
//! oracles) hold a long-lived session and use
//! [`crate::session::synthesize_in`] directly.
//!
//! For fault-injection tests, the `FLOWC_CHAOS_PANIC` environment variable
//! (a comma-separated list of stage names: `bdd`, `exact-mip`, `exact-oct`,
//! `anytime-mip`, `heuristic-oct`) makes the named stages panic on entry;
//! the supervisor must still return a valid design.

use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use flowc_budget::{Budget, BudgetExceeded, Stopwatch};
use flowc_graph::{oct_heuristic, OctResult};
use flowc_logic::Network;
use flowc_milp::SolveTrace;
use flowc_xbar::metrics::CrossbarMetrics;
use flowc_xbar::Crossbar;

use crate::balance::balanced_labeling;
use crate::labeling::Labeling;
use crate::mapping::map_to_crossbar;
use crate::mip_method::{solve_anytime_with_oct, solve_exact_warm, MipConfig};
use crate::oct_method::{min_semiperimeter_budgeted, OctMethodConfig};
use crate::pipeline::{CompactError, CompactResult, Config, VhStrategy};
use crate::preprocess::BddGraph;
use crate::session::Session;

/// A rung of the degradation ladder, ordered from most to least ambitious.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rung {
    /// The exact Eq. 4 MIP through the LP-bounded branch & bound.
    ExactMip,
    /// The exact Lemma-1 odd-cycle-transversal solve (γ = 1 objective).
    ExactOct,
    /// The staged anytime path (greedy OCT → budgeted OCT → hill climb).
    AnytimeMip,
    /// Greedy OCT heuristic plus balancing; no solver.
    HeuristicOct,
    /// Terminal fallback: every node labeled `VH` (the staircase diagonal).
    AllVh,
}

impl Rung {
    /// The stage name used by `FLOWC_CHAOS_PANIC` and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::ExactMip => "exact-mip",
            Rung::ExactOct => "exact-oct",
            Rung::AnytimeMip => "anytime-mip",
            Rung::HeuristicOct => "heuristic-oct",
            Rung::AllVh => "all-vh",
        }
    }

    /// Inverse of [`Rung::name`]; `None` for unknown names (so persisted
    /// artifacts from a different version are rejected, not misread).
    pub fn parse(name: &str) -> Option<Rung> {
        Some(match name {
            "exact-mip" => Rung::ExactMip,
            "exact-oct" => Rung::ExactOct,
            "anytime-mip" => Rung::AnytimeMip,
            "heuristic-oct" => Rung::HeuristicOct,
            "all-vh" => Rung::AllVh,
            _ => return None,
        })
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why the supervisor abandoned a stage and moved down the ladder.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Trigger {
    /// The stage's budget ran out before it produced any incumbent.
    Budget(BudgetExceeded),
    /// The stage panicked; the payload message is preserved.
    Panicked(String),
    /// The stage completed but produced nothing usable (e.g. the graph
    /// exceeds the exact path's node limit, or mapping rejected the
    /// labeling).
    Failed(String),
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Budget(e) => write!(f, "budget exhausted: {e}"),
            Trigger::Panicked(msg) => write!(f, "panicked: {msg}"),
            Trigger::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// One ladder stage the supervisor ran (or tried to).
#[derive(Debug, Clone)]
pub struct StageAttempt {
    /// The rung attempted.
    pub rung: Rung,
    /// Wall-clock time spent in the stage.
    pub wall: Duration,
    /// Why the stage was abandoned; `None` for the stage that produced the
    /// shipped design.
    pub trigger: Option<Trigger>,
}

/// Structured provenance of a supervised synthesis run.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// The rung that produced the shipped design.
    pub rung: Rung,
    /// Whether the run degraded: a rung below the strategy's first choice
    /// shipped, the BDD budget had to be lifted, or the budget ran out
    /// before the result could be proven optimal.
    pub degraded: bool,
    /// Every stage attempted, in order, with per-stage wall time.
    pub attempts: Vec<StageAttempt>,
    /// Relative optimality gap of the shipped labeling (0 when proven
    /// optimal, 1 when no nontrivial bound is known).
    pub relative_gap: f64,
    /// Wall-clock time of the BDD build stage (≈0 when the session served
    /// the BDD from its artifact cache).
    pub bdd_wall: Duration,
    /// Whether the BDD had to be rebuilt without a budget after the
    /// budgeted build was exhausted or panicked.
    pub bdd_budget_lifted: bool,
    /// The budget violation observed when the ladder finished, if any.
    pub exhausted: Option<BudgetExceeded>,
    /// Branch & bound nodes the shipping rung explored (0 for non-MIP
    /// rungs and cache-served labelings).
    pub solver_nodes: u64,
    /// Warm-start outcome of the shipping rung (`None` when no warm
    /// start was offered, `Some(accepted)` otherwise).
    pub warm_start: Option<bool>,
    /// Whether the labeling was served from the session's artifact cache.
    pub label_cached: bool,
}

impl DegradationReport {
    /// One-line human-readable summary (for logs and the CLI).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "shipped from rung {} after {} attempt(s); gap {:.3}",
            self.rung,
            self.attempts.len(),
            self.relative_gap
        );
        if self.bdd_budget_lifted {
            s.push_str("; BDD budget lifted");
        }
        if let Some(e) = &self.exhausted {
            s.push_str(&format!("; budget exhausted ({e})"));
        }
        s
    }
}

/// What a rung hands back to the supervisor before mapping.
struct RungOutput {
    labeling: Labeling,
    optimal: bool,
    relative_gap: f64,
    trace: Option<SolveTrace>,
    /// Branch & bound nodes explored (0 for non-MIP rungs).
    nodes: u64,
    /// Warm-start outcome of the exact MIP rung, when one was offered.
    warm_start: Option<bool>,
    /// Freshly proven-optimal OCT from the anytime rung, for the caller
    /// to cache (γ-independent, budget-independent).
    oct: Option<OctResult>,
}

pub(crate) fn chaos(stage: &str) {
    if let Ok(v) = std::env::var("FLOWC_CHAOS_PANIC") {
        if v.split(',').any(|s| s.trim() == stage) {
            panic!("chaos injection: forced panic in stage `{stage}`");
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The ladder a strategy starts on. The first rung is the strategy's own
/// solver; everything below it is a fallback.
fn ladder(strategy: &VhStrategy) -> Vec<Rung> {
    match strategy {
        VhStrategy::MinSemiperimeter { .. } => {
            vec![Rung::ExactOct, Rung::HeuristicOct, Rung::AllVh]
        }
        VhStrategy::Weighted { .. } => vec![
            Rung::ExactMip,
            Rung::AnytimeMip,
            Rung::HeuristicOct,
            Rung::AllVh,
        ],
        VhStrategy::Heuristic { .. } => vec![Rung::HeuristicOct, Rung::AllVh],
        VhStrategy::Staircase => vec![Rung::AllVh],
    }
}

fn run_rung(
    rung: Rung,
    graph: &BddGraph,
    config: &Config,
    budget: &Budget,
    warm: Option<&Labeling>,
    oct: Option<&OctResult>,
) -> Option<RungOutput> {
    chaos(rung.name());
    match rung {
        Rung::ExactMip => {
            let (gamma, time_limit, exact_node_limit) = match &config.strategy {
                VhStrategy::Weighted {
                    gamma,
                    time_limit,
                    exact_node_limit,
                } => (*gamma, *time_limit, *exact_node_limit),
                // The exact-MIP rung is only scheduled for the weighted
                // strategy; these defaults are never reached in practice.
                VhStrategy::MinSemiperimeter { time_limit } => (1.0, *time_limit, 80),
                VhStrategy::Heuristic { gamma } => (*gamma, Duration::from_secs(30), 80),
                VhStrategy::Staircase => (0.5, Duration::ZERO, 0),
            };
            let out = solve_exact_warm(
                graph,
                &MipConfig {
                    gamma,
                    align: config.align,
                    time_limit,
                    exact_node_limit,
                    threads: config.label_threads.max(1),
                },
                budget,
                warm,
            )?;
            Some(RungOutput {
                labeling: out.labeling,
                optimal: out.optimal,
                relative_gap: out.relative_gap,
                trace: Some(out.trace),
                nodes: out.nodes,
                warm_start: out.warm_start,
                oct: None,
            })
        }
        Rung::ExactOct => {
            let time_limit = match &config.strategy {
                VhStrategy::MinSemiperimeter { time_limit } => *time_limit,
                _ => Duration::from_secs(30),
            };
            let r = min_semiperimeter_budgeted(
                graph,
                &OctMethodConfig {
                    time_limit,
                    align: config.align,
                    ..Default::default()
                },
                budget,
            );
            let gap = if r.optimal {
                0.0
            } else {
                let k = r.oct_size.max(1) as f64;
                ((r.oct_size.saturating_sub(r.oct_lower_bound)) as f64 / k).min(1.0)
            };
            Some(RungOutput {
                labeling: r.labeling,
                optimal: r.optimal,
                relative_gap: gap,
                trace: None,
                nodes: 0,
                warm_start: None,
                oct: None,
            })
        }
        Rung::AnytimeMip => {
            let (gamma, time_limit) = match &config.strategy {
                VhStrategy::Weighted {
                    gamma, time_limit, ..
                } => (*gamma, *time_limit),
                VhStrategy::MinSemiperimeter { time_limit } => (1.0, *time_limit),
                VhStrategy::Heuristic { gamma } => (*gamma, Duration::from_secs(30)),
                VhStrategy::Staircase => (0.5, Duration::ZERO),
            };
            let (out, fresh_oct) = solve_anytime_with_oct(
                graph,
                &MipConfig {
                    gamma,
                    align: config.align,
                    time_limit,
                    exact_node_limit: 0,
                    threads: config.label_threads.max(1),
                },
                budget,
                oct,
            );
            Some(RungOutput {
                labeling: out.labeling,
                optimal: out.optimal,
                relative_gap: out.relative_gap,
                trace: Some(out.trace),
                nodes: out.nodes,
                warm_start: out.warm_start,
                oct: fresh_oct,
            })
        }
        Rung::HeuristicOct => {
            let vh: HashSet<usize> = oct_heuristic(&graph.graph).into_iter().collect();
            Some(RungOutput {
                labeling: balanced_labeling(graph, &vh, config.align),
                optimal: false,
                relative_gap: 1.0,
                trace: None,
                nodes: 0,
                warm_start: None,
                oct: None,
            })
        }
        Rung::AllVh => {
            let vh: HashSet<usize> = (0..graph.num_nodes()).collect();
            Some(RungOutput {
                labeling: balanced_labeling(graph, &vh, config.align),
                optimal: false,
                relative_gap: 1.0,
                trace: None,
                nodes: 0,
                warm_start: None,
                oct: None,
            })
        }
    }
}

/// What the degradation ladder shipped, with full provenance. Produced by
/// [`run_ladder`] / [`crate::pass::LadderPass`] and folded into a
/// [`CompactResult`] by [`crate::session::synthesize_in`].
#[derive(Debug)]
pub struct LadderOutcome {
    /// The mapped design.
    pub crossbar: Crossbar,
    /// The labeling behind it (alignment already enforced).
    pub labeling: Labeling,
    /// Crossbar-level metrics of the shipped design.
    pub metrics: CrossbarMetrics,
    /// The rung that shipped.
    pub rung: Rung,
    /// Whether a rung below the strategy's first choice shipped, or the
    /// budget ran out before optimality was proven (the BDD-lift
    /// contribution is added by the caller, which owns that stage).
    pub degraded: bool,
    /// Whether the labeling was proven optimal for its objective.
    pub optimal: bool,
    /// Relative optimality gap at termination.
    pub relative_gap: f64,
    /// Solver convergence trace, when the shipping rung produced one.
    pub trace: Option<SolveTrace>,
    /// Every stage attempted, in order.
    pub attempts: Vec<StageAttempt>,
    /// The budget violation observed when the ladder finished, if any.
    pub exhausted: Option<BudgetExceeded>,
    /// Wall-clock time spent in labeling rungs.
    pub label_wall: Duration,
    /// Wall-clock time spent mapping labelings to crossbars.
    pub map_wall: Duration,
    /// Branch & bound nodes the shipping rung explored (0 for non-MIP
    /// rungs and for cache-served labelings).
    pub solver_nodes: u64,
    /// Warm-start outcome of the shipping rung (`None` when no warm start
    /// was offered, `Some(accepted)` otherwise).
    pub warm_start: Option<bool>,
    /// Whether the labeling was served from the session's artifact cache
    /// (set by [`crate::pass::LadderPass`], never by [`run_ladder`]).
    pub from_cache: bool,
    /// Freshly proven-optimal OCT from the anytime rung (γ-independent),
    /// for the session to cache across sweep points.
    pub oct: Option<OctResult>,
}

/// Walks the degradation ladder over an extracted graph: run a rung,
/// enforce alignment, map; on panic, empty output, or mapping rejection,
/// fall to the next rung. `bdd_trigger` (why the budgeted BDD build was
/// abandoned upstream, if it was) is recorded ahead of the ladder so the
/// report tells the full story in order.
///
/// # Errors
///
/// Only when every rung fails — unreachable in practice, since the
/// terminal all-VH rung cannot fail; kept as a typed error so the
/// supervisor itself never panics.
pub(crate) fn run_ladder(
    graph: &BddGraph,
    config: &Config,
    budget: &Budget,
    names: &[String],
    bdd_trigger: Option<Trigger>,
    warm: Option<&Labeling>,
    oct: Option<&OctResult>,
) -> Result<LadderOutcome, CompactError> {
    let rungs = ladder(&config.strategy);
    let first_rung = rungs[0];
    let mut attempts: Vec<StageAttempt> = Vec::new();
    if let Some(t) = bdd_trigger {
        attempts.push(StageAttempt {
            rung: first_rung,
            wall: Duration::ZERO,
            trigger: Some(Trigger::Failed(format!("budgeted BDD build: {t}"))),
        });
    }
    let mut label_wall = Duration::ZERO;
    let mut map_wall = Duration::ZERO;
    for rung in rungs {
        let sw = Stopwatch::unbudgeted();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_rung(rung, graph, config, budget, warm, oct)
        }));
        let wall = sw.elapsed();
        label_wall += wall;
        let output = match outcome {
            Ok(Some(out)) => out,
            Ok(None) => {
                attempts.push(StageAttempt {
                    rung,
                    wall,
                    trigger: Some(Trigger::Failed(
                        "stage produced no labeling before its budget ran out".into(),
                    )),
                });
                continue;
            }
            Err(p) => {
                attempts.push(StageAttempt {
                    rung,
                    wall,
                    trigger: Some(Trigger::Panicked(panic_message(p))),
                });
                continue;
            }
        };
        let mut labeling = output.labeling;
        // Mapping requires wordlines on all ports even when alignment was
        // not requested as a constraint.
        labeling.enforce_alignment(graph);
        let map_sw = Stopwatch::unbudgeted();
        let mapped = catch_unwind(AssertUnwindSafe(|| {
            map_to_crossbar(graph, &labeling, names)
        }));
        map_wall += map_sw.elapsed();
        let crossbar = match mapped {
            Ok(Ok(x)) => x,
            Ok(Err(e)) => {
                attempts.push(StageAttempt {
                    rung,
                    wall,
                    trigger: Some(Trigger::Failed(format!("mapping rejected labeling: {e}"))),
                });
                continue;
            }
            Err(p) => {
                attempts.push(StageAttempt {
                    rung,
                    wall,
                    trigger: Some(Trigger::Panicked(format!(
                        "mapping panicked: {}",
                        panic_message(p)
                    ))),
                });
                continue;
            }
        };
        attempts.push(StageAttempt {
            rung,
            wall,
            trigger: None,
        });
        let exhausted = budget.check().err();
        let degraded = rung != first_rung || (exhausted.is_some() && !output.optimal);
        let metrics = CrossbarMetrics::of(&crossbar);
        return Ok(LadderOutcome {
            crossbar,
            labeling,
            metrics,
            rung,
            degraded,
            optimal: output.optimal,
            relative_gap: output.relative_gap,
            trace: output.trace,
            attempts,
            exhausted,
            label_wall,
            map_wall,
            solver_nodes: output.nodes,
            warm_start: output.warm_start,
            from_cache: false,
            oct: output.oct,
        });
    }
    Err(CompactError::Synthesis(format!(
        "every ladder rung failed: {}",
        attempts
            .iter()
            .map(|a| format!(
                "{} ({})",
                a.rung,
                a.trigger
                    .as_ref()
                    .map_or_else(|| "ok".to_string(), Trigger::to_string)
            ))
            .collect::<Vec<_>>()
            .join(", ")
    )))
}

/// Supervised end-to-end synthesis: build the SBDD and synthesize under a
/// shared [`Budget`]. See the module documentation for the guarantees.
///
/// Runs through a one-shot [`Session`]; callers that synthesize the same
/// network repeatedly (γ sweeps, repair, conformance oracles) should hold
/// a long-lived session and call [`crate::session::synthesize_in`], which
/// reuses the BDD and graph artifacts across calls.
///
/// # Errors
///
/// Returns an error only when the BDD cannot be built at all (the
/// unbudgeted rebuild also panicked) or when even the terminal all-VH rung
/// cannot be mapped — both indicate a bug, not an input or budget
/// condition.
pub fn synthesize_with_budget(
    network: &Network,
    config: &Config,
    budget: &Budget,
) -> Result<CompactResult, CompactError> {
    let session = Session::with_budget(budget.clone());
    crate::session::synthesize_in(&session, network, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::{GateKind, Network};
    use flowc_xbar::verify::verify_functional;

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn unlimited_budget_ships_from_the_first_rung() {
        let n = fig2_network();
        let r = synthesize_with_budget(&n, &Config::default(), &Budget::unlimited()).unwrap();
        let report = r.degradation.as_ref().unwrap();
        assert_eq!(report.rung, Rung::ExactMip);
        assert!(!report.degraded, "{}", report.summary());
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn zero_deadline_degrades_but_stays_valid() {
        let n = fig2_network();
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let r = synthesize_with_budget(&n, &Config::default(), &budget).unwrap();
        let report = r.degradation.as_ref().unwrap();
        assert!(report.degraded, "{}", report.summary());
        assert!(report.exhausted.is_some());
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn one_node_bdd_ceiling_lifts_and_recovers() {
        let n = fig2_network();
        let budget = Budget::unlimited().with_max_bdd_nodes(1);
        let r = synthesize_with_budget(&n, &Config::default(), &budget).unwrap();
        let report = r.degradation.as_ref().unwrap();
        assert!(report.bdd_budget_lifted);
        assert!(report.degraded);
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn cancelled_budget_aborts_with_typed_error() {
        // Explicit cancellation is a stop order, not a resource ceiling:
        // unlike deadline/node exhaustion (which degrade and still ship a
        // design), it must surface as `CompactError::Cancelled` without
        // falling back to an unbudgeted rebuild.
        let n = fig2_network();
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let err = synthesize_with_budget(&n, &Config::default(), &budget).unwrap_err();
        assert!(matches!(err, CompactError::Cancelled), "{err}");
    }

    #[test]
    fn all_strategies_survive_a_zero_deadline() {
        let n = fig2_network();
        for strategy in [
            VhStrategy::MinSemiperimeter {
                time_limit: Duration::from_secs(5),
            },
            VhStrategy::Weighted {
                gamma: 0.5,
                time_limit: Duration::from_secs(5),
                exact_node_limit: 80,
            },
            VhStrategy::Heuristic { gamma: 0.5 },
            VhStrategy::Staircase,
        ] {
            let cfg = Config {
                strategy,
                align: true,
                var_order: None,
                label_threads: 1,
            };
            let budget = Budget::unlimited().with_deadline(Duration::ZERO);
            let r = synthesize_with_budget(&n, &cfg, &budget).unwrap();
            assert!(
                verify_functional(&r.crossbar, &n, 64).unwrap().is_valid(),
                "{:?}",
                cfg.strategy
            );
        }
    }

    #[test]
    fn ladder_order_follows_the_strategy() {
        assert_eq!(
            ladder(&VhStrategy::Heuristic { gamma: 0.5 }),
            vec![Rung::HeuristicOct, Rung::AllVh]
        );
        assert_eq!(
            ladder(&VhStrategy::Staircase),
            vec![Rung::AllVh],
            "staircase goes straight to the terminal rung"
        );
        assert_eq!(
            ladder(&VhStrategy::default())[0],
            Rung::ExactMip,
            "weighted starts exact"
        );
    }

    #[test]
    fn supervised_calls_trace_their_stages() {
        use crate::session::{Session, StageKind};
        let n = fig2_network();
        let session = Session::default();
        let r = crate::session::synthesize_in(&session, &n, &Config::default()).unwrap();
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
        let trace = session.trace();
        for kind in [
            StageKind::Normalize,
            StageKind::BddBuild,
            StageKind::GraphExtract,
            StageKind::VhLabel,
            StageKind::Map,
        ] {
            assert_eq!(trace.runs(kind), 1, "stage {kind} should run once");
        }
        assert_eq!(trace.runs(StageKind::Verify), 0, "verify is opt-in");
    }
}

//! Formal (symbolic) verification of crossbar designs.
//!
//! Sampling-based checks (`flowc_xbar::verify`) cover assignments; this
//! module proves validity for *every* assignment by computing, per wire,
//! the Boolean *connectivity function* — "this wire is electrically
//! connected to the driven input wordline under assignment x" — as a BDD,
//! via a least-fixpoint over the device graph. A design is valid iff each
//! output wordline's connectivity function is literally the specification
//! BDD, and when it is not, a satisfying assignment of the difference is a
//! concrete counterexample.
//!
//! This is the complete-verification counterpart of the paper's SPICE
//! spot-checks, feasible because flow-based evaluation is exactly graph
//! reachability (Section II-C).

use flowc_bdd::{build_sbdd, Manager, Ref};
use flowc_logic::Network;
use flowc_xbar::{Crossbar, DeviceAssignment};

/// Result of a symbolic equivalence check.
#[derive(Debug, Clone)]
pub struct SymbolicReport {
    /// Whether every output's connectivity function equals its spec.
    pub equivalent: bool,
    /// For each output: `None` when equivalent, or one assignment (network
    /// input order) on which the design and the specification disagree.
    pub counterexamples: Vec<Option<Vec<bool>>>,
    /// Fixpoint sweeps needed to converge (a diameter witness).
    pub iterations: usize,
}

impl SymbolicReport {
    /// The first counterexample, if any output disagrees.
    pub fn first_counterexample(&self) -> Option<&Vec<bool>> {
        self.counterexamples.iter().flatten().next()
    }
}

/// Symbolically verifies `xbar` against `reference`, proving equivalence
/// over all `2^k` assignments. BDD sizes govern the cost: intended for
/// small/medium designs (thousands of devices).
///
/// # Panics
///
/// Panics if the crossbar has no input port bound, or if the input counts
/// disagree.
pub fn verify_symbolic(xbar: &Crossbar, reference: &Network) -> SymbolicReport {
    assert_eq!(
        reference.num_inputs(),
        xbar.num_inputs(),
        "reference and crossbar must agree on the input count"
    );
    let input_row = xbar.input_row().expect("crossbar must bind an input port");

    // Specification BDDs (shared manager; same input order as the wires).
    // The build is owned here, so take the manager by value — cloning it
    // would copy the whole node table and ITE cache per verification.
    let spec = build_sbdd(reference, None);
    let spec_vars = spec.vars;
    let spec_roots = spec.roots;
    let mut manager = spec.manager;
    // Literal BDDs per input, in network input order.
    let literals: Vec<(Ref, Ref)> = spec_vars
        .iter()
        .map(|&v| {
            let pos = manager.var(v);
            let neg = manager.nvar(v);
            (pos, neg)
        })
        .collect();

    let device_fn = |m: &mut Manager, a: DeviceAssignment| -> Ref {
        match a {
            DeviceAssignment::Off => m.zero(),
            DeviceAssignment::On => m.one(),
            DeviceAssignment::Literal { input, negated } => {
                let (pos, neg) = literals[input];
                if negated {
                    neg
                } else {
                    pos
                }
            }
        }
    };
    let devices: Vec<(usize, usize, Ref)> = xbar
        .programmed_devices()
        .map(|(r, c, a)| (r, c, device_fn(&mut manager, a)))
        .collect();

    // Least fixpoint of reachability over the bipartite wire graph.
    let mut row_reach = vec![Ref::ZERO; xbar.rows()];
    let mut col_reach = vec![Ref::ZERO; xbar.cols()];
    row_reach[input_row] = Ref::ONE;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for &(r, c, g) in &devices {
            let through_row = manager.and(row_reach[r], g);
            let new_col = manager.or(col_reach[c], through_row);
            if new_col != col_reach[c] {
                col_reach[c] = new_col;
                changed = true;
            }
            let through_col = manager.and(col_reach[c], g);
            let new_row = manager.or(row_reach[r], through_col);
            if new_row != row_reach[r] {
                row_reach[r] = new_row;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Compare each output's connectivity function with its specification.
    let mut counterexamples = Vec::with_capacity(xbar.outputs().len());
    let mut equivalent = true;
    for (port, &spec_root) in xbar.outputs().iter().zip(&spec_roots) {
        let implemented = row_reach[port.row];
        if implemented == spec_root {
            counterexamples.push(None);
        } else {
            equivalent = false;
            let diff = manager.xor(implemented, spec_root);
            let witness = manager
                .pick_sat(diff)
                .expect("differing canonical BDDs have a differing assignment");
            // Map variable order back to network input order.
            let mut assignment = vec![false; reference.num_inputs()];
            for (input_idx, v) in spec_vars.iter().enumerate() {
                assignment[input_idx] = witness[v.index()];
            }
            counterexamples.push(Some(assignment));
        }
    }
    SymbolicReport {
        equivalent,
        counterexamples,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{synthesize, Config};
    use flowc_logic::{bench_suite, GateKind, Network};

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn synthesized_design_is_formally_equivalent() {
        let n = fig2_network();
        let r = synthesize(&n, &Config::default()).unwrap();
        let report = verify_symbolic(&r.crossbar, &n);
        assert!(report.equivalent, "{report:?}");
        assert!(report.first_counterexample().is_none());
        assert!(report.iterations >= 1);
    }

    #[test]
    fn benchmarks_verify_formally() {
        for name in ["ctrl", "int2float", "router", "dec"] {
            let b = bench_suite::by_name(name).unwrap();
            let n = b.network().unwrap();
            let r = synthesize(&n, &Config::default()).unwrap();
            let report = verify_symbolic(&r.crossbar, &n);
            assert!(report.equivalent, "{name}");
        }
    }

    #[test]
    fn broken_design_yields_a_counterexample() {
        let n = fig2_network();
        let r = synthesize(&n, &Config::default()).unwrap();
        let mut broken = r.crossbar.clone();
        // Flip the polarity of one literal device.
        let (br, bc, a) = broken
            .programmed_devices()
            .find(|(_, _, a)| a.is_literal())
            .expect("design has literal devices");
        let flowc_xbar::DeviceAssignment::Literal { input, negated } = a else {
            unreachable!()
        };
        broken
            .set(
                br,
                bc,
                DeviceAssignment::Literal {
                    input,
                    negated: !negated,
                },
            )
            .unwrap();
        let report = verify_symbolic(&broken, &n);
        assert!(!report.equivalent);
        let cex = report
            .first_counterexample()
            .expect("counterexample")
            .clone();
        // The counterexample really distinguishes the two.
        let want = n.simulate(&cex).unwrap();
        let got = broken.evaluate(&cex).unwrap();
        assert_ne!(want, got, "counterexample must witness the difference");
    }

    #[test]
    fn staircase_baseline_also_verifies_formally() {
        // The symbolic check is mapping-agnostic: apply it to the prior-art
        // layout too (via a hand-built every-node-both-wires crossbar on
        // fig2 through the public baseline API would create a dependency
        // cycle, so exercise with the min-semiperimeter strategy instead).
        let n = fig2_network();
        let cfg = Config {
            strategy: crate::pipeline::VhStrategy::MinSemiperimeter {
                time_limit: std::time::Duration::from_secs(5),
            },
            align: true,
            var_order: None,
            label_threads: 1,
        };
        let r = synthesize(&n, &cfg).unwrap();
        assert!(verify_symbolic(&r.crossbar, &n).equivalent);
    }

    #[test]
    fn multi_output_with_constants_verifies() {
        let mut n = Network::new("mixed");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::Xor, &[a, b], "f").unwrap();
        let z = n.add_const0("z");
        let o = n.add_const1("o");
        n.mark_output(f);
        n.mark_output(z);
        n.mark_output(o);
        let r = synthesize(&n, &Config::default()).unwrap();
        let report = verify_symbolic(&r.crossbar, &n);
        assert!(report.equivalent, "{report:?}");
        assert_eq!(report.counterexamples.len(), 3);
    }
}

//! Synthesis under explicit row/column limits — the Section III note:
//! "it is trivial to modify our problem formulation and COMPACT to handle
//! specified constraints on the rows and columns. For such problem
//! formulations, COMPACT would generate a valid design D or return that the
//! specified design constraints are infeasible."

use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

use flowc_bdd::build_sbdd;
use flowc_graph::{odd_cycle_transversal, OctConfig};
use flowc_logic::Network;
use flowc_xbar::metrics::CrossbarMetrics;

use crate::balance::boxed_labeling;
use crate::labeling::{Labeling, VhLabel};
use crate::mapping::map_to_crossbar;
use crate::pipeline::CompactResult;
use crate::preprocess::BddGraph;

/// A target crossbar bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeLimits {
    /// Maximum wordlines.
    pub max_rows: usize,
    /// Maximum bitlines.
    pub max_cols: usize,
}

/// Outcome of a constrained synthesis attempt that produced no design.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstraintError {
    /// No design can exist: a proven lower bound exceeds the limits.
    Infeasible {
        /// Proven lower bound on the semiperimeter of any valid design.
        semiperimeter_lower_bound: usize,
        /// The limits that were requested.
        limits: SizeLimits,
    },
    /// The search budget expired without finding a fitting design (one may
    /// still exist); the closest shape found is reported.
    NotFound {
        /// Rows of the best (least-violating) design found.
        best_rows: usize,
        /// Columns of the best design found.
        best_cols: usize,
    },
    /// Mapping the fitting labeling failed — indicates a solver bug, not
    /// an input condition.
    Synthesis(String),
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::Infeasible {
                semiperimeter_lower_bound,
                limits,
            } => write!(
                f,
                "infeasible: any valid design needs a semiperimeter of at least {}, \
                 but the limits allow only {} + {} = {}",
                semiperimeter_lower_bound,
                limits.max_rows,
                limits.max_cols,
                limits.max_rows + limits.max_cols
            ),
            ConstraintError::NotFound {
                best_rows,
                best_cols,
            } => write!(
                f,
                "no fitting design found within the budget (closest: {best_rows} × {best_cols})"
            ),
            ConstraintError::Synthesis(msg) => write!(f, "synthesis failed: {msg}"),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Synthesizes a crossbar for `network` whose shape fits within `limits`,
/// or explains why it cannot (proven infeasibility vs budget exhaustion).
/// Alignment constraints are always enforced — ports need wordlines.
///
/// # Errors
///
/// [`ConstraintError::Infeasible`] when a proven lower bound exceeds the
/// box; [`ConstraintError::NotFound`] when the budget expires first.
pub fn synthesize_constrained(
    network: &Network,
    limits: SizeLimits,
    time_limit: Duration,
) -> Result<CompactResult, ConstraintError> {
    let start = Instant::now();
    let deadline = start + time_limit;
    let bdds = build_sbdd(network, None);
    let graph = BddGraph::from_bdds(&bdds);
    let names: Vec<String> = network
        .outputs()
        .iter()
        .map(|&o| network.net_name(o).to_string())
        .collect();

    // Port rows are all distinct wordlines: a quick row-count lower bound.
    let mut port_rows: HashSet<usize> = graph.roots.iter().flatten().copied().collect();
    if let Some(t) = graph.terminal {
        port_rows.insert(t);
    }
    let const0 = graph.roots.iter().filter(|r| r.is_none()).count();
    let min_rows = port_rows.len() + const0;
    if min_rows > limits.max_rows {
        return Err(ConstraintError::Infeasible {
            semiperimeter_lower_bound: min_rows + usize::from(graph.num_edges() > 0),
            limits,
        });
    }

    // Semiperimeter lower bound: S ≥ n + OCT(G) (plus the constant-0 rows).
    let oct = odd_cycle_transversal(
        &graph.graph,
        &OctConfig {
            time_limit: deadline
                .saturating_duration_since(Instant::now())
                .mul_f64(0.5),
            threads: 1,
        },
    );
    let s_lower = graph.num_nodes() + oct.lower_bound + const0;
    if s_lower > limits.max_rows + limits.max_cols {
        return Err(ConstraintError::Infeasible {
            semiperimeter_lower_bound: s_lower,
            limits,
        });
    }

    // Candidate transversal; box-fit the orientation, then hill climb with
    // VH additions while the fit improves.
    let mut vh: HashSet<usize> = oct.transversal.iter().copied().collect();
    let fits = |l: &Labeling| {
        let s = l.stats();
        s.rows + const0 <= limits.max_rows && s.cols <= limits.max_cols
    };
    let violation = |l: &Labeling| {
        let s = l.stats();
        (s.rows + const0).saturating_sub(limits.max_rows) + s.cols.saturating_sub(limits.max_cols)
    };
    let mut best = boxed_labeling(
        &graph,
        &vh,
        true,
        limits.max_rows.saturating_sub(const0),
        limits.max_cols,
    );
    best.enforce_alignment(&graph);
    'outer: while !fits(&best) && Instant::now() < deadline {
        let mut improved = false;
        let mut candidates: Vec<usize> = (0..graph.num_nodes())
            .filter(|v| !vh.contains(v) && !matches!(best.label(*v), VhLabel::Vh))
            .collect();
        candidates.sort_by_key(|&v| std::cmp::Reverse(graph.graph.degree(v)));
        for v in candidates {
            if Instant::now() >= deadline {
                break 'outer;
            }
            vh.insert(v);
            let mut cand = boxed_labeling(
                &graph,
                &vh,
                true,
                limits.max_rows.saturating_sub(const0),
                limits.max_cols,
            );
            cand.enforce_alignment(&graph);
            if violation(&cand) < violation(&best) {
                best = cand;
                improved = true;
                if fits(&best) {
                    break 'outer;
                }
            } else {
                vh.remove(&v);
            }
        }
        if !improved {
            break;
        }
    }

    if !fits(&best) {
        let s = best.stats();
        return Err(ConstraintError::NotFound {
            best_rows: s.rows + const0,
            best_cols: s.cols,
        });
    }
    let stats = best.stats();
    let crossbar = map_to_crossbar(&graph, &best, &names)
        .map_err(|e| ConstraintError::Synthesis(format!("mapping rejected labeling: {e}")))?;
    let metrics = CrossbarMetrics::of(&crossbar);
    Ok(CompactResult {
        crossbar,
        stats,
        metrics,
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        labeling: best,
        optimal: false,
        relative_gap: 1.0,
        trace: None,
        synthesis_time: start.elapsed(),
        degradation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::{bench_suite, GateKind, Network};
    use flowc_xbar::verify::verify_functional;

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn generous_limits_succeed() {
        let n = fig2_network();
        let r = synthesize_constrained(
            &n,
            SizeLimits {
                max_rows: 10,
                max_cols: 10,
            },
            Duration::from_secs(5),
        )
        .unwrap();
        assert!(r.crossbar.rows() <= 10 && r.crossbar.cols() <= 10);
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn provably_impossible_limits_are_infeasible() {
        let n = fig2_network();
        // The Fig. 2 graph needs S ≥ n + 1 = 5.
        let err = synthesize_constrained(
            &n,
            SizeLimits {
                max_rows: 2,
                max_cols: 2,
            },
            Duration::from_secs(5),
        )
        .unwrap_err();
        match err {
            ConstraintError::Infeasible {
                semiperimeter_lower_bound,
                ..
            } => assert!(semiperimeter_lower_bound >= 5),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn tight_but_feasible_box() {
        let n = fig2_network();
        // Minimum is S = 5 with shapes like 3×2; ask for exactly that.
        let r = synthesize_constrained(
            &n,
            SizeLimits {
                max_rows: 3,
                max_cols: 2,
            },
            Duration::from_secs(5),
        )
        .unwrap();
        assert!(r.crossbar.rows() <= 3 && r.crossbar.cols() <= 2);
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn skewed_boxes_force_reorientation() {
        // int2float normally balances near-square (~66×66 at S≈132); ask
        // for a wide-flat box and check the orientation DP adapts.
        let b = bench_suite::by_name("int2float").unwrap();
        let n = b.network().unwrap();
        let unconstrained =
            crate::pipeline::synthesize(&n, &crate::pipeline::Config::default()).unwrap();
        let budget = unconstrained.stats.semiperimeter + 20;
        let r = synthesize_constrained(
            &n,
            SizeLimits {
                max_rows: budget * 3 / 4,
                max_cols: budget / 2,
            },
            Duration::from_secs(10),
        )
        .unwrap();
        assert!(r.crossbar.rows() <= budget * 3 / 4);
        assert!(r.crossbar.cols() <= budget / 2);
        assert!(verify_functional(&r.crossbar, &n, 200).unwrap().is_valid());
    }

    #[test]
    fn too_few_rows_for_ports_is_infeasible() {
        // dec has 256 outputs; they all need wordlines.
        let b = bench_suite::by_name("dec").unwrap();
        let n = b.network().unwrap();
        let err = synthesize_constrained(
            &n,
            SizeLimits {
                max_rows: 100,
                max_cols: 1000,
            },
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert!(matches!(err, ConstraintError::Infeasible { .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ConstraintError::Infeasible {
            semiperimeter_lower_bound: 10,
            limits: SizeLimits {
                max_rows: 3,
                max_cols: 4,
            },
        };
        let text = e.to_string();
        assert!(text.contains("10") && text.contains("7"));
        let e = ConstraintError::NotFound {
            best_rows: 9,
            best_cols: 8,
        };
        assert!(e.to_string().contains("9 × 8"));
    }
}

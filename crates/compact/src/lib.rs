//! COMPACT: flow-based computing on nanoscale crossbars with minimal
//! semiperimeter and maximum dimension — the core of the DATE 2021 paper
//! reproduction.
//!
//! The framework maps a Boolean function, given as a gate-level
//! [`flowc_logic::Network`], to a [`flowc_xbar::Crossbar`] in three steps:
//!
//! 1. **Graph pre-processing** ([`preprocess`]): build the (shared) BDD,
//!    drop the 0-terminal, and view the rest as an undirected graph whose
//!    nodes will become nanowires and whose edges will become memristors.
//! 2. **VH-labeling** ([`oct_method`], [`mip_method`]): assign each node a
//!    label `V` (bitline), `H` (wordline), or `VH` (both, joined by an
//!    always-on memristor), such that no edge joins two pure-`V` or two
//!    pure-`H` nodes. Minimizing `VH` labels minimizes the semiperimeter
//!    `S = R + C`; the weighted objective `γ·S + (1−γ)·D` additionally
//!    balances the design (`D = max(R, C)`).
//! 3. **Crossbar mapping** ([`mapping`]): bind labelled nodes to wordlines
//!    and bitlines and program each BDD edge's literal into the junction
//!    between its endpoints' wires.
//!
//! The end-to-end entry point is [`pipeline::synthesize`]:
//!
//! ```
//! use flowc_logic::{Network, GateKind};
//! use flowc_compact::pipeline::{synthesize, Config};
//!
//! let mut n = Network::new("fig2");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
//! let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
//! n.mark_output(f);
//!
//! let result = synthesize(&n, &Config::default()).unwrap();
//! // The design evaluates the function by sneak-path flow.
//! assert_eq!(result.crossbar.evaluate(&[true, true, false]).unwrap(), vec![true]);
//! assert_eq!(result.crossbar.evaluate(&[false, false, false]).unwrap(), vec![false]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod constrained;
pub mod formal;
pub mod incremental;
pub mod labeling;
pub mod mapping;
pub mod mip_method;
pub mod oct_method;
pub mod pareto;
pub mod pass;
pub mod pipeline;
pub mod preprocess;
pub mod repair;
pub mod session;
pub mod supervisor;

pub use constrained::{synthesize_constrained, ConstraintError, SizeLimits};
pub use formal::{verify_symbolic, SymbolicReport};
pub use incremental::{
    parse_edit, parse_edit_script, repair_labeling, EditError, EditOutcome, EditResolution,
    EditSession, EditSessionConfig, EditableNetlist, IncrementalStats, NetlistEdit,
};
pub use labeling::{Labeling, LabelingStats, VhLabel};
pub use pipeline::{synthesize, CompactError, CompactResult, Config, VhStrategy};
pub use preprocess::BddGraph;
pub use repair::{
    repair_placement, repair_with_resynthesis, repair_with_resynthesis_in, RepairConfig,
    RepairError, RepairReport, RepairStrategy, RepairedDesign,
};
pub use session::{
    gamma_sweep_tasks, synthesize_batch, synthesize_in, synthesize_in_budgeted, ArtifactKey,
    BatchConfig, BatchTask, CacheOutcome, CacheStats, Session, SessionConfig, StageKind,
    StageRecord, StageTrace,
};
pub use supervisor::{synthesize_with_budget, DegradationReport, Rung, StageAttempt, Trigger};

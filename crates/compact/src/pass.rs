//! The staged pipeline's passes: each COMPACT stage as a uniform unit of
//! work over a shared [`Session`].
//!
//! Every pass has the shape `run(&self, &Session, input) -> Result<Output>`
//! (the issue's `&mut Session` relaxed to `&Session` — session state is
//! behind interior mutability so [`crate::session::synthesize_batch`]
//! workers can share one session), records a [`StageRecord`] with
//! wall-clock, item counts, and cache outcome, and checks or forwards the
//! budget. Cacheable passes ([`BddBuildPass`], [`GraphExtractPass`]) probe
//! the session's content-addressed artifact store first and publish their
//! output behind an [`Arc`].
//!
//! The VH-labeling and mapping stages are driven together by
//! [`LadderPass`]: the degradation ladder interleaves them (a labeling
//! that cannot be mapped sends the supervisor down a rung), so they cannot
//! be sequenced as independent passes — but the pass still records
//! *separate* [`StageKind::VhLabel`] and [`StageKind::Map`] trace entries
//! from the per-stage walls the ladder measures.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use flowc_bdd::{try_build_sbdd, NetworkBdds};
use flowc_budget::Budget;
use flowc_logic::Network;
use flowc_xbar::verify::verify_functional;
use flowc_xbar::Crossbar;

use crate::mapping::map_to_crossbar;
use crate::pipeline::{CompactError, Config};
use crate::preprocess::BddGraph;
use crate::session::{
    bdd_key, graph_key, label_key, ArtifactKey, CacheOutcome, Claim, LabelArtifact, Session,
    SolveStats, StageKind, StageRecord,
};
use crate::supervisor::{chaos, panic_message, run_ladder, LadderOutcome, StageAttempt, Trigger};
use flowc_budget::Stopwatch;
use flowc_xbar::metrics::CrossbarMetrics;

/// A pipeline stage: deterministic work over a shared [`Session`].
///
/// `run` uses the session budget; [`Pass::run_with_budget`] lets batch
/// workers substitute a per-task slice while still sharing the session's
/// cache and trace.
pub trait Pass<I> {
    /// What the pass produces.
    type Output;

    /// The stage this pass records under.
    fn kind(&self) -> StageKind;

    /// Runs the stage under an explicit budget.
    ///
    /// # Errors
    ///
    /// [`CompactError`] on internal failure; budget exhaustion degrades
    /// inside the stage where the stage supports it.
    fn run_with_budget(
        &self,
        session: &Session,
        input: I,
        budget: &Budget,
    ) -> Result<Self::Output, CompactError>;

    /// Runs the stage under the session budget.
    ///
    /// # Errors
    ///
    /// See [`Pass::run_with_budget`].
    fn run(&self, session: &Session, input: I) -> Result<Self::Output, CompactError> {
        self.run_with_budget(session, input, session.budget())
    }
}

/// Output of [`NormalizePass`].
#[derive(Debug, Clone)]
pub struct NormalizeOutput {
    /// Primary-output names in output order (mapping wants them).
    pub output_names: Vec<String>,
    /// The network's structural content hash (the root of every
    /// downstream artifact key).
    pub network_key: ArtifactKey,
}

/// Stage 1: netlist validation and artifact-key derivation.
pub struct NormalizePass;

impl Pass<&Network> for NormalizePass {
    type Output = NormalizeOutput;

    fn kind(&self) -> StageKind {
        StageKind::Normalize
    }

    fn run_with_budget(
        &self,
        session: &Session,
        network: &Network,
        _budget: &Budget,
    ) -> Result<NormalizeOutput, CompactError> {
        let sw = session.budget().stopwatch();
        network
            .validate()
            .map_err(|e| CompactError::Synthesis(format!("network failed validation: {e}")))?;
        let output_names = network
            .outputs()
            .iter()
            .map(|&o| network.net_name(o).to_string())
            .collect();
        let key = ArtifactKey(network.content_hash());
        session.record(StageRecord {
            kind: StageKind::Normalize,
            wall: sw.elapsed(),
            cache: CacheOutcome::Uncached,
            items: network.num_gates(),
            key: Some(key),
            solve: None,
        });
        Ok(NormalizeOutput {
            output_names,
            network_key: key,
        })
    }
}

/// Output of [`BddBuildPass`]: the shared-BDD artifact plus the build
/// provenance the degradation report needs.
#[derive(Debug)]
pub struct BddArtifact {
    /// The (S)BDD forest, shared through the session cache.
    pub bdds: Arc<NetworkBdds>,
    /// The artifact key (network content hash + variable order).
    pub key: ArtifactKey,
    /// Whether the budgeted build failed and an unbudgeted rebuild ran.
    pub budget_lifted: bool,
    /// Wall-clock time of this stage (≈0 on a cache hit).
    pub wall: std::time::Duration,
    /// Why the budgeted build was abandoned, when it was.
    pub lift_trigger: Option<Trigger>,
}

/// Stage 2: budgeted shared-BDD construction with the supervisor's
/// lift-and-rebuild recovery, served from the artifact cache when the
/// same network + variable order was already built in this session.
pub struct BddBuildPass;

impl Pass<(&Network, Option<&[usize]>)> for BddBuildPass {
    type Output = BddArtifact;

    fn kind(&self) -> StageKind {
        StageKind::BddBuild
    }

    fn run_with_budget(
        &self,
        session: &Session,
        (network, var_order): (&Network, Option<&[usize]>),
        budget: &Budget,
    ) -> Result<BddArtifact, CompactError> {
        let sw = session.budget().stopwatch();
        let key = bdd_key(network, var_order);
        // Single-flight claim: either the artifact is ready (cached, or a
        // sibling thread just published it while we waited) or this thread
        // owns the build; the ticket releases the claim even on unwind.
        let ticket = match session.claim_bdd(key) {
            Claim::Ready(bdds) => {
                let wall = sw.elapsed();
                session.record(StageRecord {
                    kind: StageKind::BddBuild,
                    wall,
                    cache: CacheOutcome::Hit,
                    items: bdds.manager.reachable(&bdds.roots).len(),
                    key: Some(key),
                    solve: None,
                });
                return Ok(BddArtifact {
                    bdds,
                    key,
                    budget_lifted: false,
                    wall,
                    lift_trigger: None,
                });
            }
            Claim::Build(ticket) => ticket,
        };
        let mut budget_lifted = false;
        let mut lift_trigger: Option<Trigger> = None;
        let first = catch_unwind(AssertUnwindSafe(|| {
            chaos("bdd");
            try_build_sbdd(network, var_order, budget)
        }));
        let bdds = match first {
            Ok(Ok(b)) => b,
            // An explicit cancellation means *stop now* — lifting the
            // budget here would start an unbounded rebuild the client
            // just asked to abort. Deadline/node exhaustion still lifts
            // (shipping a degraded design beats shipping nothing).
            Ok(Err(flowc_budget::BudgetExceeded::Cancelled)) => {
                return Err(CompactError::Cancelled)
            }
            other => {
                // No downstream stage can run without a BDD: lift the
                // budget and rebuild.
                lift_trigger = Some(match other {
                    Ok(Err(e)) => Trigger::Budget(e),
                    Err(p) => Trigger::Panicked(panic_message(p)),
                    Ok(Ok(_)) => unreachable!("handled above"),
                });
                budget_lifted = true;
                match catch_unwind(AssertUnwindSafe(|| {
                    try_build_sbdd(network, var_order, &Budget::unlimited())
                })) {
                    Ok(Ok(b)) => b,
                    Ok(Err(e)) => {
                        return Err(CompactError::Synthesis(format!(
                            "unbudgeted BDD rebuild reported exhaustion: {e}"
                        )))
                    }
                    Err(p) => {
                        return Err(CompactError::Synthesis(format!(
                            "BDD build panicked: {}",
                            panic_message(p)
                        )))
                    }
                }
            }
        };
        let bdds = Arc::new(bdds);
        session.store_bdd(key, Arc::clone(&bdds));
        drop(ticket); // publish before waking claim waiters
        let wall = sw.elapsed();
        session.record(StageRecord {
            kind: StageKind::BddBuild,
            wall,
            cache: CacheOutcome::Miss,
            items: bdds.manager.reachable(&bdds.roots).len(),
            key: Some(key),
            solve: None,
        });
        Ok(BddArtifact {
            bdds,
            key,
            budget_lifted,
            wall,
            lift_trigger,
        })
    }
}

/// Stage 3: BDD → undirected-graph extraction (drop the 0-terminal, keep
/// literal-labeled edges), keyed off the BDD artifact so a γ sweep
/// extracts once.
pub struct GraphExtractPass;

impl Pass<(&Arc<NetworkBdds>, ArtifactKey)> for GraphExtractPass {
    type Output = Arc<BddGraph>;

    fn kind(&self) -> StageKind {
        StageKind::GraphExtract
    }

    fn run_with_budget(
        &self,
        session: &Session,
        (bdds, bdd_key): (&Arc<NetworkBdds>, ArtifactKey),
        _budget: &Budget,
    ) -> Result<Arc<BddGraph>, CompactError> {
        let sw = session.budget().stopwatch();
        let key = graph_key(bdd_key);
        let ticket = match session.claim_graph(key) {
            Claim::Ready(graph) => {
                session.record(StageRecord {
                    kind: StageKind::GraphExtract,
                    wall: sw.elapsed(),
                    cache: CacheOutcome::Hit,
                    items: graph.num_nodes(),
                    key: Some(key),
                    solve: None,
                });
                return Ok(graph);
            }
            Claim::Build(ticket) => ticket,
        };
        let graph = Arc::new(BddGraph::from_bdds(bdds));
        session.store_graph(key, Arc::clone(&graph));
        drop(ticket); // publish before waking claim waiters
        session.record(StageRecord {
            kind: StageKind::GraphExtract,
            wall: sw.elapsed(),
            cache: CacheOutcome::Miss,
            items: graph.num_nodes(),
            key: Some(key),
            solve: None,
        });
        Ok(graph)
    }
}

/// Stages 4–5: the supervised VH-labeling degradation ladder plus crossbar
/// mapping. One pass because the ladder interleaves them; records separate
/// [`StageKind::VhLabel`] and [`StageKind::Map`] trace entries.
///
/// Labeling artifacts are cached under [`label_key`] when the outcome is
/// budget-independent (proven optimal, or a deterministic heuristic
/// strategy): a repeated sweep over the same graph and strategy maps a
/// cached labeling instead of re-running the solver. Exact solves over a
/// graph the session has already labeled (at any γ) are seeded with the
/// previous labeling as a branch & bound warm start.
pub struct LadderPass<'c> {
    /// The synthesis configuration (strategy, alignment).
    pub config: &'c Config,
}

impl<'c> LadderPass<'c> {
    /// Ships a cache-served labeling: re-map it (mapping is cheap and
    /// uncached) and reconstruct a [`LadderOutcome`] with zero label wall.
    fn ship_cached(
        &self,
        session: &Session,
        graph: &BddGraph,
        names: &[String],
        budget: &Budget,
        key: ArtifactKey,
        artifact: &LabelArtifact,
    ) -> Result<LadderOutcome, CompactError> {
        session.record(StageRecord {
            kind: StageKind::VhLabel,
            wall: std::time::Duration::ZERO,
            cache: CacheOutcome::Hit,
            items: graph.num_nodes(),
            key: Some(key),
            solve: Some(SolveStats {
                nodes: 0,
                gap: artifact.relative_gap,
                warm_start: None,
            }),
        });
        let map_sw = Stopwatch::unbudgeted();
        let crossbar = map_to_crossbar(graph, &artifact.labeling, names)
            .map_err(|e| CompactError::Synthesis(format!("cached labeling failed to map: {e}")))?;
        let map_wall = map_sw.elapsed();
        let metrics = CrossbarMetrics::of(&crossbar);
        session.record(StageRecord {
            kind: StageKind::Map,
            wall: map_wall,
            cache: CacheOutcome::Uncached,
            items: metrics.active_devices,
            key: None,
            solve: None,
        });
        Ok(LadderOutcome {
            crossbar,
            labeling: artifact.labeling.clone(),
            metrics,
            rung: artifact.rung,
            degraded: false,
            optimal: artifact.optimal,
            relative_gap: artifact.relative_gap,
            trace: None,
            attempts: vec![StageAttempt {
                rung: artifact.rung,
                wall: std::time::Duration::ZERO,
                trigger: None,
            }],
            exhausted: budget.check().err(),
            label_wall: std::time::Duration::ZERO,
            map_wall,
            solver_nodes: 0,
            warm_start: None,
            from_cache: true,
            oct: None,
        })
    }
}

impl<'c> Pass<(&BddGraph, ArtifactKey, &[String], Option<Trigger>)> for LadderPass<'c> {
    type Output = LadderOutcome;

    fn kind(&self) -> StageKind {
        StageKind::VhLabel
    }

    fn run_with_budget(
        &self,
        session: &Session,
        (graph, graph_key, names, bdd_trigger): (
            &BddGraph,
            ArtifactKey,
            &[String],
            Option<Trigger>,
        ),
        budget: &Budget,
    ) -> Result<LadderOutcome, CompactError> {
        let key = label_key(graph_key, self.config);
        // Single-flight claim: if a sibling is solving the same point we
        // wait it out; if its outcome was not cacheable, we solve too.
        let ticket = match session.claim_label(key) {
            Claim::Ready(artifact) => {
                return self.ship_cached(session, graph, names, budget, key, &artifact)
            }
            Claim::Build(ticket) => ticket,
        };
        let warm = session.warm_hint(graph_key);
        let oct_hint = session.oct_hint(graph_key);
        let outcome = run_ladder(
            graph,
            self.config,
            budget,
            names,
            bdd_trigger,
            warm.as_ref(),
            oct_hint.as_deref(),
        )?;
        // Publish budget-independent outcomes: proven optimal, or a
        // deterministic heuristic strategy (no solver, no clock).
        let deterministic = matches!(
            self.config.strategy,
            crate::pipeline::VhStrategy::Heuristic { .. } | crate::pipeline::VhStrategy::Staircase
        );
        let cacheable = outcome.optimal || deterministic;
        if cacheable {
            session.store_label(
                key,
                Arc::new(LabelArtifact {
                    labeling: outcome.labeling.clone(),
                    optimal: outcome.optimal,
                    relative_gap: outcome.relative_gap,
                    rung: outcome.rung,
                }),
            );
        }
        drop(ticket); // publish (or release) before waking claim waiters
                      // Any shipped labeling seeds later solves over this graph; a fresh
                      // proven-optimal OCT (γ-independent) serves every later sweep point.
        session.offer_warm_hint(graph_key, outcome.labeling.clone());
        if let Some(oct) = &outcome.oct {
            session.offer_oct_hint(graph_key, Arc::new(oct.clone()));
        }
        session.record(StageRecord {
            kind: StageKind::VhLabel,
            wall: outcome.label_wall,
            cache: if cacheable {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Uncached
            },
            items: graph.num_nodes(),
            key: Some(key),
            solve: Some(SolveStats {
                nodes: outcome.solver_nodes,
                gap: outcome.relative_gap,
                warm_start: outcome.warm_start,
            }),
        });
        session.record(StageRecord {
            kind: StageKind::Map,
            wall: outcome.map_wall,
            cache: CacheOutcome::Uncached,
            items: outcome.metrics.active_devices,
            key: None,
            solve: None,
        });
        Ok(outcome)
    }
}

/// Stage 6 (opt-in via [`crate::session::SessionConfig::verify_samples`]):
/// functional verification of the mapped crossbar against the source
/// network.
pub struct VerifyPass {
    /// Assignments to check (exhaustive when the input count is small).
    pub samples: usize,
}

impl Pass<(&Crossbar, &Network)> for VerifyPass {
    type Output = ();

    fn kind(&self) -> StageKind {
        StageKind::Verify
    }

    fn run_with_budget(
        &self,
        session: &Session,
        (crossbar, network): (&Crossbar, &Network),
        _budget: &Budget,
    ) -> Result<(), CompactError> {
        let sw = session.budget().stopwatch();
        // Deliberately unbudgeted: a degraded-but-valid design must not
        // turn into an error because the budget ran out before the check.
        let report = verify_functional(crossbar, network, self.samples)
            .map_err(|e| CompactError::Synthesis(format!("verification failed to run: {e}")))?;
        session.record(StageRecord {
            kind: StageKind::Verify,
            wall: sw.elapsed(),
            cache: CacheOutcome::Uncached,
            items: report.checked,
            key: None,
            solve: None,
        });
        if !report.is_valid() {
            return Err(CompactError::Synthesis(format!(
                "synthesized crossbar disagrees with the network on {} of {} assignments",
                report.mismatches.len(),
                report.checked
            )));
        }
        Ok(())
    }
}

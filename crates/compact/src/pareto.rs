//! γ-sweep and non-dominated design extraction (Figure 9 of the paper).

use std::time::Duration;

use flowc_logic::Network;

use crate::pipeline::{Config, VhStrategy};
use crate::session::{synthesize_in, Session};

/// One point of the sweep: the γ that produced it and the design's shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The γ value used.
    pub gamma: f64,
    /// Wordlines of the design.
    pub rows: usize,
    /// Bitlines of the design.
    pub cols: usize,
}

/// Sweeps γ over `steps` evenly spaced values in `[0, 1]` and returns every
/// produced design shape. Runs through a one-shot [`Session`], so the BDD
/// and graph are built once and every γ point reuses them; to share the
/// artifacts with other work too, use [`gamma_sweep_in`].
pub fn gamma_sweep(network: &Network, steps: usize, time_limit: Duration) -> Vec<SweepPoint> {
    gamma_sweep_in(&Session::default(), network, steps, time_limit)
}

/// [`gamma_sweep`] inside an existing [`Session`]: every γ point varies
/// only the labeling objective, so the session serves one BDD build and
/// one graph extraction to the whole sweep. Points run in descending γ
/// order (γ = 1 closes fastest) so each point's optimum warm-starts the
/// next through the session's warm-hint registry; results are still
/// returned in ascending γ order.
pub fn gamma_sweep_in(
    session: &Session,
    network: &Network,
    steps: usize,
    time_limit: Duration,
) -> Vec<SweepPoint> {
    let steps = steps.max(2);
    let mut points: Vec<SweepPoint> = (0..steps)
        .rev()
        .filter_map(|i| {
            let gamma = i as f64 / (steps - 1) as f64;
            let cfg = Config {
                strategy: VhStrategy::Weighted {
                    gamma,
                    time_limit,
                    exact_node_limit: 80,
                },
                align: true,
                var_order: None,
                label_threads: 1,
            };
            // The supervised pipeline only errs on internal bugs; a failed
            // γ point degrades the sweep's resolution, not the caller.
            let r = synthesize_in(session, network, &cfg).ok()?;
            Some(SweepPoint {
                gamma,
                rows: r.stats.rows,
                cols: r.stats.cols,
            })
        })
        .collect();
    points.reverse();
    points
}

/// Sweeps the *aspect ratio* at (near-)minimal semiperimeter: starting from
/// the minimum odd cycle transversal, re-orients the bipartite components
/// toward a range of row targets via the boxed orientation DP. Together
/// with [`gamma_sweep`] this traces the rows-vs-columns frontier the
/// paper's Figure 9 plots (its cavlc frontier mixes shapes like (233, 233)
/// and (239, 220) — same mechanism: equal-S designs with different splits).
pub fn aspect_sweep(network: &Network, steps: usize, time_limit: Duration) -> Vec<SweepPoint> {
    use crate::balance::targeted_labeling;
    use crate::preprocess::BddGraph;

    let bdds = flowc_bdd::build_sbdd(network, None);
    let graph = BddGraph::from_bdds(&bdds);
    let oct = flowc_graph::odd_cycle_transversal(
        &graph.graph,
        &flowc_graph::OctConfig {
            time_limit,
            threads: 1,
        },
    );
    let vh: std::collections::HashSet<usize> = oct.transversal.into_iter().collect();
    // The feasible row range is bracketed by the balanced solution (rows ≈
    // S/2) and the all-rows extreme (rows ≈ S − #VH); sweep targets across
    // it in both directions.
    let balanced = crate::balance::balanced_labeling(&graph, &vh, true);
    let s = balanced.stats().semiperimeter;
    let steps = steps.max(2);
    let mut out = Vec::new();
    for i in 0..steps {
        let target = s * (i + 1) / (2 * steps); // from ~0 up to S/2
        for rows_target in [target, s - target] {
            let mut l = targeted_labeling(&graph, &vh, true, rows_target);
            l.enforce_alignment(&graph);
            let st = l.stats();
            out.push(SweepPoint {
                gamma: f64::NAN, // not produced by a γ value
                rows: st.rows,
                cols: st.cols,
            });
        }
    }
    out
}

/// The combined Figure 9 frontier: γ sweep plus aspect sweep, filtered to
/// the non-dominated set.
pub fn frontier(network: &Network, steps: usize, time_limit: Duration) -> Vec<SweepPoint> {
    let mut points = gamma_sweep(network, steps, time_limit);
    points.extend(aspect_sweep(network, steps, time_limit));
    non_dominated(&points)
}

/// Filters a sweep down to the non-dominated designs: a design is kept iff
/// no other design has both fewer (or equal) rows *and* fewer (or equal)
/// columns with at least one strict improvement. Duplicate shapes are
/// collapsed. Results are sorted by rows ascending.
pub fn non_dominated(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let mut kept: Vec<SweepPoint> = Vec::new();
    for &p in points {
        if kept
            .iter()
            .any(|q| q.rows <= p.rows && q.cols <= p.cols && (q.rows < p.rows || q.cols < p.cols))
        {
            continue;
        }
        // Remove points now dominated by p, and duplicates of p's shape.
        kept.retain(|q| {
            !(p.rows <= q.rows && p.cols <= q.cols && (p.rows < q.rows || p.cols < q.cols))
                && !(q.rows == p.rows && q.cols == p.cols)
        });
        kept.push(p);
    }
    kept.sort_by_key(|p| (p.rows, p.cols));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::{GateKind, Network};

    #[test]
    fn non_domination_filter() {
        let pts = vec![
            SweepPoint {
                gamma: 0.0,
                rows: 5,
                cols: 5,
            },
            SweepPoint {
                gamma: 0.3,
                rows: 4,
                cols: 6,
            },
            SweepPoint {
                gamma: 0.5,
                rows: 6,
                cols: 6,
            }, // dominated by (5,5)
            SweepPoint {
                gamma: 0.7,
                rows: 4,
                cols: 6,
            }, // duplicate shape
            SweepPoint {
                gamma: 1.0,
                rows: 3,
                cols: 8,
            },
        ];
        let nd = non_dominated(&pts);
        let shapes: Vec<(usize, usize)> = nd.iter().map(|p| (p.rows, p.cols)).collect();
        assert_eq!(shapes, vec![(3, 8), (4, 6), (5, 5)]);
    }

    #[test]
    fn aspect_sweep_traces_same_s_shapes() {
        // int2float has many components, so the orientation DP reaches a
        // wide range of row splits at the same semiperimeter.
        let b = flowc_logic::bench_suite::by_name("int2float").unwrap();
        let n = b.network().unwrap();
        let pts = aspect_sweep(&n, 6, Duration::from_secs(10));
        assert!(!pts.is_empty());
        let s_values: std::collections::HashSet<usize> =
            pts.iter().map(|p| p.rows + p.cols).collect();
        // All points share (near-)minimal semiperimeter.
        assert!(
            s_values.len() <= 3,
            "aspect sweep changes shape, not S: {s_values:?}"
        );
        let distinct_shapes: std::collections::HashSet<(usize, usize)> =
            pts.iter().map(|p| (p.rows, p.cols)).collect();
        // int2float's graph stays nearly connected after the transversal,
        // so its aspect freedom is small — the paper's Figure 9 frontier
        // for int2float likewise has only 3 points.
        assert!(
            distinct_shapes.len() >= 2,
            "expected at least two aspect ratios, got {distinct_shapes:?}"
        );
    }

    #[test]
    fn combined_frontier_is_nonempty_and_consistent() {
        let b = flowc_logic::bench_suite::by_name("int2float").unwrap();
        let n = b.network().unwrap();
        let f = frontier(&n, 5, Duration::from_secs(10));
        assert!(f.len() >= 2, "frontier: {f:?}");
        for w in f.windows(2) {
            assert!(w[0].rows < w[1].rows && w[0].cols > w[1].cols);
        }
    }

    #[test]
    fn gamma_sweep_shares_one_bdd_build() {
        use crate::session::StageKind;
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        let session = Session::default();
        let pts = gamma_sweep_in(&session, &n, 4, Duration::from_secs(5));
        assert_eq!(pts.len(), 4);
        let trace = session.trace();
        assert_eq!(trace.builds(StageKind::BddBuild), 1);
        assert_eq!(trace.hits(StageKind::BddBuild), 3);
        assert_eq!(trace.builds(StageKind::GraphExtract), 1);
    }

    #[test]
    fn sweep_produces_valid_frontier() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        let pts = gamma_sweep(&n, 3, Duration::from_secs(5));
        assert_eq!(pts.len(), 3);
        let nd = non_dominated(&pts);
        assert!(!nd.is_empty());
        // The frontier is strictly decreasing in cols as rows increase
        // (otherwise one point would dominate the other).
        for w in nd.windows(2) {
            assert!(w[0].rows < w[1].rows);
            assert!(w[0].cols > w[1].cols);
        }
    }
}

//! Crossbar mapping (Section V-C): bind labelled graph nodes to wordlines
//! and bitlines, program each BDD edge's literal into the junction between
//! its endpoints' wires, and bridge every `VH` node's wire pair with an
//! always-on memristor. Ports follow the paper's convention: the 1-terminal
//! drives the bottom-most wordline, outputs are sensed on the top rows.

use std::fmt;

use flowc_xbar::{Crossbar, DeviceAssignment};

use crate::labeling::Labeling;
use crate::preprocess::BddGraph;

/// Errors from crossbar mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The labeling violates a connection constraint on the given edge.
    UnrealizableEdge(usize, usize),
    /// The labeling is missing a wordline on a root or the terminal
    /// (alignment constraints not enforced before mapping).
    Misaligned(usize),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnrealizableEdge(u, v) => {
                write!(f, "edge ({u}, {v}) cannot be realized by the labeling")
            }
            MapError::Misaligned(v) => {
                write!(f, "node {v} is a port but its label provides no wordline")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Maps a labelled BDD graph onto a crossbar. `output_names[i]` names the
/// `i`-th output (parallel to `graph.roots`).
///
/// # Errors
///
/// Returns [`MapError::UnrealizableEdge`] if the labeling is invalid, or
/// [`MapError::Misaligned`] if a root or the terminal lacks a wordline.
pub fn map_to_crossbar(
    graph: &BddGraph,
    labeling: &Labeling,
    output_names: &[String],
) -> Result<Crossbar, MapError> {
    let n = graph.num_nodes();
    // Row order: output roots first (top), then the remaining wordline
    // nodes, then the terminal (bottom, driven). Column order is free.
    let mut row_of = vec![usize::MAX; n];
    let mut col_of = vec![usize::MAX; n];
    let mut row_nodes: Vec<usize> = Vec::new();
    let mut is_root = vec![false; n];
    for &r in graph.roots.iter().flatten() {
        is_root[r] = true;
    }
    for (v, &root) in is_root.iter().enumerate() {
        if root && Some(v) != graph.terminal {
            if !labeling.label(v).has_h() {
                return Err(MapError::Misaligned(v));
            }
            row_of[v] = row_nodes.len();
            row_nodes.push(v);
        }
    }
    for (v, row) in row_of.iter_mut().enumerate() {
        if labeling.label(v).has_h() && *row == usize::MAX && Some(v) != graph.terminal {
            *row = row_nodes.len();
            row_nodes.push(v);
        }
    }
    if let Some(t) = graph.terminal {
        if !labeling.label(t).has_h() {
            return Err(MapError::Misaligned(t));
        }
        row_of[t] = row_nodes.len();
        row_nodes.push(t);
    }
    // Constant-0 outputs get dedicated, unconnected wordlines at the very
    // top (they must never conduct).
    let const0_outputs: Vec<usize> = graph
        .roots
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    let mut col_nodes: Vec<usize> = Vec::new();
    for (v, col) in col_of.iter_mut().enumerate() {
        if labeling.label(v).has_v() {
            *col = col_nodes.len();
            col_nodes.push(v);
        }
    }

    let extra_rows = const0_outputs.len() + usize::from(graph.terminal.is_none());
    let rows = row_nodes.len() + extra_rows;
    let cols = col_nodes.len().max(1);
    let mut xbar = Crossbar::new(rows, cols, graph.num_inputs);

    // Labels for debugging.
    for (r, &v) in row_nodes.iter().enumerate() {
        let _ = xbar.set_row_label(r, graph.node_names[v].clone());
    }
    for (c, &v) in col_nodes.iter().enumerate() {
        let _ = xbar.set_col_label(c, graph.node_names[v].clone());
    }

    // VH bridges.
    for v in 0..n {
        if labeling.label(v).has_h() && labeling.label(v).has_v() {
            xbar.set(row_of[v], col_of[v], DeviceAssignment::On)
                .expect("indices in range by construction");
        }
    }
    // Edge devices.
    for &(u, v) in graph.graph.edges() {
        let lit = graph.labels[&(u.min(v), u.max(v))];
        let assignment = DeviceAssignment::Literal {
            input: lit.input,
            negated: lit.negated,
        };
        let (lu, lv) = (labeling.label(u), labeling.label(v));
        let (row, col) = if lu.has_h() && lv.has_v() {
            (row_of[u], col_of[v])
        } else if lv.has_h() && lu.has_v() {
            (row_of[v], col_of[u])
        } else {
            return Err(MapError::UnrealizableEdge(u, v));
        };
        debug_assert_eq!(
            xbar.get(row, col).expect("in range"),
            DeviceAssignment::Off,
            "junction ({row},{col}) assigned twice"
        );
        xbar.set(row, col, assignment).expect("indices in range");
    }

    // Ports: the terminal wordline is driven; when the whole forest is
    // constant-0 there is no terminal, and a dedicated dead input row is
    // used instead.
    let input_row = match graph.terminal {
        Some(t) => row_of[t],
        None => rows - 1,
    };
    xbar.set_input_row(input_row).expect("in range");
    let mut next_const0_row = row_nodes.len();
    for (i, root) in graph.roots.iter().enumerate() {
        let name = output_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("out{i}"));
        match root {
            Some(v) => xbar.add_output(name, row_of[*v]).expect("in range"),
            None => {
                xbar.add_output(name, next_const0_row).expect("in range");
                next_const0_row += 1;
            }
        }
    }
    Ok(xbar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::VhLabel;
    use crate::oct_method::{min_semiperimeter, OctMethodConfig};
    use flowc_bdd::build_sbdd;
    use flowc_logic::{GateKind, Network};
    use flowc_xbar::verify::verify_functional;

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn fig2_end_to_end_valid() {
        let n = fig2_network();
        let g = crate::preprocess::BddGraph::from_bdds(&build_sbdd(&n, None));
        let r = min_semiperimeter(&g, &OctMethodConfig::default());
        let xbar = map_to_crossbar(&g, &r.labeling, &["f".to_string()]).unwrap();
        let report = verify_functional(&xbar, &n, 64).unwrap();
        assert!(report.is_valid(), "mismatches: {:?}", report.mismatches);
        // Port conventions.
        assert_eq!(xbar.input_row(), Some(xbar.rows() - 1), "input at bottom");
        assert_eq!(xbar.outputs()[0].row, 0, "output at top");
    }

    #[test]
    fn unrealizable_labeling_rejected() {
        let n = fig2_network();
        let g = crate::preprocess::BddGraph::from_bdds(&build_sbdd(&n, None));
        let l = crate::labeling::Labeling::new(vec![VhLabel::H; g.num_nodes()]);
        assert!(matches!(
            map_to_crossbar(&g, &l, &[]),
            Err(MapError::UnrealizableEdge(_, _))
        ));
    }

    #[test]
    fn misaligned_root_rejected() {
        let n = fig2_network();
        let g = crate::preprocess::BddGraph::from_bdds(&build_sbdd(&n, None));
        let mut r = min_semiperimeter(&g, &OctMethodConfig::default());
        let root = g.roots[0].unwrap();
        r.labeling.set(root, VhLabel::V);
        assert!(matches!(
            map_to_crossbar(&g, &r.labeling, &[]),
            Err(MapError::Misaligned(_))
        ));
    }

    #[test]
    fn constant_outputs_mapped() {
        let mut n = Network::new("consts");
        let a = n.add_input("a");
        let f = n.add_gate(GateKind::Buf, &[a], "f").unwrap();
        let z = n.add_const0("z");
        let o = n.add_const1("o");
        n.mark_output(f);
        n.mark_output(z);
        n.mark_output(o);
        let g = crate::preprocess::BddGraph::from_bdds(&build_sbdd(&n, None));
        let r = min_semiperimeter(&g, &OctMethodConfig::default());
        let xbar = map_to_crossbar(&g, &r.labeling, &["f".into(), "z".into(), "o".into()]).unwrap();
        for a_val in [false, true] {
            let out = xbar.evaluate(&[a_val]).unwrap();
            assert_eq!(out, vec![a_val, false, true], "a={a_val}");
        }
    }

    #[test]
    fn metrics_match_labeling_stats() {
        let n = fig2_network();
        let g = crate::preprocess::BddGraph::from_bdds(&build_sbdd(&n, None));
        let r = min_semiperimeter(&g, &OctMethodConfig::default());
        let xbar = map_to_crossbar(&g, &r.labeling, &["f".to_string()]).unwrap();
        let s = r.labeling.stats();
        assert_eq!(xbar.rows(), s.rows);
        assert_eq!(xbar.cols(), s.cols);
        let m = flowc_xbar::metrics::CrossbarMetrics::of(&xbar);
        assert_eq!(m.semiperimeter, s.semiperimeter);
        assert_eq!(m.max_dimension, s.max_dimension);
        // Active devices = BDD edges; bridges = VH count.
        assert_eq!(m.active_devices, g.num_edges());
        assert_eq!(m.bridge_devices, s.num_vh);
    }
}

//! Minimal-semiperimeter VH-labeling (Section VI-A): the minimum set of
//! `VH` nodes is a minimum odd cycle transversal, found through a minimum
//! vertex cover of `G □ K₂` (Lemma 1); the bipartite remainder is 2-colored
//! and oriented by the balancing/alignment pass.

use std::collections::HashSet;
use std::time::Duration;

use flowc_budget::Budget;
use flowc_graph::{oct_heuristic, odd_cycle_transversal_budgeted, OctConfig};

use crate::balance::balanced_labeling;
use crate::labeling::Labeling;
use crate::preprocess::BddGraph;

/// Configuration for the OCT-based solver.
#[derive(Debug, Clone)]
pub struct OctMethodConfig {
    /// Wall-clock budget for the exact vertex-cover solve.
    pub time_limit: Duration,
    /// Above this node count the greedy OCT heuristic is used instead of
    /// the exact Lemma-1 solve (documented deviation: the paper runs CPLEX
    /// for up to three hours; see DESIGN.md §3).
    pub exact_node_limit: usize,
    /// Enforce the paper's Eq. 7 alignment constraints.
    pub align: bool,
}

impl Default for OctMethodConfig {
    fn default() -> Self {
        OctMethodConfig {
            time_limit: Duration::from_secs(30),
            exact_node_limit: 20_000,
            align: true,
        }
    }
}

/// Result of the minimal-semiperimeter labeling.
#[derive(Debug, Clone)]
pub struct OctMethodResult {
    /// The labeling (valid and, when requested, aligned).
    pub labeling: Labeling,
    /// Whether the transversal was proven minimum.
    pub optimal: bool,
    /// Size of the transversal used (`k`, so `S = n + k` before alignment
    /// upgrades).
    pub oct_size: usize,
    /// A valid lower bound on the minimum transversal size.
    pub oct_lower_bound: usize,
}

/// Solves the VH-labeling problem for minimal semiperimeter (Eq. 2).
pub fn min_semiperimeter(graph: &BddGraph, config: &OctMethodConfig) -> OctMethodResult {
    min_semiperimeter_budgeted(graph, config, &Budget::unlimited())
}

/// [`min_semiperimeter`] under a shared [`Budget`]: the exact Lemma-1 solve
/// checks the budget cooperatively and degrades to a greedy-backed (valid,
/// non-optimal) transversal on exhaustion.
pub fn min_semiperimeter_budgeted(
    graph: &BddGraph,
    config: &OctMethodConfig,
    budget: &Budget,
) -> OctMethodResult {
    let (transversal, optimal, lower_bound) = if graph.num_nodes() <= config.exact_node_limit {
        let r = odd_cycle_transversal_budgeted(
            &graph.graph,
            &OctConfig {
                time_limit: budget.remaining_or(config.time_limit),
                threads: 1,
            },
            budget,
        );
        (r.transversal, r.optimal, r.lower_bound)
    } else {
        let t = oct_heuristic(&graph.graph);
        (t, false, 0)
    };
    let oct_size = transversal.len();
    let vh: HashSet<usize> = transversal.into_iter().collect();
    let labeling = balanced_labeling(graph, &vh, config.align);
    debug_assert!(labeling.is_valid(graph));
    OctMethodResult {
        labeling,
        optimal,
        oct_size,
        oct_lower_bound: lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_bdd::build_sbdd;
    use flowc_logic::{GateKind, Network};

    fn fig2() -> BddGraph {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        BddGraph::from_bdds(&build_sbdd(&n, None))
    }

    #[test]
    fn fig2_gets_semiperimeter_n_plus_1() {
        // The Fig. 2 BDD graph has one triangle: k = 1, S = n + 1 = 5
        // (alignment is satisfiable without extra upgrades here when the
        // transversal breaks the triangle).
        let g = fig2();
        let r = min_semiperimeter(&g, &OctMethodConfig::default());
        assert!(r.optimal);
        assert_eq!(r.oct_size, 1);
        assert!(r.labeling.is_valid(&g));
        assert!(r.labeling.is_aligned(&g));
        let s = r.labeling.stats();
        // S = n + k (+ alignment upgrades, which this instance can avoid or
        // pay at most 1 for depending on which OCT vertex was chosen).
        assert!(s.semiperimeter <= g.num_nodes() + 2);
        assert!(s.semiperimeter > g.num_nodes());
    }

    #[test]
    fn bipartite_instance_needs_no_vh() {
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
        n.mark_output(f);
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let r = min_semiperimeter(
            &g,
            &OctMethodConfig {
                align: false,
                ..Default::default()
            },
        );
        assert!(r.optimal);
        assert_eq!(r.oct_size, 0);
        assert_eq!(r.labeling.stats().semiperimeter, g.num_nodes());
    }

    #[test]
    fn heuristic_mode_is_still_valid() {
        let g = fig2();
        let r = min_semiperimeter(
            &g,
            &OctMethodConfig {
                exact_node_limit: 0, // force the heuristic path
                ..Default::default()
            },
        );
        assert!(!r.optimal);
        assert!(r.labeling.is_valid(&g));
        assert!(r.labeling.is_aligned(&g));
    }
}

//! Weighted-objective VH-labeling (Section VI-B): minimize
//! `γ·S + (1−γ)·D` over the labeling.
//!
//! Two solution paths share the MIP *formulation* of Eq. 4:
//!
//! - **Exact**: the model is handed to the [`flowc_milp`] branch & bound
//!   with LP bounding. This path proves optimality but the dense LP limits
//!   it to small graphs (the paper's CPLEX runs hit the same wall at larger
//!   sizes — three hours without closing the gap, Figure 11).
//! - **Anytime**: a staged optimizer seeded by the Section VI-A transversal:
//!   greedy OCT incumbent → exact (or time-limited) OCT with its lower
//!   bound → `VH`-addition hill climbing that trades semiperimeter for
//!   maximum dimension (the paper's Figure 7 case). Every stage is recorded
//!   in a [`SolveTrace`], reproducing the incumbent/bound/gap trajectories
//!   of Figures 10 and 11.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use flowc_budget::Budget;
use flowc_graph::{oct_heuristic, odd_cycle_transversal_budgeted, OctConfig, OctResult};
use flowc_milp::metrics::{HybridBounder, VhBounder, VhLayout};
use flowc_milp::{BranchBound, Model, Sense, SolveStatus, SolveTrace, TracePoint, VarId};

use crate::balance::balanced_labeling;
use crate::labeling::{Labeling, VhLabel};
use crate::preprocess::BddGraph;

/// Configuration for the weighted solver.
#[derive(Debug, Clone)]
pub struct MipConfig {
    /// The trade-off weight γ of Eq. 1 (1 = semiperimeter only,
    /// 0 = maximum dimension only).
    pub gamma: f64,
    /// Enforce the Eq. 7 alignment constraints.
    pub align: bool,
    /// Total wall-clock budget.
    pub time_limit: Duration,
    /// Maximum node count for the exact LP-based MIP path.
    pub exact_node_limit: usize,
    /// Worker threads for the exact branch & bound (1 = sequential).
    pub threads: usize,
}

impl Default for MipConfig {
    fn default() -> Self {
        MipConfig {
            gamma: 0.5,
            align: true,
            time_limit: Duration::from_secs(30),
            exact_node_limit: 80,
            threads: 1,
        }
    }
}

/// Variable handles of the Eq. 4 model.
#[derive(Debug, Clone)]
pub struct MipVars {
    /// `x_i^V`: node `i` is mapped to a bitline.
    pub xv: Vec<VarId>,
    /// `x_i^H`: node `i` is mapped to a wordline.
    pub xh: Vec<VarId>,
    /// Orientation helper per graph edge (model order = edge order).
    pub orient: Vec<VarId>,
    /// The continuous `D = max(R, C)` variable.
    pub d: VarId,
}

/// Outcome of the weighted solve.
#[derive(Debug, Clone)]
pub struct MipOutcome {
    /// The best labeling found (valid; aligned when requested).
    pub labeling: Labeling,
    /// Whether the labeling was proven optimal for the weighted objective.
    pub optimal: bool,
    /// Objective value of the labeling.
    pub objective: f64,
    /// Best proven lower bound on the optimum.
    pub best_bound: f64,
    /// CPLEX-style relative gap at termination.
    pub relative_gap: f64,
    /// Incumbent/bound/gap trajectory (Figures 10/11).
    pub trace: SolveTrace,
    /// Branch & bound nodes explored (0 on the anytime path).
    pub nodes: u64,
    /// Warm-start outcome: `None` when no warm start was offered,
    /// `Some(accepted)` otherwise.
    pub warm_start: Option<bool>,
}

/// Builds the Eq. 4 MIP: indicator variables per node, helper orientation
/// variables per edge, aggregate `R`, `C`, `D` with `D ≥ R`, `D ≥ C`, and
/// the per-edge disjunctive connection constraints. The Eq. 7 alignment
/// constraints are added when `align` is set.
pub fn build_model(graph: &BddGraph, gamma: f64, align: bool) -> (Model, MipVars) {
    let n = graph.num_nodes();
    let mut m = Model::new();
    // Objective: γ·S + (1−γ)·D with S = Σ(x_i^V + x_i^H).
    let xv: Vec<VarId> = (0..n)
        .map(|i| m.add_binary(format!("xv{i}"), gamma))
        .collect();
    let xh: Vec<VarId> = (0..n)
        .map(|i| m.add_binary(format!("xh{i}"), gamma))
        .collect();
    let d = m.add_continuous("D", 0.0, f64::INFINITY, 1.0 - gamma);
    // D >= R = Σ x_i^H  and  D >= C = Σ x_i^V.
    let mut r_terms: Vec<(VarId, f64)> = xh.iter().map(|&v| (v, -1.0)).collect();
    r_terms.push((d, 1.0));
    m.add_constraint(&r_terms, Sense::Ge, 0.0);
    let mut c_terms: Vec<(VarId, f64)> = xv.iter().map(|&v| (v, -1.0)).collect();
    c_terms.push((d, 1.0));
    m.add_constraint(&c_terms, Sense::Ge, 0.0);
    // Every node is mapped to at least one wire.
    for i in 0..n {
        m.add_constraint(&[(xv[i], 1.0), (xh[i], 1.0)], Sense::Ge, 1.0);
    }
    // Connection constraints with an orientation helper per edge:
    //   x_i^V + x_j^H >= 2 − 2·x_ij   and   x_i^H + x_j^V >= 2·x_ij.
    let mut orient = Vec::with_capacity(graph.num_edges());
    for (e, &(i, j)) in graph.graph.edges().iter().enumerate() {
        let o = m.add_binary(format!("e{e}"), 0.0);
        m.add_constraint(&[(xv[i], 1.0), (xh[j], 1.0), (o, 2.0)], Sense::Ge, 2.0);
        m.add_constraint(&[(xh[i], 1.0), (xv[j], 1.0), (o, -2.0)], Sense::Ge, 0.0);
        // Orientation-free cover rows: whichever way the edge is oriented,
        // one endpoint is a bitline and the other a wordline, so the V-set
        // and the H-set are each vertex covers. The pair of big-M rows
        // above is vacuous in the LP until `o` is fixed (summing them
        // eliminates `o` into a row the coverage constraints imply); these
        // rows carry the edge structure into the relaxation — on the
        // König-integral (bipartite-ish) parts of a BDD graph they pull
        // the root bound up to the integer optimum — and give activity
        // propagation a cascade: fixing `xh_i = 0` forces `xh_j = 1`.
        m.add_constraint(&[(xv[i], 1.0), (xv[j], 1.0)], Sense::Ge, 1.0);
        m.add_constraint(&[(xh[i], 1.0), (xh[j], 1.0)], Sense::Ge, 1.0);
        orient.push(o);
    }
    // Odd-cycle cover cuts: every edge is V→H oriented, so the H-set and
    // the V-set are each vertex covers of the graph. A triangle needs at
    // least two members in any vertex cover, so Σ xh ≥ 2 and Σ xv ≥ 2 over
    // each triangle — valid rows that cut off the LP's half-integral
    // covers and close the relaxation's unit gap at the sweep extremes.
    {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j) in graph.graph.edges() {
            if i != j && !adj[i].contains(&j) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }
        for &(i, j) in graph.graph.edges() {
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            for &k in &adj[a] {
                if k > b && adj[b].binary_search(&k).is_ok() {
                    m.add_constraint(&[(xh[a], 1.0), (xh[b], 1.0), (xh[k], 1.0)], Sense::Ge, 2.0);
                    m.add_constraint(&[(xv[a], 1.0), (xv[b], 1.0), (xv[k], 1.0)], Sense::Ge, 2.0);
                }
            }
        }
    }
    // Alignment (Eq. 7): roots and terminal provide wordlines.
    if align {
        let mut targets: Vec<usize> = graph.roots.iter().flatten().copied().collect();
        if let Some(t) = graph.terminal {
            targets.push(t);
        }
        targets.sort_unstable();
        targets.dedup();
        for v in targets {
            m.add_constraint(&[(xh[v], 1.0)], Sense::Ge, 1.0);
        }
    }
    (m, MipVars { xv, xh, orient, d })
}

/// Describes the Eq. 4 model to the VH-specialized combinatorial bounder
/// of `flowc-milp` (column indices of every structural variable).
fn vh_layout(graph: &BddGraph, vars: &MipVars, gamma: f64) -> VhLayout {
    VhLayout {
        n: graph.num_nodes(),
        xv: vars.xv.iter().map(|v| v.index()).collect(),
        xh: vars.xh.iter().map(|v| v.index()).collect(),
        edges: graph
            .graph
            .edges()
            .iter()
            .zip(&vars.orient)
            .map(|(&(i, j), o)| (i, j, o.index()))
            .collect(),
        d_var: vars.d.index(),
        gamma,
    }
}

/// Encodes a known-valid labeling as a full assignment of the Eq. 4 model,
/// for use as a branch & bound warm start. Orientation helpers are set to
/// whichever disjunct the labeling satisfies, and `D = max(R, C)`.
pub fn warm_start_values(
    graph: &BddGraph,
    vars: &MipVars,
    num_vars: usize,
    labeling: &Labeling,
) -> Vec<f64> {
    let mut values = vec![0.0; num_vars];
    let mut rows = 0usize;
    let mut cols = 0usize;
    let has_v = |v: usize| matches!(labeling.label(v), VhLabel::V | VhLabel::Vh);
    let has_h = |v: usize| matches!(labeling.label(v), VhLabel::H | VhLabel::Vh);
    for v in 0..graph.num_nodes() {
        if has_v(v) {
            values[vars.xv[v].index()] = 1.0;
            cols += 1;
        }
        if has_h(v) {
            values[vars.xh[v].index()] = 1.0;
            rows += 1;
        }
    }
    for (&(i, j), o) in graph.graph.edges().iter().zip(&vars.orient) {
        // o = 0 requires xv_i ∧ xh_j; o = 1 requires xh_i ∧ xv_j.
        values[o.index()] = if has_v(i) && has_h(j) { 0.0 } else { 1.0 };
    }
    values[vars.d.index()] = rows.max(cols) as f64;
    values
}

/// Decodes a MIP solution into a labeling.
fn labeling_from_solution(vars: &MipVars, values: &[f64]) -> Labeling {
    let labels = vars
        .xv
        .iter()
        .zip(&vars.xh)
        .map(|(&v, &h)| {
            let has_v = values[v.index()] > 0.5;
            let has_h = values[h.index()] > 0.5;
            match (has_v, has_h) {
                (true, true) => VhLabel::Vh,
                (true, false) => VhLabel::V,
                (false, true) => VhLabel::H,
                (false, false) => VhLabel::Vh, // defensive; excluded by the model
            }
        })
        .collect();
    Labeling::new(labels)
}

/// `VH`-addition hill climbing (the paper's Figure 7 move): repeatedly try
/// upgrading a node to `VH`, re-balance, and keep the move when the weighted
/// objective improves. Returns the improved labeling and the number of
/// accepted moves.
pub fn hill_climb(
    graph: &BddGraph,
    start: &Labeling,
    gamma: f64,
    align: bool,
    deadline: Instant,
) -> (Labeling, usize) {
    hill_climb_traced(
        graph,
        start,
        gamma,
        align,
        deadline,
        &Budget::unlimited(),
        |_| {},
    )
}

/// [`hill_climb`] with a cooperative [`Budget`] (cancellation and deadline
/// checked per candidate move) and an observer invoked on every accepted
/// move (used to record solver convergence traces).
pub fn hill_climb_traced(
    graph: &BddGraph,
    start: &Labeling,
    gamma: f64,
    align: bool,
    deadline: Instant,
    budget: &Budget,
    mut on_improve: impl FnMut(&Labeling),
) -> (Labeling, usize) {
    let n = graph.num_nodes();
    let mut vh: HashSet<usize> = (0..n)
        .filter(|&v| matches!(start.label(v), VhLabel::Vh))
        .collect();
    let mut best = start.clone();
    let mut best_obj = best.stats().objective(gamma);
    let mut accepted = 0usize;
    if gamma >= 1.0 {
        return (best, 0); // adding VH nodes can only hurt S
    }
    loop {
        let mut improved = false;
        // Candidates: non-VH nodes, highest degree first (they reconnect the
        // most components when removed).
        let mut candidates: Vec<usize> = (0..n).filter(|v| !vh.contains(v)).collect();
        candidates.sort_by_key(|&v| std::cmp::Reverse(graph.graph.degree(v)));
        for v in candidates {
            if Instant::now() >= deadline || budget.check().is_err() {
                return (best, accepted);
            }
            vh.insert(v);
            let cand = balanced_labeling(graph, &vh, align);
            let obj = cand.stats().objective(gamma);
            if obj + 1e-9 < best_obj {
                best = cand;
                best_obj = obj;
                accepted += 1;
                improved = true;
                on_improve(&best);
            } else {
                vh.remove(&v);
            }
        }
        if !improved {
            return (best, accepted);
        }
    }
}

/// Solves the weighted VH-labeling problem. Small graphs (at most
/// `exact_node_limit` nodes) go through the exact Eq. 4 MIP; larger graphs
/// use the staged anytime path. Either way the returned trace records the
/// incumbent/bound/gap trajectory.
pub fn solve(graph: &BddGraph, config: &MipConfig) -> MipOutcome {
    solve_budgeted(graph, config, &Budget::unlimited())
}

/// [`solve`] under a shared [`Budget`]: the branch & bound, the OCT stage,
/// and the hill climb all check the budget's deadline and cancellation
/// token cooperatively.
pub fn solve_budgeted(graph: &BddGraph, config: &MipConfig, budget: &Budget) -> MipOutcome {
    if graph.num_nodes() <= config.exact_node_limit {
        if let Some(out) = solve_exact_budgeted(graph, config, budget) {
            return out;
        }
        // Infeasibility cannot occur (all-VH is always feasible); fall
        // through to the anytime path defensively.
    }
    solve_anytime_budgeted(graph, config, budget)
}

/// The exact Eq. 4 MIP path alone. Returns `None` when the graph exceeds
/// `config.exact_node_limit` or the branch & bound fails to produce any
/// incumbent before its budget runs out — callers fall back to
/// [`solve_anytime_budgeted`].
pub fn solve_exact_budgeted(
    graph: &BddGraph,
    config: &MipConfig,
    budget: &Budget,
) -> Option<MipOutcome> {
    solve_exact_warm(graph, config, budget, None)
}

/// [`solve_exact_budgeted`] with an optional warm-start labeling (typically
/// the incumbent of an adjacent γ point in a sweep). The labeling is
/// re-encoded — and re-costed — under this model's γ; an invalid hint is
/// ignored by the solver rather than trusted.
pub fn solve_exact_warm(
    graph: &BddGraph,
    config: &MipConfig,
    budget: &Budget,
    warm: Option<&Labeling>,
) -> Option<MipOutcome> {
    if graph.num_nodes() > config.exact_node_limit {
        return None;
    }
    let gamma = config.gamma;
    let (model, vars) = build_model(graph, gamma, config.align);
    let mut solver = BranchBound::new()
        .time_limit(budget.remaining_or(config.time_limit))
        .trace_every(10)
        .budget(budget)
        .threads(config.threads.max(1));
    if let Some(labeling) = warm {
        solver = solver.warm_start(warm_start_values(graph, &vars, model.num_vars(), labeling));
    }
    let layout = vh_layout(graph, &vars, gamma);
    let sol = if config.threads.max(1) > 1 {
        let layout = &layout;
        solver
            .solve_parallel_with(&model, move || {
                HybridBounder::new(VhBounder::new(layout.clone()))
            })
            .ok()?
    } else {
        let mut bounder = HybridBounder::new(VhBounder::new(layout));
        solver.solve_with(&model, &mut bounder).ok()?
    };
    let labeling = labeling_from_solution(&vars, &sol.values);
    debug_assert!(labeling.is_valid(graph));
    let objective = labeling.stats().objective(gamma);
    Some(MipOutcome {
        labeling,
        optimal: sol.status == SolveStatus::Optimal,
        objective,
        best_bound: sol.best_bound,
        relative_gap: sol.relative_gap(),
        trace: sol.trace,
        nodes: sol.nodes,
        warm_start: sol.warm_start,
    })
}

/// The staged anytime path alone: greedy OCT incumbent → budgeted exact
/// OCT (bound + incumbent) → VH-addition hill climbing. Always returns a
/// valid labeling, even on an already-exhausted budget.
pub fn solve_anytime_budgeted(graph: &BddGraph, config: &MipConfig, budget: &Budget) -> MipOutcome {
    solve_anytime_with_oct(graph, config, budget, None).0
}

/// [`solve_anytime_budgeted`] with an optional precomputed odd cycle
/// transversal. The OCT stage dominates the anytime wall and is
/// γ-independent, so sweep drivers cache it per graph: a `hint` replaces
/// the stage-2 solve outright. The second return value is a freshly
/// computed, proven-optimal OCT for the caller to cache (`None` when the
/// hint was used or the solve timed out — a timed-out transversal depends
/// on the budget and must not be reused).
pub fn solve_anytime_with_oct(
    graph: &BddGraph,
    config: &MipConfig,
    budget: &Budget,
    hint: Option<&OctResult>,
) -> (MipOutcome, Option<OctResult>) {
    let start = Instant::now();
    let deadline = start + budget.remaining_or(config.time_limit);
    let n = graph.num_nodes();
    let gamma = config.gamma;

    // Stage 1: greedy OCT incumbent.
    let mut trace = SolveTrace::new();
    let trivial_bound = gamma * n as f64 + (1.0 - gamma) * (n as f64 / 2.0).ceil();
    let greedy_vh: HashSet<usize> = oct_heuristic(&graph.graph).into_iter().collect();
    let mut best = balanced_labeling(graph, &greedy_vh, config.align);
    let mut best_obj = best.stats().objective(gamma);
    let mut best_bound = trivial_bound;
    trace.push(TracePoint {
        elapsed: start.elapsed(),
        best_integer: Some(best_obj),
        best_bound,
        open_nodes: 1,
    });

    // Stage 2: exact (or time-limited) OCT improves both the incumbent and
    // the proven bound.
    let (oct, computed) = match hint {
        Some(h) => (h.clone(), false),
        None => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let fresh = odd_cycle_transversal_budgeted(
                &graph.graph,
                &OctConfig {
                    time_limit: remaining.mul_f64(0.6),
                    threads: config.threads,
                },
                budget,
            );
            (fresh, true)
        }
    };
    let oct_vh: HashSet<usize> = oct.transversal.iter().copied().collect();
    let cand = balanced_labeling(graph, &oct_vh, config.align);
    let cand_obj = cand.stats().objective(gamma);
    if cand_obj < best_obj {
        best = cand;
        best_obj = cand_obj;
    }
    // Bound: S ≥ n + oct_lb, D ≥ ⌈S/2⌉ (R and C each count every VH node,
    // and max(R,C) ≥ S/2).
    let s_lb = (n + oct.lower_bound) as f64;
    best_bound = best_bound.max(gamma * s_lb + (1.0 - gamma) * (s_lb / 2.0).ceil());
    trace.push(TracePoint {
        elapsed: start.elapsed(),
        best_integer: Some(best_obj),
        best_bound,
        open_nodes: 1,
    });

    // Stage 3: hill climbing on VH additions (only helps when γ < 1); each
    // accepted move is an incumbent improvement worth a trace point.
    let (improved, _) = hill_climb_traced(
        graph,
        &best,
        gamma,
        config.align,
        deadline,
        budget,
        |labeling| {
            trace.push(TracePoint {
                elapsed: start.elapsed(),
                best_integer: Some(labeling.stats().objective(gamma)),
                best_bound,
                open_nodes: 1,
            });
        },
    );
    let improved_obj = improved.stats().objective(gamma);
    if improved_obj < best_obj {
        best = improved;
        best_obj = improved_obj;
    }

    // Optimality: proven only when the OCT was exact and the incumbent
    // meets the bound.
    let optimal = oct.optimal && (best_obj - best_bound).abs() < 1e-6;
    let denom = best_obj.abs().max(1e-10);
    let relative_gap = ((best_obj - best_bound).abs() / denom).min(1.0);
    trace.push(TracePoint {
        elapsed: start.elapsed(),
        best_integer: Some(best_obj),
        best_bound,
        open_nodes: 0,
    });
    // Only a proven-optimal OCT is budget-independent and safe to reuse.
    let publish = (computed && oct.optimal).then(|| oct.clone());
    (
        MipOutcome {
            labeling: best,
            optimal,
            objective: best_obj,
            best_bound,
            relative_gap,
            trace,
            // A reused OCT expands no nodes here; report the reuse as an
            // accepted warm start instead.
            nodes: if computed { oct.nodes } else { 0 },
            warm_start: (!computed).then_some(true),
        },
        publish,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_bdd::build_sbdd;
    use flowc_logic::{GateKind, Network};

    fn fig2() -> BddGraph {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        BddGraph::from_bdds(&build_sbdd(&n, None))
    }

    #[test]
    fn exact_mip_matches_oct_on_gamma_one() {
        let g = fig2();
        let out = solve(
            &g,
            &MipConfig {
                gamma: 1.0,
                align: false,
                ..Default::default()
            },
        );
        assert!(out.optimal, "fig2 is tiny; the MIP must close");
        assert!(out.labeling.is_valid(&g));
        // Minimum semiperimeter is n + 1 (one triangle).
        assert_eq!(out.labeling.stats().semiperimeter, g.num_nodes() + 1);
        assert!(out.relative_gap < 1e-6);
    }

    #[test]
    fn exact_mip_respects_alignment() {
        let g = fig2();
        let out = solve(&g, &MipConfig::default());
        assert!(out.labeling.is_valid(&g));
        assert!(out.labeling.is_aligned(&g));
    }

    #[test]
    fn gamma_zero_prefers_balanced_designs() {
        let g = fig2();
        let balanced = solve(
            &g,
            &MipConfig {
                gamma: 0.0,
                align: false,
                ..Default::default()
            },
        );
        let min_s = solve(
            &g,
            &MipConfig {
                gamma: 1.0,
                align: false,
                ..Default::default()
            },
        );
        let bs = balanced.labeling.stats();
        let ms = min_s.labeling.stats();
        assert!(bs.max_dimension <= ms.max_dimension);
        assert!(ms.semiperimeter <= bs.semiperimeter);
    }

    #[test]
    fn anytime_path_produces_trace_and_valid_labeling() {
        let g = fig2();
        let out = solve(
            &g,
            &MipConfig {
                exact_node_limit: 0, // force the anytime path
                ..Default::default()
            },
        );
        assert!(out.labeling.is_valid(&g));
        assert!(out.labeling.is_aligned(&g));
        assert!(out.trace.points().len() >= 2);
        // Bound can never exceed the incumbent.
        assert!(out.best_bound <= out.objective + 1e-9);
        // The trace's bound is monotonically non-decreasing.
        let bounds: Vec<f64> = out.trace.points().iter().map(|p| p.best_bound).collect();
        for w in bounds.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn anytime_agrees_with_exact_on_small_instance() {
        let g = fig2();
        let exact = solve(
            &g,
            &MipConfig {
                gamma: 0.5,
                align: true,
                ..Default::default()
            },
        );
        let anytime = solve(
            &g,
            &MipConfig {
                gamma: 0.5,
                align: true,
                exact_node_limit: 0,
                ..Default::default()
            },
        );
        assert!(exact.optimal);
        // The anytime incumbent is within one VH upgrade of the optimum on
        // this instance (it may pick a different OCT vertex).
        assert!(anytime.objective <= exact.objective + 1.0);
    }

    #[test]
    fn model_shape_matches_eq4() {
        let g = fig2();
        let (m, vars) = build_model(&g, 0.5, false);
        let n = g.num_nodes();
        let e = g.num_edges();
        assert_eq!(vars.xv.len(), n);
        assert_eq!(vars.xh.len(), n);
        // 2n node binaries + e edge helpers + D.
        assert_eq!(m.num_vars(), 2 * n + e + 1);
        // 2 aggregate rows + n coverage rows + 2e connection rows + 2e
        // orientation-free cover rows + 2 rows per triangle.
        let mut triangles = 0;
        let edge_set: std::collections::HashSet<(usize, usize)> = g
            .graph
            .edges()
            .iter()
            .map(|&(i, j)| (i.min(j), i.max(j)))
            .collect();
        for &(a, b) in &edge_set {
            for k in (b + 1)..n {
                if edge_set.contains(&(a, k)) && edge_set.contains(&(b, k)) {
                    triangles += 1;
                }
            }
        }
        assert_eq!(m.num_constraints(), 2 + n + 4 * e + 2 * triangles);
    }

    #[test]
    fn hill_climb_never_worsens() {
        let g = fig2();
        let base = crate::oct_method::min_semiperimeter(
            &g,
            &crate::oct_method::OctMethodConfig::default(),
        );
        for gamma in [0.0, 0.25, 0.5, 0.75] {
            let (improved, _) = hill_climb(
                &g,
                &base.labeling,
                gamma,
                true,
                Instant::now() + Duration::from_secs(5),
            );
            assert!(improved.is_valid(&g));
            assert!(
                improved.stats().objective(gamma) <= base.labeling.stats().objective(gamma) + 1e-9
            );
        }
    }
}

//! A CONTRA-style MAGIC (stateful NOR logic) execution model — the
//! in-memory-computing comparator of Figure 13.
//!
//! CONTRA maps a circuit to LUTs and executes it on a memristor crossbar
//! with MAGIC NOR operations, reporting *operation counts* (INPUT, COPY,
//! NOR) as its power proxy and *time steps* as its delay proxy. The closed
//! source is unavailable, so this module re-creates the execution model the
//! paper measures against (DESIGN.md §3):
//!
//! 1. the circuit is decomposed into an n-ary NOR netlist
//!    ([`NorNetlist::from_network`]);
//! 2. a scheduler places signals on a `dim × dim` array and executes the
//!    netlist level by level: NORs within a level run in parallel (bounded
//!    by the array dimension), while the COPY operations that realign
//!    operands serialize within each destination row
//!    ([`schedule`]) — exactly the realignment sequentiality the paper
//!    blames for CONTRA's delay.
//!
//! Power is the total number of write operations; delay is the number of
//! time steps of the schedule.

use flowc_logic::{GateKind, Network};

/// Configuration of the MAGIC array (the paper's CONTRA settings).
#[derive(Debug, Clone, Copy)]
pub struct MagicConfig {
    /// Crossbar dimension (the paper uses 128×128).
    pub dim: usize,
    /// Row spacing between mapped blocks (the paper uses 6); reduces the
    /// usable parallel rows.
    pub spacing: usize,
}

impl Default for MagicConfig {
    fn default() -> Self {
        MagicConfig {
            dim: 128,
            spacing: 6,
        }
    }
}

/// An n-ary NOR netlist (signals: inputs first, then gate outputs).
#[derive(Debug, Clone)]
pub struct NorNetlist {
    num_inputs: usize,
    /// Gate `g` computes `NOR(operands)` into signal `num_inputs + g`.
    gates: Vec<Vec<usize>>,
    /// Output signal ids. `usize::MAX - 1` encodes constant 0 and
    /// `usize::MAX` constant 1 (from degenerate networks).
    outputs: Vec<usize>,
}

const CONST0: usize = usize::MAX - 1;
const CONST1: usize = usize::MAX;

impl NorNetlist {
    /// Decomposes a gate-level network into NOR gates. Buffers are aliases
    /// and constant operands fold algebraically, so the resulting netlist
    /// references only primary inputs and NOR outputs.
    ///
    /// # Panics
    ///
    /// Panics on gate kinds outside the [`GateKind`] set handled here
    /// (none exist today).
    pub fn from_network(network: &Network) -> Self {
        let mut b = NorBuilder {
            num_inputs: network.num_inputs(),
            gates: Vec::new(),
        };
        let mut signal_of = vec![usize::MAX; network.num_nets()];
        for (i, &net) in network.inputs().iter().enumerate() {
            signal_of[net.index()] = i;
        }
        for gate in network.gates() {
            let ops: Vec<usize> = gate.inputs.iter().map(|i| signal_of[i.index()]).collect();
            let out = match gate.kind {
                GateKind::Const0 => CONST0,
                GateKind::Const1 => CONST1,
                GateKind::Buf => ops[0],
                GateKind::Not => b.mk_not(ops[0]),
                GateKind::Nor => {
                    let or = b.mk_or(&ops);
                    b.mk_not(or)
                }
                GateKind::Or => b.mk_or(&ops),
                GateKind::And => b.mk_and(&ops),
                GateKind::Nand => {
                    let and = b.mk_and(&ops);
                    b.mk_not(and)
                }
                GateKind::Xor => b.mk_xor(&ops, false),
                GateKind::Xnor => b.mk_xor(&ops, true),
                GateKind::Mux => b.mk_mux(ops[0], ops[1], ops[2]),
                other => unimplemented!("NOR lowering for {other:?}"),
            };
            signal_of[gate.output.index()] = out;
        }
        let outputs = network
            .outputs()
            .iter()
            .map(|o| signal_of[o.index()])
            .collect();
        NorNetlist {
            num_inputs: b.num_inputs,
            gates: b.gates,
            outputs,
        }
    }

    /// Number of NOR gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }
}

/// Constant-folding NOR-netlist builder. Signals may be [`CONST0`] /
/// [`CONST1`]; emitted NOR gates never reference constants.
struct NorBuilder {
    num_inputs: usize,
    gates: Vec<Vec<usize>>,
}

impl NorBuilder {
    fn push(&mut self, ops: Vec<usize>) -> usize {
        debug_assert!(ops.iter().all(|&s| s < self.num_inputs + self.gates.len()));
        self.gates.push(ops);
        self.num_inputs + self.gates.len() - 1
    }

    fn mk_not(&mut self, s: usize) -> usize {
        match s {
            CONST0 => CONST1,
            CONST1 => CONST0,
            _ => self.push(vec![s]),
        }
    }

    /// n-ary OR with constant folding (`NOR` + inversion).
    fn mk_or(&mut self, ops: &[usize]) -> usize {
        if ops.contains(&CONST1) {
            return CONST1;
        }
        let real: Vec<usize> = ops.iter().copied().filter(|&s| s != CONST0).collect();
        match real.len() {
            0 => CONST0,
            1 => real[0],
            _ => {
                let nor = self.push(real);
                self.mk_not(nor)
            }
        }
    }

    /// n-ary AND with constant folding (`NOR` of inverted operands).
    fn mk_and(&mut self, ops: &[usize]) -> usize {
        if ops.contains(&CONST0) {
            return CONST0;
        }
        let real: Vec<usize> = ops.iter().copied().filter(|&s| s != CONST1).collect();
        match real.len() {
            0 => CONST1,
            1 => real[0],
            _ => {
                let inverted: Vec<usize> = real.iter().map(|&s| self.mk_not(s)).collect();
                self.push(inverted)
            }
        }
    }

    /// n-ary XOR (`negate` for XNOR) as a chain of 4-NOR XNOR stages.
    fn mk_xor(&mut self, ops: &[usize], negate: bool) -> usize {
        let mut complement = negate;
        let mut real = Vec::with_capacity(ops.len());
        for &s in ops {
            match s {
                CONST0 => {}
                CONST1 => complement = !complement,
                _ => real.push(s),
            }
        }
        match real.len() {
            0 => {
                if complement {
                    CONST1
                } else {
                    CONST0
                }
            }
            1 => {
                if complement {
                    self.mk_not(real[0])
                } else {
                    real[0]
                }
            }
            _ => {
                // Each stage computes XNOR(acc, b) in 4 NORs; k stages over
                // k+1 operands complement the parity k times.
                let mut acc = real[0];
                for &b2 in &real[1..] {
                    let x = self.push(vec![acc, b2]);
                    let y = self.push(vec![acc, x]);
                    let z = self.push(vec![b2, x]);
                    acc = self.push(vec![y, z]); // XNOR(acc, b2)
                }
                let stages = real.len() - 1;
                let acc_complemented = stages % 2 == 1;
                if acc_complemented != complement {
                    self.mk_not(acc)
                } else {
                    acc
                }
            }
        }
    }

    /// 2:1 mux `(s ∧ t) ∨ (¬s ∧ e)` with constant folding.
    fn mk_mux(&mut self, s: usize, t: usize, e: usize) -> usize {
        match s {
            CONST1 => return t,
            CONST0 => return e,
            _ => {}
        }
        match (t, e) {
            (CONST1, CONST0) => s,
            (CONST0, CONST1) => self.mk_not(s),
            (CONST1, _) => self.mk_or(&[s, e]),
            (CONST0, _) => {
                let ns = self.mk_not(s);
                self.mk_and(&[ns, e])
            }
            (_, CONST1) => {
                let ns = self.mk_not(s);
                self.mk_or(&[ns, t])
            }
            (_, CONST0) => self.mk_and(&[s, t]),
            _ => {
                let st = self.mk_and(&[s, t]);
                let ns = self.mk_not(s);
                let nse = self.mk_and(&[ns, e]);
                self.mk_or(&[st, nse])
            }
        }
    }
}

impl NorNetlist {
    /// Evaluates the NOR netlist (for equivalence testing).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong length.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs);
        let mut values = Vec::with_capacity(self.num_inputs + self.gates.len());
        values.extend_from_slice(inputs);
        for ops in &self.gates {
            let v = !ops.iter().any(|&s| values[s]);
            values.push(v);
        }
        self.outputs
            .iter()
            .map(|&s| match s {
                CONST0 => false,
                CONST1 => true,
                _ => values[s],
            })
            .collect()
    }
}

/// Operation counts and schedule length of a MAGIC execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MagicReport {
    /// INPUT write operations (one per primary input).
    pub input_ops: usize,
    /// COPY operations inserted to realign operands.
    pub copy_ops: usize,
    /// NOR execution operations.
    pub nor_ops: usize,
    /// Time steps of the schedule (the delay proxy).
    pub delay_steps: usize,
}

impl MagicReport {
    /// Total write operations (the power proxy).
    pub fn total_ops(&self) -> usize {
        self.input_ops + self.copy_ops + self.nor_ops
    }
}

/// Schedules a NOR netlist on the MAGIC array and reports operation counts
/// and time steps.
///
/// MAGIC executes column-aligned operations: a single time step applies one
/// NOR (or COPY) column pattern across any number of selected rows. Gates
/// of the same level therefore batch into SIMD steps (bounded by the usable
/// row count), but the COPY operations that *realign* operands each target
/// a different source/destination column pair and serialize — this is the
/// "subsequent time steps spent realigning the data" sequentiality the
/// paper identifies as CONTRA's bottleneck (Section VIII-E).
pub fn schedule(netlist: &NorNetlist, config: &MagicConfig) -> MagicReport {
    let usable_rows = config.dim.saturating_sub(config.spacing).max(1);
    let n_signals = netlist.num_inputs + netlist.gates.len();
    // Level per signal: inputs at level 0.
    let mut level = vec![0usize; n_signals];
    for (g, ops) in netlist.gates.iter().enumerate() {
        let l = ops.iter().map(|&s| level[s]).max().unwrap_or(0) + 1;
        level[netlist.num_inputs + g] = l;
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    // Home row per signal (round-robin placement, as a simple but
    // deterministic data layout).
    let row_of = |s: usize| s % usable_rows;

    let mut copy_ops = 0usize;
    let mut nor_ops = 0usize;
    let mut delay_steps = 1usize; // all INPUT writes share one parallel step
    let mut gates_by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (g, _) in netlist.gates.iter().enumerate() {
        gates_by_level[level[netlist.num_inputs + g]].push(g);
    }
    for gates in gates_by_level.iter().skip(1) {
        if gates.is_empty() {
            continue;
        }
        // Realignment: every operand living in a row other than the gate's
        // execution row needs a COPY into that row; each such copy uses its
        // own column pair and serializes.
        let mut level_copies = 0usize;
        for &g in gates {
            let exec_row = row_of(netlist.num_inputs + g);
            for &s in &netlist.gates[g] {
                if row_of(s) != exec_row {
                    level_copies += 1;
                }
            }
        }
        copy_ops += level_copies;
        // NORs of one level batch SIMD-style across rows.
        let nor_steps = gates.len().div_ceil(usable_rows);
        nor_ops += gates.len();
        delay_steps += level_copies + nor_steps;
    }
    MagicReport {
        input_ops: netlist.num_inputs,
        copy_ops,
        nor_ops,
        delay_steps,
    }
}

/// Convenience: binarize, decompose, and schedule in one call. CONTRA maps
/// LUTs over two-input AIGs, so the network is first rewritten into
/// two-input gates ([`flowc_logic::xform::binarize`]) — wide-gate inputs
/// would understate the operation counts a real MAGIC flow performs.
pub fn map_magic(network: &Network, config: &MagicConfig) -> MagicReport {
    let binary =
        flowc_logic::xform::binarize(network).expect("binarization of a valid network cannot fail");
    let nor = NorNetlist::from_network(&binary);
    schedule(&nor, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::bench_suite;
    use flowc_logic::{GateKind, Network};

    fn check_equiv(network: &Network, samples: usize) {
        let nor = NorNetlist::from_network(network);
        let mut seed = 0xABCD_EF01_2345_6789u64;
        for _ in 0..samples {
            let vals: Vec<bool> = (0..network.num_inputs())
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed & 1 == 1
                })
                .collect();
            assert_eq!(
                nor.eval(&vals),
                network.simulate(&vals).unwrap(),
                "NOR decomposition mismatch on {vals:?}"
            );
        }
    }

    #[test]
    fn nor_decomposition_equivalent_for_all_gate_kinds() {
        let mut n = Network::new("all");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        for (kind, name) in [
            (GateKind::And, "g_and"),
            (GateKind::Or, "g_or"),
            (GateKind::Nand, "g_nand"),
            (GateKind::Nor, "g_nor"),
            (GateKind::Xor, "g_xor"),
            (GateKind::Xnor, "g_xnor"),
        ] {
            let g = n.add_gate(kind, &[a, b, c], name).unwrap();
            n.mark_output(g);
        }
        let nn = n.add_gate(GateKind::Not, &[a], "g_not").unwrap();
        n.mark_output(nn);
        let bb = n.add_gate(GateKind::Buf, &[b], "g_buf").unwrap();
        n.mark_output(bb);
        let mm = n.add_gate(GateKind::Mux, &[a, b, c], "g_mux").unwrap();
        n.mark_output(mm);
        n.mark_output(n.find_net("g_and").unwrap());
        check_equiv(&n, 64);
    }

    #[test]
    fn constants_fold() {
        let mut n = Network::new("c");
        let _a = n.add_input("a");
        let z = n.add_const0("z");
        let o = n.add_const1("o");
        n.mark_output(z);
        n.mark_output(o);
        let nor = NorNetlist::from_network(&n);
        assert_eq!(nor.eval(&[true]), vec![false, true]);
        assert_eq!(nor.num_gates(), 0);
    }

    #[test]
    fn benchmarks_decompose_equivalently() {
        for name in ["ctrl", "int2float", "cavlc"] {
            let b = bench_suite::by_name(name).unwrap();
            let n = b.network().unwrap();
            check_equiv(&n, 50);
        }
    }

    #[test]
    fn schedule_counts_are_consistent() {
        let b = bench_suite::by_name("ctrl").unwrap();
        let n = b.network().unwrap();
        let nor = NorNetlist::from_network(&n);
        let report = schedule(&nor, &MagicConfig::default());
        assert_eq!(report.nor_ops, nor.num_gates());
        assert_eq!(report.input_ops, n.num_inputs());
        assert!(report.total_ops() >= report.nor_ops + report.input_ops);
        // Sequential lower bound: at least one step per level.
        assert!(report.delay_steps >= 2);
        // Fully sequential upper bound.
        assert!(report.delay_steps <= report.total_ops());
    }

    #[test]
    fn magic_is_much_slower_than_flow_based() {
        // The Figure 13 shape: CONTRA-style delay far exceeds COMPACT's
        // rows+1 on control circuits.
        let b = bench_suite::by_name("int2float").unwrap();
        let n = b.network().unwrap();
        let magic = map_magic(&n, &MagicConfig::default());
        let compact = flowc_compact::synthesize(&n, &flowc_compact::Config::default()).unwrap();
        assert!(
            magic.delay_steps > 2 * compact.metrics.delay_steps,
            "magic {} vs compact {}",
            magic.delay_steps,
            compact.metrics.delay_steps
        );
    }
}

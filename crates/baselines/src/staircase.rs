//! The prior-art BDD→crossbar mapping (reference \[16\] of the paper).
//!
//! Every BDD node is assigned both a wordline and a bitline (joined by an
//! always-on junction), and every BDD edge becomes one literal junction
//! between its source's wordline and its target's bitline. Nodes are placed
//! along the diagonal in level order, producing the inductive staircase
//! shape of the original paper. The resulting design has `R = C = n`, so
//! `S = 2n` and `D = n` — the `≈1.9n` semiperimeter and `≈n` maximum
//! dimension the paper reports for \[16\], against which COMPACT's `≈1.11n`
//! is compared.

use flowc_compact::preprocess::BddGraph;
use flowc_xbar::{Crossbar, DeviceAssignment};

/// Maps a BDD graph with the prior-art every-node-gets-both-wires scheme.
///
/// # Panics
///
/// Panics when the graph's port invariants are broken (never for graphs
/// produced by [`BddGraph::from_bdds`]).
pub fn staircase_map(graph: &BddGraph, output_names: &[String]) -> Crossbar {
    let n = graph.num_nodes();
    // Diagonal placement: roots first (top-left), terminal last
    // (bottom-right) so the staircase runs corner to corner, the input is
    // the bottom-most wordline and outputs are the top rows.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for &r in graph.roots.iter().flatten() {
        if !placed[r] && Some(r) != graph.terminal {
            placed[r] = true;
            order.push(r);
        }
    }
    for (v, p) in placed.iter_mut().enumerate() {
        if !*p && Some(v) != graph.terminal {
            *p = true;
            order.push(v);
        }
    }
    if let Some(t) = graph.terminal {
        order.push(t);
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }

    let const0_outputs = graph.roots.iter().filter(|r| r.is_none()).count();
    let rows = n + const0_outputs + usize::from(graph.terminal.is_none());
    let cols = n.max(1);
    let mut xbar = Crossbar::new(rows, cols, graph.num_inputs);
    for (i, &v) in order.iter().enumerate() {
        let _ = xbar.set_row_label(i, graph.node_names[v].clone());
        let _ = xbar.set_col_label(i, graph.node_names[v].clone());
        // The node's wordline and bitline are the same wire electrically.
        xbar.set(i, i, DeviceAssignment::On).expect("in range");
    }
    for &(u, v) in graph.graph.edges() {
        let lit = graph.labels[&(u.min(v), u.max(v))];
        xbar.set(
            pos[u],
            pos[v],
            DeviceAssignment::Literal {
                input: lit.input,
                negated: lit.negated,
            },
        )
        .expect("in range");
    }
    let input_row = match graph.terminal {
        Some(t) => pos[t],
        None => rows - 1,
    };
    xbar.set_input_row(input_row).expect("in range");
    let mut next_const0 = n;
    for (i, root) in graph.roots.iter().enumerate() {
        let name = output_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("out{i}"));
        match root {
            Some(v) => xbar.add_output(name, pos[*v]).expect("in range"),
            None => {
                xbar.add_output(name, next_const0).expect("in range");
                next_const0 += 1;
            }
        }
    }
    xbar
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_bdd::build_sbdd;
    use flowc_logic::{bench_suite, GateKind, Network};
    use flowc_xbar::metrics::CrossbarMetrics;
    use flowc_xbar::verify::verify_functional;

    fn fig2_network() -> Network {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        n
    }

    #[test]
    fn staircase_is_functionally_valid() {
        let n = fig2_network();
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let x = staircase_map(&g, &["f".to_string()]);
        assert!(verify_functional(&x, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn staircase_size_is_2n_by_n() {
        let n = fig2_network();
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let x = staircase_map(&g, &["f".to_string()]);
        let m = CrossbarMetrics::of(&x);
        assert_eq!(m.rows, g.num_nodes());
        assert_eq!(m.cols, g.num_nodes());
        assert_eq!(m.semiperimeter, 2 * g.num_nodes());
        assert_eq!(m.max_dimension, g.num_nodes());
        // One bridge per node, one literal per edge.
        assert_eq!(m.bridge_devices, g.num_nodes());
        assert_eq!(m.active_devices, g.num_edges());
    }

    #[test]
    fn staircase_valid_on_multi_output_benchmark() {
        let b = bench_suite::by_name("ctrl").unwrap();
        let n = b.network().unwrap();
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let names: Vec<String> = n
            .outputs()
            .iter()
            .map(|&o| n.net_name(o).to_string())
            .collect();
        let x = staircase_map(&g, &names);
        assert!(verify_functional(&x, &n, 1 << 7).unwrap().is_valid());
        assert_eq!(x.input_row(), Some(g.num_nodes() - 1), "input at bottom");
    }

    #[test]
    fn supervisor_terminal_rung_is_staircase_class() {
        // The supervisor's all-VH fallback (see flowc_compact::supervisor)
        // labels every node VH — exactly the staircase baseline's
        // every-node-gets-both-wires assignment. Both must land in the same
        // size class (S = 2n, one bridge per node) and compute the same
        // function.
        use flowc_compact::mapping::map_to_crossbar;
        use flowc_compact::{Labeling, VhLabel};
        let n = fig2_network();
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let names = vec!["f".to_string()];
        let stair = staircase_map(&g, &names);
        let mut labeling = Labeling::new(vec![VhLabel::Vh; g.num_nodes()]);
        labeling.enforce_alignment(&g);
        let allvh = map_to_crossbar(&g, &labeling, &names).unwrap();
        let sm = CrossbarMetrics::of(&stair);
        let am = CrossbarMetrics::of(&allvh);
        assert_eq!(am.semiperimeter, sm.semiperimeter, "both are S = 2n");
        assert_eq!(am.bridge_devices, sm.bridge_devices, "one bridge per node");
        assert!(verify_functional(&allvh, &n, 64).unwrap().is_valid());
        assert!(verify_functional(&stair, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn degraded_supervision_never_loses_to_the_staircase_baseline() {
        // Even with an already-exhausted deadline the supervisor's ladder
        // lands on a design no larger than the prior-art staircase (the
        // terminal rung *is* the staircase assignment, and every higher
        // rung is smaller). Explicit cancellation, by contrast, now
        // aborts with a typed error instead of shipping anything.
        use flowc_budget::Budget;
        use flowc_compact::supervisor::synthesize_with_budget;
        let n = fig2_network();
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let stair = CrossbarMetrics::of(&staircase_map(&g, &["f".to_string()]));
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = synthesize_with_budget(&n, &flowc_compact::Config::default(), &budget).unwrap();
        assert!(r.stats.semiperimeter <= stair.semiperimeter);
        assert!(verify_functional(&r.crossbar, &n, 64).unwrap().is_valid());
    }

    #[test]
    fn staircase_handles_constant_outputs() {
        let mut n = Network::new("consts");
        let a = n.add_input("a");
        let f = n.add_gate(GateKind::Buf, &[a], "f").unwrap();
        let z = n.add_const0("z");
        n.mark_output(f);
        n.mark_output(z);
        let g = BddGraph::from_bdds(&build_sbdd(&n, None));
        let x = staircase_map(&g, &["f".into(), "z".into()]);
        assert_eq!(x.evaluate(&[true]).unwrap(), vec![true, false]);
        assert_eq!(x.evaluate(&[false]).unwrap(), vec![false, false]);
    }
}

//! CONTRA-style area-constrained partitioned mapping: when a network's
//! monolithic design exceeds a fixed R×C crossbar, split it into
//! per-output cone groups that each fit the tile, map every group with an
//! inner [`MappingBackend`], and emit a [`TileSchedule`] — the sequence
//! of tile programs plus the inter-tile input re-deliveries the split
//! costs. This is the Section III "specified constraints on the rows and
//! columns" note turned into a scale unlock: the single-array size
//! ceiling disappears, at the price of `transfer_ops` accounted in the
//! aggregate [`CrossbarMetrics`].
//!
//! Packing is greedy in output order: keep adding the next output's cone
//! to the current group while the merged sub-network still fits the
//! tile; close the group on the first miss. Each fit first tries the
//! inner backend unconstrained (session-cached, cheap), and only falls
//! back to [`synthesize_constrained`] — which actively squeezes the
//! labeling into the box — when the inner backend is COMPACT and the
//! free-form design spills over.

use std::collections::HashSet;
use std::time::Duration;

use flowc_compact::{synthesize_constrained, ConstraintError, SizeLimits};
use flowc_logic::{NetId, Network};
use flowc_xbar::metrics::CrossbarMetrics;
use flowc_xbar::Crossbar;

use crate::backend::{
    Backend, BackendError, DesignArtifact, MappedDesign, MappingBackend, SynthesisCtx,
    DEFAULT_PER_TILE_TIME,
};

/// One scheduled tile: a crossbar over the cone group's own inputs, plus
/// the wiring back to the global network.
#[derive(Debug, Clone)]
pub struct Tile {
    /// The tile's crossbar (inputs are the cone's inputs, in
    /// `input_map` order).
    pub crossbar: Crossbar,
    /// For each tile input, the global primary-input index it reads.
    pub input_map: Vec<usize>,
    /// For each tile output, the global output position it drives.
    pub output_slots: Vec<usize>,
    /// The tile's own cost figures.
    pub metrics: CrossbarMetrics,
}

/// An ordered tile program computing the full network on one R×C array.
#[derive(Debug, Clone)]
pub struct TileSchedule {
    /// The tiles, in execution order.
    pub tiles: Vec<Tile>,
    /// The box every tile fits in.
    pub limits: SizeLimits,
    /// Global primary-input count.
    pub num_inputs: usize,
    /// Global output count.
    pub num_outputs: usize,
}

impl TileSchedule {
    /// Evaluates the schedule: runs every tile on its slice of the
    /// inputs and scatters tile outputs into global output order.
    ///
    /// # Errors
    ///
    /// A message when `inputs` has the wrong arity or a tile rejects its
    /// slice.
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Vec<bool>, String> {
        if inputs.len() != self.num_inputs {
            return Err(format!(
                "expected {} inputs, got {}",
                self.num_inputs,
                inputs.len()
            ));
        }
        let mut out = vec![false; self.num_outputs];
        for tile in &self.tiles {
            let local: Vec<bool> = tile.input_map.iter().map(|&i| inputs[i]).collect();
            let vals = tile.crossbar.evaluate(&local).map_err(|e| e.to_string())?;
            for (&slot, &v) in tile.output_slots.iter().zip(&vals) {
                out[slot] = v;
            }
        }
        Ok(out)
    }

    /// Inter-tile transfer operations: every primary input must be
    /// delivered to each tile that reads it, so any input shared by `k`
    /// tiles costs `k − 1` re-deliveries beyond the monolithic design's
    /// single load.
    pub fn transfer_ops(&self) -> usize {
        let deliveries: usize = self.tiles.iter().map(|t| t.input_map.len()).sum();
        let distinct: HashSet<usize> = self
            .tiles
            .iter()
            .flat_map(|t| t.input_map.iter().copied())
            .collect();
        deliveries - distinct.len()
    }

    /// Aggregate cost figures: the array shape is the max over tiles (one
    /// physical array is reprogrammed per tile), device counts and delays
    /// sum, and the transfer operations extend the delay (each
    /// re-delivery is a write step between tile evaluations).
    pub fn metrics(&self) -> CrossbarMetrics {
        let rows = self.tiles.iter().map(|t| t.metrics.rows).max().unwrap_or(0);
        let cols = self.tiles.iter().map(|t| t.metrics.cols).max().unwrap_or(0);
        let transfer_ops = self.transfer_ops();
        CrossbarMetrics {
            rows,
            cols,
            semiperimeter: rows + cols,
            max_dimension: rows.max(cols),
            area: rows * cols,
            active_devices: self.tiles.iter().map(|t| t.metrics.active_devices).sum(),
            bridge_devices: self.tiles.iter().map(|t| t.metrics.bridge_devices).sum(),
            delay_steps: self
                .tiles
                .iter()
                .map(|t| t.metrics.delay_steps)
                .sum::<usize>()
                + transfer_ops,
            tiles: self.tiles.len(),
            transfer_ops,
        }
    }
}

/// A sub-network induced by a set of outputs, with its global wiring.
struct Cone {
    network: Network,
    input_map: Vec<usize>,
    output_slots: Vec<usize>,
}

/// Extracts the cone-of-influence sub-network of the outputs at the
/// given positions, preserving names and the (topological) gate order.
fn extract_cone(network: &Network, outputs: &[usize]) -> Cone {
    let mut needed = vec![false; network.num_nets()];
    let mut stack: Vec<NetId> = outputs.iter().map(|&i| network.outputs()[i]).collect();
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        if let Some(gate) = network.driver_gate(id) {
            for &input in &gate.inputs {
                if !needed[input.index()] {
                    stack.push(input);
                }
            }
        }
    }
    let mut sub = Network::new(format!("{}#tile", network.name()));
    let mut map: Vec<Option<NetId>> = vec![None; network.num_nets()];
    let mut input_map = Vec::new();
    for (gi, &net) in network.inputs().iter().enumerate() {
        if needed[net.index()] {
            map[net.index()] = Some(sub.add_input(network.net_name(net)));
            input_map.push(gi);
        }
    }
    for gate in network.gates() {
        if !needed[gate.output.index()] {
            continue;
        }
        let ins: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|&i| map[i.index()].expect("cone closure includes every fan-in"))
            .collect();
        let out = sub
            .add_gate(gate.kind, &ins, network.net_name(gate.output))
            .expect("arity is preserved from a valid network");
        map[gate.output.index()] = Some(out);
    }
    for &oi in outputs {
        let net = network.outputs()[oi];
        sub.mark_output(map[net.index()].expect("outputs are in the cone"));
    }
    Cone {
        network: sub,
        input_map,
        output_slots: outputs.to_vec(),
    }
}

/// How one fit attempt ended.
enum Fit {
    /// The group fits; the tile design is ready.
    Fits(Box<MappedDesign>),
    /// The free-form design spilled over and no constrained route found
    /// a fit, but nothing proves one impossible.
    TooBig { rows: usize, cols: usize },
    /// A proven lower bound exceeds the tile.
    Impossible(ConstraintError),
}

/// The CONTRA-style area-constrained partitioned backend.
#[derive(Debug, Clone)]
pub struct PartitionedBackend {
    /// The tile bounding box every piece must fit.
    pub tile: SizeLimits,
    /// The backend mapping each tile (must be
    /// [`Capabilities::tileable`](crate::backend::Capabilities)).
    pub inner: Box<Backend>,
    /// Wall-clock slice for each constrained fitting attempt.
    pub per_tile_time: Duration,
}

impl Default for PartitionedBackend {
    fn default() -> Self {
        PartitionedBackend {
            tile: SizeLimits {
                max_rows: 64,
                max_cols: 64,
            },
            inner: Box::new(Backend::default()),
            per_tile_time: DEFAULT_PER_TILE_TIME,
        }
    }
}

impl PartitionedBackend {
    fn fits(&self, m: &CrossbarMetrics) -> bool {
        m.rows <= self.tile.max_rows && m.cols <= self.tile.max_cols
    }

    /// Maps one cone group, trying the inner backend free-form first and
    /// the constrained search second.
    fn fit_group(&self, cone: &Network, ctx: &SynthesisCtx<'_>) -> Result<Fit, BackendError> {
        let inner_ctx = SynthesisCtx {
            config: ctx.config.clone(),
            session: ctx.session,
            budget: ctx.budget.clone(),
        };
        let free = self.inner.synthesize(cone, &inner_ctx)?;
        if self.fits(&free.metrics) {
            return Ok(Fit::Fits(Box::new(free)));
        }
        if matches!(self.inner.as_ref(), Backend::Compact(_)) {
            let slice = self
                .per_tile_time
                .min(ctx.budget.remaining_or(self.per_tile_time));
            match synthesize_constrained(cone, self.tile, slice) {
                Ok(result) => {
                    return Ok(Fit::Fits(Box::new(MappedDesign {
                        backend: "compact",
                        metrics: result.metrics,
                        artifact: DesignArtifact::Monolithic(result.crossbar.clone()),
                        compact: Some(Box::new(result)),
                    })))
                }
                Err(e @ ConstraintError::Infeasible { .. }) => return Ok(Fit::Impossible(e)),
                Err(_) => {}
            }
        }
        Ok(Fit::TooBig {
            rows: free.metrics.rows,
            cols: free.metrics.cols,
        })
    }
}

impl MappingBackend for PartitionedBackend {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn capabilities(&self) -> crate::backend::Capabilities {
        crate::backend::Capabilities {
            flow_crossbar: true,
            gamma_objective: self.inner.capabilities().gamma_objective,
            area_constrained: true,
            tileable: false,
            repairable: false,
        }
    }

    fn synthesize(
        &self,
        network: &Network,
        ctx: &SynthesisCtx<'_>,
    ) -> Result<MappedDesign, BackendError> {
        if !self.inner.capabilities().tileable {
            return Err(BackendError::Unsupported(format!(
                "inner backend `{}` does not produce monolithic crossbar tiles",
                self.inner.name()
            )));
        }
        let num_outputs = network.num_outputs();
        let mut tiles: Vec<Tile> = Vec::new();
        // The current group: output positions, plus the cone + design that
        // already fit (kept so closing a group never resynthesizes).
        let mut group: Vec<usize> = Vec::new();
        let mut fitted: Option<(Cone, Box<MappedDesign>)> = None;

        let close = |fitted: &mut Option<(Cone, Box<MappedDesign>)>, tiles: &mut Vec<Tile>| {
            if let Some((cone, design)) = fitted.take() {
                let crossbar = design
                    .crossbar()
                    .expect("tileable inner backends produce monolithic crossbars")
                    .clone();
                tiles.push(Tile {
                    metrics: design.metrics,
                    crossbar,
                    input_map: cone.input_map,
                    output_slots: cone.output_slots,
                });
            }
        };

        for o in 0..num_outputs {
            ctx.budget
                .check()
                .map_err(|e| BackendError::Synthesis(e.to_string()))?;
            let mut candidate = group.clone();
            candidate.push(o);
            let cone = extract_cone(network, &candidate);
            match self.fit_group(&cone.network, ctx)? {
                Fit::Fits(design) => {
                    group = candidate;
                    fitted = Some((cone, design));
                }
                miss => {
                    if group.is_empty() {
                        // A single cone that cannot fit the tile: typed
                        // failure, never a silent degrade.
                        return Err(match miss {
                            Fit::Impossible(e) => BackendError::Infeasible(e),
                            Fit::TooBig { rows, cols } => {
                                BackendError::Infeasible(ConstraintError::NotFound {
                                    best_rows: rows,
                                    best_cols: cols,
                                })
                            }
                            Fit::Fits(_) => unreachable!("miss arm"),
                        });
                    }
                    close(&mut fitted, &mut tiles);
                    // Re-open with the rejected output alone.
                    let solo = extract_cone(network, &[o]);
                    match self.fit_group(&solo.network, ctx)? {
                        Fit::Fits(design) => {
                            group = vec![o];
                            fitted = Some((solo, design));
                        }
                        Fit::Impossible(e) => return Err(BackendError::Infeasible(e)),
                        Fit::TooBig { rows, cols } => {
                            return Err(BackendError::Infeasible(ConstraintError::NotFound {
                                best_rows: rows,
                                best_cols: cols,
                            }))
                        }
                    }
                }
            }
        }
        close(&mut fitted, &mut tiles);

        let schedule = TileSchedule {
            tiles,
            limits: self.tile,
            num_inputs: network.num_inputs(),
            num_outputs,
        };
        let metrics = schedule.metrics();
        Ok(MappedDesign {
            backend: self.name(),
            metrics,
            artifact: DesignArtifact::Tiled(schedule),
            compact: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, MagicBackend};
    use flowc_logic::{bench_suite, GateKind};

    fn two_cone_network() -> Network {
        // Two independent cones over disjoint-ish inputs plus one shared
        // input, so a tight tile forces a split and the shared input
        // costs a transfer.
        let mut n = Network::new("twocones");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let d = n.add_input("d");
        let s = n.add_input("s");
        let ab = n.add_gate(GateKind::Xor, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Xor, &[ab, s], "f").unwrap();
        let cd = n.add_gate(GateKind::Xor, &[c, d], "cd").unwrap();
        let g = n.add_gate(GateKind::Xor, &[cd, s], "g").unwrap();
        n.mark_output(f);
        n.mark_output(g);
        n
    }

    fn tiny_tile(max_rows: usize, max_cols: usize) -> PartitionedBackend {
        PartitionedBackend {
            tile: SizeLimits { max_rows, max_cols },
            ..PartitionedBackend::default()
        }
    }

    #[test]
    fn cone_extraction_preserves_function() {
        let n = two_cone_network();
        let cone = extract_cone(&n, &[1]);
        assert_eq!(cone.output_slots, vec![1]);
        // Output 1 (g) depends on c, d, s = global inputs 2, 3, 4.
        assert_eq!(cone.input_map, vec![2, 3, 4]);
        for v in 0..8u32 {
            let local: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            let mut full = vec![false; 5];
            for (j, &gi) in cone.input_map.iter().enumerate() {
                full[gi] = local[j];
            }
            assert_eq!(
                cone.network.simulate(&local).unwrap(),
                vec![n.simulate(&full).unwrap()[1]]
            );
        }
    }

    #[test]
    fn tight_tile_splits_and_stays_equivalent() {
        let n = two_cone_network();
        let backend = tiny_tile(5, 4);
        let design = backend
            .synthesize(&n, &SynthesisCtx::default())
            .expect("each cone fits a 5x4 tile");
        let DesignArtifact::Tiled(schedule) = &design.artifact else {
            panic!("partitioned backend must produce a tile schedule");
        };
        assert!(
            schedule.tiles.len() >= 2,
            "the tight tile must force a split"
        );
        for tile in &schedule.tiles {
            assert!(tile.metrics.rows <= 5 && tile.metrics.cols <= 4);
        }
        // The shared input `s` feeds both cones: at least one transfer.
        assert!(design.metrics.transfer_ops >= 1);
        assert_eq!(design.metrics.tiles, schedule.tiles.len());
        for v in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(
                design.evaluate(&inputs).unwrap(),
                n.simulate(&inputs).unwrap(),
                "mismatch on {inputs:?}"
            );
        }
    }

    #[test]
    fn generous_tile_yields_one_tile_and_no_transfers() {
        let n = two_cone_network();
        let design = tiny_tile(64, 64)
            .synthesize(&n, &SynthesisCtx::default())
            .unwrap();
        assert_eq!(design.metrics.tiles, 1);
        assert_eq!(design.metrics.transfer_ops, 0);
    }

    #[test]
    fn impossible_single_cone_is_a_typed_infeasibility() {
        let n = two_cone_network();
        let err = tiny_tile(1, 1)
            .synthesize(&n, &SynthesisCtx::default())
            .unwrap_err();
        assert!(
            matches!(err, BackendError::Infeasible(_)),
            "expected typed infeasibility, got {err}"
        );
    }

    #[test]
    fn non_tileable_inner_backend_is_rejected_up_front() {
        let backend = PartitionedBackend {
            inner: Box::new(Backend::MagicNor(MagicBackend::default())),
            ..PartitionedBackend::default()
        };
        let err = backend
            .synthesize(&two_cone_network(), &SynthesisCtx::default())
            .unwrap_err();
        assert!(matches!(err, BackendError::Unsupported(_)), "{err}");
    }

    #[test]
    fn nested_partitioning_is_rejected() {
        let backend = PartitionedBackend {
            inner: Box::new(Backend::Partitioned(PartitionedBackend::default())),
            ..PartitionedBackend::default()
        };
        let err = backend
            .synthesize(&two_cone_network(), &SynthesisCtx::default())
            .unwrap_err();
        assert!(matches!(err, BackendError::Unsupported(_)), "{err}");
    }

    #[test]
    fn staircase_inner_tiles_pack_and_verify() {
        let n = two_cone_network();
        let backend = PartitionedBackend {
            tile: SizeLimits {
                max_rows: 8,
                max_cols: 6,
            },
            inner: Box::new(Backend::parse("staircase").unwrap()),
            per_tile_time: Duration::from_secs(2),
        };
        let design = backend.synthesize(&n, &SynthesisCtx::default()).unwrap();
        backend.verify(&design, &n, 64).unwrap();
    }

    #[test]
    fn oversized_benchmark_partitions_on_a_fixed_tile() {
        // ctrl's monolithic COMPACT design does not fit 12×12; the
        // partitioned backend must still deliver an equivalent schedule.
        let b = bench_suite::by_name("ctrl").unwrap();
        let n = b.network().unwrap();
        let backend = tiny_tile(12, 12);
        let design = backend.synthesize(&n, &SynthesisCtx::default()).unwrap();
        assert!(design.metrics.tiles > 1, "12x12 must force partitioning");
        backend.verify(&design, &n, 128).unwrap();
    }
}

//! The multi-output flow of the prior art (Figure 8(a) of the paper): one
//! ROBDD per output, each labelled and mapped independently, then merged
//! along the crossbar diagonal with a single shared 1-terminal wordline.
//! Table III compares this against COMPACT's single-SBDD flow.

use flowc_bdd::build_robdds;
use flowc_compact::pipeline::{synthesize_bdds, CompactError, CompactResult, Config};
use flowc_logic::Network;
use flowc_xbar::Crossbar;

/// The merged per-output design and its provenance.
#[derive(Debug)]
pub struct DiagonalResult {
    /// The merged crossbar (blocks along the diagonal, shared input row).
    pub crossbar: Crossbar,
    /// Per-output synthesis results (block order = output order).
    pub per_output: Vec<CompactResult>,
    /// Node count of the ROBDDs merged at the shared 1-terminal — the
    /// "Nodes" column of the multiple-ROBDDs arm of Table III.
    pub merged_nodes: usize,
}

/// Runs COMPACT independently on each output's ROBDD and merges the blocks
/// diagonally, sharing one input (1-terminal) wordline.
///
/// # Errors
///
/// Propagates [`CompactError`] from any per-output synthesis.
pub fn compact_per_output(
    network: &Network,
    config: &Config,
) -> Result<DiagonalResult, CompactError> {
    let singles = build_robdds(network, config.var_order.as_deref());
    let names: Vec<String> = network
        .outputs()
        .iter()
        .map(|&o| network.net_name(o).to_string())
        .collect();
    let mut per_output = Vec::with_capacity(singles.len());
    for (i, bdds) in singles.iter().enumerate() {
        per_output.push(synthesize_bdds(bdds, &names[i..=i], config)?);
    }

    // Merge: all block rows except each block's input row are stacked, then
    // one shared input row at the bottom; columns are simply concatenated.
    let total_rows: usize = per_output
        .iter()
        .map(|r| r.crossbar.rows().saturating_sub(1))
        .sum::<usize>()
        + 1;
    let total_cols: usize = per_output.iter().map(|r| r.crossbar.cols()).sum();
    let num_inputs = network.num_inputs();
    let mut merged = Crossbar::new(total_rows, total_cols.max(1), num_inputs);
    let shared_input = total_rows - 1;
    merged.set_input_row(shared_input).expect("in range");

    let mut row_offset = 0usize;
    let mut col_offset = 0usize;
    for result in &per_output {
        let block = &result.crossbar;
        let block_input = block.input_row().expect("blocks always bind an input");
        // Map a block row to the merged crossbar.
        let map_row = |r: usize| -> usize {
            use std::cmp::Ordering;
            match r.cmp(&block_input) {
                Ordering::Equal => shared_input,
                Ordering::Less => row_offset + r,
                Ordering::Greater => row_offset + r - 1,
            }
        };
        for (r, c, a) in block.programmed_devices() {
            merged
                .set(map_row(r), col_offset + c, a)
                .expect("offsets in range");
        }
        for port in block.outputs() {
            merged
                .add_output(port.name.clone(), map_row(port.row))
                .expect("offsets in range");
        }
        row_offset += block.rows() - 1;
        col_offset += block.cols();
    }

    // Merged node count: per-output graph nodes, sharing one 1-terminal.
    let blocks_with_terminal = per_output
        .iter()
        .filter(|r| r.graph_nodes > 0)
        .count()
        .max(1);
    let merged_nodes =
        per_output.iter().map(|r| r.graph_nodes).sum::<usize>() - (blocks_with_terminal - 1);

    Ok(DiagonalResult {
        crossbar: merged,
        per_output,
        merged_nodes,
    })
}

/// Convenience: the prior-art staircase applied per output and merged
/// diagonally — the full reference-\[16\] multi-output flow of Table IV.
///
/// # Panics
///
/// Panics only on internal invariant violations.
pub fn staircase_per_output(network: &Network) -> DiagonalResult {
    use flowc_compact::preprocess::BddGraph;
    let singles = build_robdds(network, None);
    let names: Vec<String> = network
        .outputs()
        .iter()
        .map(|&o| network.net_name(o).to_string())
        .collect();
    // Build per-output staircase blocks wrapped in minimal CompactResult-free
    // bookkeeping: reuse the merge by constructing Crossbars directly.
    let mut blocks: Vec<(Crossbar, usize)> = Vec::new();
    for (i, bdds) in singles.iter().enumerate() {
        let graph = BddGraph::from_bdds(bdds);
        let xbar = crate::staircase::staircase_map(&graph, &names[i..=i]);
        blocks.push((xbar, graph.num_nodes()));
    }
    let total_rows: usize = blocks
        .iter()
        .map(|(b, _)| b.rows().saturating_sub(1))
        .sum::<usize>()
        + 1;
    let total_cols: usize = blocks.iter().map(|(b, _)| b.cols()).sum();
    let mut merged = Crossbar::new(total_rows, total_cols.max(1), network.num_inputs());
    let shared_input = total_rows - 1;
    merged.set_input_row(shared_input).expect("in range");
    let mut row_offset = 0usize;
    let mut col_offset = 0usize;
    for (block, _) in &blocks {
        let block_input = block.input_row().expect("bound");
        let map_row = |r: usize| -> usize {
            use std::cmp::Ordering;
            match r.cmp(&block_input) {
                Ordering::Equal => shared_input,
                Ordering::Less => row_offset + r,
                Ordering::Greater => row_offset + r - 1,
            }
        };
        for (r, c, a) in block.programmed_devices() {
            merged
                .set(map_row(r), col_offset + c, a)
                .expect("offsets in range");
        }
        for port in block.outputs() {
            merged
                .add_output(port.name.clone(), map_row(port.row))
                .expect("offsets in range");
        }
        row_offset += block.rows() - 1;
        col_offset += block.cols();
    }
    let with_terminal = blocks.iter().filter(|(_, n)| *n > 0).count().max(1);
    let merged_nodes = blocks.iter().map(|(_, n)| *n).sum::<usize>() - (with_terminal - 1);
    DiagonalResult {
        crossbar: merged,
        per_output: Vec::new(),
        merged_nodes,
    }
}

/// A device-On bridge between every block's terminal and the shared input
/// row is unnecessary: the rows are literally the same wire after mapping.
#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::bench_suite;
    use flowc_logic::{GateKind, Network};
    use flowc_xbar::metrics::CrossbarMetrics;
    use flowc_xbar::verify::verify_functional;

    fn two_output_network() -> Network {
        let mut n = Network::new("two");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        let g = n.add_gate(GateKind::Xor, &[ab, c], "g").unwrap();
        n.mark_output(f);
        n.mark_output(g);
        n
    }

    #[test]
    fn merged_compact_design_is_valid() {
        let n = two_output_network();
        let r = compact_per_output(&n, &Config::default()).unwrap();
        let report = verify_functional(&r.crossbar, &n, 64).unwrap();
        assert!(report.is_valid(), "mismatches: {:?}", report.mismatches);
        assert_eq!(r.per_output.len(), 2);
    }

    #[test]
    fn merged_staircase_design_is_valid() {
        let n = two_output_network();
        let r = staircase_per_output(&n);
        let report = verify_functional(&r.crossbar, &n, 64).unwrap();
        assert!(report.is_valid(), "mismatches: {:?}", report.mismatches);
    }

    #[test]
    fn sbdd_flow_beats_per_output_flow() {
        // Table III's headline: the shared SBDD yields fewer nodes and a
        // smaller semiperimeter than merged per-output ROBDDs.
        let b = bench_suite::by_name("dec").unwrap();
        let n = b.network().unwrap();
        let shared = flowc_compact::synthesize(&n, &Config::default()).unwrap();
        let separate = compact_per_output(&n, &Config::default()).unwrap();
        assert!(shared.graph_nodes <= separate.merged_nodes);
        let sep_metrics = CrossbarMetrics::of(&separate.crossbar);
        assert!(
            shared.metrics.semiperimeter <= sep_metrics.semiperimeter,
            "{} vs {}",
            shared.metrics.semiperimeter,
            sep_metrics.semiperimeter
        );
    }

    #[test]
    fn merged_rows_share_one_input() {
        let n = two_output_network();
        let r = compact_per_output(&n, &Config::default()).unwrap();
        let expect_rows: usize = r
            .per_output
            .iter()
            .map(|b| b.crossbar.rows() - 1)
            .sum::<usize>()
            + 1;
        assert_eq!(r.crossbar.rows(), expect_rows);
        assert_eq!(r.crossbar.input_row(), Some(expect_rows - 1));
    }
}

//! Prior-art comparators for the COMPACT evaluation:
//!
//! - [`staircase`]: the previous state-of-the-art flow-based mapping
//!   (reference \[16\] of the paper), which assigns *every* BDD node both a
//!   wordline and a bitline, yielding a semiperimeter of about `2n`
//!   (the paper measures `1.90n` for \[16\]) and a maximum dimension of `n`.
//! - [`robdd_diagonal`]: the multi-output flow of the prior art — one
//!   ROBDD per output, mapped independently and merged along the crossbar
//!   diagonal sharing the 1-terminal wordline (Figure 8(a)).
//! - [`magic`]: a CONTRA-style MAGIC (NOR-based stateful logic) execution
//!   model, the Figure 13 comparator. It reports operation counts (INPUT /
//!   COPY / NOR), which CONTRA uses as its power and delay proxies.
//!
//! All of these — plus COMPACT itself and the CONTRA-style
//! area-constrained [`partitioned`] mapping — are unified behind the
//! [`backend::MappingBackend`] trait and selected through the single
//! enum-dispatched [`backend::Backend`] surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod magic;
pub mod partitioned;
pub mod robdd_diagonal;
pub mod staircase;

pub use backend::{
    partitioned_with_tile, unknown_name_error, Backend, BackendError, Capabilities, CompactBackend,
    DesignArtifact, DiagonalBackend, MagicBackend, MappedDesign, MappingBackend, StaircaseBackend,
    SynthesisCtx,
};
pub use partitioned::{PartitionedBackend, Tile, TileSchedule};

//! Solution, status, and convergence-trace types shared by the MILP solver
//! and the domain-specific branch & bounds built on top of it.

use std::fmt;
use std::time::Duration;

/// Errors from the MILP solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MilpError {
    /// The model has no feasible integer point.
    Infeasible,
    /// The relaxation is unbounded below, so the MILP has no finite optimum.
    Unbounded,
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "model is infeasible"),
            MilpError::Unbounded => write!(f, "model is unbounded"),
        }
    }
}

impl std::error::Error for MilpError {}

/// How a solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Optimality proven (incumbent meets the best bound).
    Optimal,
    /// The time limit expired with a feasible incumbent; `best_bound` tells
    /// how far it might be from optimal.
    TimeLimit,
}

/// One sample of the solver's convergence state, as plotted in Figure 10 of
/// the paper (best integer, best bound, relative gap over elapsed time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Wall-clock time since the solve started.
    pub elapsed: Duration,
    /// Objective of the best integer solution found so far (`None` until the
    /// first incumbent).
    pub best_integer: Option<f64>,
    /// Best proven lower bound on the optimum.
    pub best_bound: f64,
    /// Open nodes in the branch & bound tree.
    pub open_nodes: usize,
}

impl TracePoint {
    /// CPLEX-style relative gap `|best_integer - best_bound| / |best_integer|`,
    /// or 1.0 while no incumbent exists.
    pub fn relative_gap(&self) -> f64 {
        match self.best_integer {
            None => 1.0,
            Some(inc) => {
                let denom = inc.abs().max(1e-10);
                ((inc - self.best_bound).abs() / denom).min(1.0)
            }
        }
    }
}

/// The recorded convergence trajectory of a solve.
#[derive(Debug, Clone, Default)]
pub struct SolveTrace {
    points: Vec<TracePoint>,
}

impl SolveTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SolveTrace::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, point: TracePoint) {
        self.points.push(point);
    }

    /// All samples in chronological order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The final relative gap (1.0 for an empty trace).
    pub fn final_gap(&self) -> f64 {
        self.points.last().map_or(1.0, TracePoint::relative_gap)
    }
}

/// A feasible integer solution with its provenance.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Values for every model variable, in declaration order.
    pub values: Vec<f64>,
    /// Objective at `values`.
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: SolveStatus,
    /// Best proven lower bound at termination.
    pub best_bound: f64,
    /// The convergence trace (for Figures 10/11-style reporting).
    pub trace: SolveTrace,
    /// Branch & bound nodes explored (0 when the root alone decided).
    pub nodes: u64,
    /// Warm-start outcome: `None` when no warm start was supplied,
    /// `Some(true)` when the supplied point was accepted as the initial
    /// incumbent, `Some(false)` when it failed validation.
    pub warm_start: Option<bool>,
}

impl Solution {
    /// CPLEX-style relative MIP gap at termination.
    pub fn relative_gap(&self) -> f64 {
        let denom = self.objective.abs().max(1e-10);
        ((self.objective - self.best_bound).abs() / denom).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_semantics() {
        let p = TracePoint {
            elapsed: Duration::from_secs(1),
            best_integer: None,
            best_bound: 3.0,
            open_nodes: 5,
        };
        assert_eq!(p.relative_gap(), 1.0);
        let p = TracePoint {
            best_integer: Some(10.0),
            ..p
        };
        assert!((p.relative_gap() - 0.7).abs() < 1e-12);
        let closed = TracePoint {
            best_integer: Some(3.0),
            best_bound: 3.0,
            ..p
        };
        assert_eq!(closed.relative_gap(), 0.0);
    }

    #[test]
    fn trace_accumulates() {
        let mut t = SolveTrace::new();
        assert_eq!(t.final_gap(), 1.0);
        t.push(TracePoint {
            elapsed: Duration::from_millis(1),
            best_integer: Some(4.0),
            best_bound: 2.0,
            open_nodes: 1,
        });
        assert_eq!(t.points().len(), 1);
        assert!((t.final_gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        assert!(MilpError::Infeasible.to_string().contains("infeasible"));
        assert!(MilpError::Unbounded.to_string().contains("unbounded"));
    }
}

//! Work-stealing parallel driver for [`BranchBound`].
//!
//! Architecture (DESIGN.md §13): each worker owns a local best-first heap
//! and a private [`Bounder`]; surplus children flow through a shared
//! injector heap that idle workers steal from. The incumbent objective
//! lives as `f64` bits in an [`AtomicU64`] (CAS-improve), so pruning reads
//! are lock-free; the incumbent *vector* sits behind a mutex that is only
//! touched on improvement. An atomic open-node count detects termination:
//! children are added before the parent is retired, so the count can only
//! reach zero when no node exists anywhere. Every worker polls the budget
//! and deadline between bounder calls, and idle workers wake on a timeout,
//! so cancellation lands within ~10ms from any state.
//!
//! The result is deterministic modulo tie-breaking: the proven optimum
//! matches the sequential driver exactly (pinned by test); the optimal
//! point may be a different one when several are tied.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::branch::{
    complete_leaf, expand_node, heuristic_incumbent, propagate, sanitize_bound,
    validate_warm_start, Bounder, BranchBound, Node,
};
use crate::model::Model;
use crate::sol::{MilpError, Solution, SolveStatus, SolveTrace, TracePoint};
use crate::Result;

/// How long an idle worker sleeps before re-checking budget/deadline/work.
/// Keeps worst-case cancellation latency for a fully idle worker well under
/// the ~10ms target.
const IDLE_POLL: Duration = Duration::from_millis(2);

struct Shared {
    /// Bits of the best incumbent objective (`+inf` when none). Monotone
    /// non-increasing under CAS, so stale reads only delay pruning.
    incumbent_bits: AtomicU64,
    /// The incumbent vector; locked only on improvement and at the end.
    incumbent: Mutex<Option<(Vec<f64>, f64)>>,
    /// Shared injector pool for stealing; paired with `work_cv`.
    injector: Mutex<BinaryHeap<Node>>,
    work_cv: Condvar,
    /// Nodes alive anywhere (injector + local heaps + in expansion).
    open: AtomicUsize,
    /// Nodes fully expanded, for traces and the node ceiling.
    explored: AtomicU64,
    /// Search exhausted (open hit zero).
    done: AtomicBool,
    /// Budget/deadline stop: abandon open nodes, report `TimeLimit`.
    stop: AtomicBool,
    /// Min bound over nodes abandoned at stop (bits, CAS-min folded).
    abandoned_bits: AtomicU64,
    trace: Mutex<SolveTrace>,
}

impl Shared {
    fn incumbent_obj(&self) -> f64 {
        f64::from_bits(self.incumbent_bits.load(Ordering::Acquire))
    }

    /// CAS-improves the shared incumbent; records a trace point on success.
    fn offer_incumbent(&self, values: Vec<f64>, obj: f64, start: Instant) {
        let mut cur = self.incumbent_bits.load(Ordering::Acquire);
        loop {
            if obj >= f64::from_bits(cur) - 1e-12 {
                return;
            }
            match self.incumbent_bits.compare_exchange_weak(
                cur,
                obj.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut guard = poisoned_ok(self.incumbent.lock());
        let improves = guard.as_ref().is_none_or(|(_, o)| obj < *o - 1e-12);
        if improves {
            *guard = Some((values, obj));
        }
        drop(guard);
        let mut trace = poisoned_ok(self.trace.lock());
        trace.push(TracePoint {
            elapsed: start.elapsed(),
            best_integer: Some(obj),
            best_bound: f64::NEG_INFINITY,
            open_nodes: self.open.load(Ordering::Relaxed),
        });
    }

    /// Folds `bound` into the abandoned-node minimum (stop path only).
    fn fold_abandoned(&self, bound: f64) {
        let mut cur = self.abandoned_bits.load(Ordering::Acquire);
        loop {
            if bound >= f64::from_bits(cur) {
                return;
            }
            match self.abandoned_bits.compare_exchange_weak(
                cur,
                bound.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Retires one node; flips `done` and wakes everyone at zero.
    fn retire(&self) {
        if self.open.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.store(true, Ordering::Release);
            self.work_cv.notify_all();
        }
    }
}

fn poisoned_ok<T>(r: std::result::Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parallel best-first search. `make_bounder` builds one private bounder
/// per worker; the root relaxation and heuristics run on the calling
/// thread first so every worker starts from a seeded incumbent.
pub(crate) fn solve_parallel<B, F>(
    cfg: &BranchBound,
    model: &Model,
    make_bounder: F,
) -> Result<Solution>
where
    B: Bounder,
    F: Fn() -> B + Sync,
{
    let start = Instant::now();
    let n = model.num_vars();
    let mut root_bounder = make_bounder();

    let mut warm_used = cfg.warm.as_ref().map(|_| false);
    let mut seed_incumbent: Option<(Vec<f64>, f64)> = None;
    if let Some(warm) = &cfg.warm {
        if let Some(obj) = validate_warm_start(model, warm, cfg.integrality_tol) {
            seed_incumbent = Some((warm.clone(), obj));
            warm_used = Some(true);
        }
    }

    let root_fixed: Vec<Option<bool>> = vec![None; n];
    let Some(root_fixed) = propagate(model, root_fixed) else {
        return Err(MilpError::Infeasible);
    };
    let seed_obj = seed_incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
    let root_bound = sanitize_bound(root_bounder.lower_bound(model, &root_fixed, seed_obj));
    let root_bound = root_bounder.tighten_bound(root_bound);
    if root_bound == f64::NEG_INFINITY {
        return Err(MilpError::Unbounded);
    }
    if root_bound.is_infinite() {
        if let Some((values, objective)) = seed_incumbent {
            return Ok(Solution {
                values,
                objective,
                status: SolveStatus::Optimal,
                best_bound: objective,
                trace: SolveTrace::new(),
                nodes: 0,
                warm_start: warm_used,
            });
        }
        return Err(MilpError::Infeasible);
    }
    if seed_incumbent.is_none() {
        seed_incumbent = heuristic_incumbent(model, &mut root_bounder, &root_fixed)
            .or_else(|| complete_leaf(model, &mut root_bounder, &root_fixed));
    }

    let shared = Shared {
        incumbent_bits: AtomicU64::new(
            seed_incumbent
                .as_ref()
                .map_or(f64::INFINITY, |(_, o)| *o)
                .to_bits(),
        ),
        incumbent: Mutex::new(seed_incumbent),
        injector: Mutex::new(BinaryHeap::new()),
        work_cv: Condvar::new(),
        open: AtomicUsize::new(1),
        explored: AtomicU64::new(0),
        done: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        abandoned_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        trace: Mutex::new(SolveTrace::new()),
    };
    poisoned_ok(shared.injector.lock()).push(Node {
        bound: root_bound,
        fixed: root_fixed,
        depth: 0,
        point: root_bounder.relaxation_point().map(<[f64]>::to_vec),
    });
    drop(root_bounder);

    std::thread::scope(|scope| {
        for _ in 0..cfg.threads {
            let shared = &shared;
            let make_bounder = &make_bounder;
            scope.spawn(move || {
                let mut bounder = make_bounder();
                worker(cfg, model, shared, &mut bounder, start);
            });
        }
    });

    let explored = shared.explored.load(Ordering::Acquire);
    let incumbent = poisoned_ok(shared.incumbent.lock()).take();
    let mut trace = poisoned_ok(shared.trace.lock());
    let stopped = shared.stop.load(Ordering::Acquire);
    // Proven bound: on a clean finish every node was processed, so the
    // incumbent is optimal. On a stop, the weakest abandoned node bounds
    // the optimum (injector leftovers were folded by the workers).
    let (status, best_bound) = if stopped {
        let abandoned = f64::from_bits(shared.abandoned_bits.load(Ordering::Acquire));
        let obj = incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        let bound = if abandoned.is_finite() {
            abandoned.min(obj)
        } else {
            obj
        };
        (SolveStatus::TimeLimit, bound)
    } else {
        let obj = incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        (SolveStatus::Optimal, obj)
    };
    trace.push(TracePoint {
        elapsed: start.elapsed(),
        best_integer: incumbent.as_ref().map(|(_, o)| *o),
        best_bound,
        open_nodes: shared.open.load(Ordering::Relaxed),
    });
    let trace = std::mem::take(&mut *trace);
    crate::branch::finish(incumbent, best_bound, trace, status, explored, warm_used)
}

fn worker(
    cfg: &BranchBound,
    model: &Model,
    shared: &Shared,
    bounder: &mut dyn Bounder,
    start: Instant,
) {
    let mut local: BinaryHeap<Node> = BinaryHeap::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            drain_abandoned(shared, &mut local);
            return;
        }
        let Some(node) = next_node(shared, &mut local) else {
            return; // done, nothing left anywhere
        };
        // Budget/deadline gate before any bounder work on this node.
        let explored = shared.explored.load(Ordering::Relaxed);
        if cfg.budget_exhausted(explored) || start.elapsed() >= cfg.time_limit {
            shared.stop.store(true, Ordering::Release);
            shared.work_cv.notify_all();
            shared.fold_abandoned(node.bound);
            drain_abandoned(shared, &mut local);
            return;
        }
        // Prune against the freshest incumbent (and the gap tolerance).
        let inc_obj = shared.incumbent_obj();
        if inc_obj.is_finite() {
            let denom = inc_obj.abs().max(1e-10);
            if node.bound >= inc_obj - 1e-9
                || (inc_obj - node.bound).abs() / denom <= cfg.gap_tolerance
            {
                shared.retire();
                continue;
            }
        }
        let explored = shared.explored.fetch_add(1, Ordering::AcqRel) + 1;
        if (explored as usize).is_multiple_of(cfg.trace_every) {
            let mut trace = poisoned_ok(shared.trace.lock());
            trace.push(TracePoint {
                elapsed: start.elapsed(),
                best_integer: if inc_obj.is_finite() {
                    Some(inc_obj)
                } else {
                    None
                },
                best_bound: node.bound,
                open_nodes: shared.open.load(Ordering::Relaxed),
            });
        }
        let mut abort = || {
            shared.stop.load(Ordering::Acquire)
                || cfg.budget_exhausted(shared.explored.load(Ordering::Relaxed))
                || start.elapsed() >= cfg.time_limit
        };
        let Some(expansion) = expand_node(
            model,
            bounder,
            &node,
            shared.incumbent_obj(),
            cfg.integrality_tol,
            &mut abort,
        ) else {
            shared.stop.store(true, Ordering::Release);
            shared.work_cv.notify_all();
            shared.fold_abandoned(node.bound);
            drain_abandoned(shared, &mut local);
            return;
        };
        for (values, obj) in expansion.incumbents {
            shared.offer_incumbent(values, obj, start);
        }
        // Children go live before the parent retires so `open` can only hit
        // zero when the tree is truly exhausted.
        let mut children = expansion.children;
        if !children.is_empty() {
            shared.open.fetch_add(children.len(), Ordering::AcqRel);
            // Keep the most promising child; share the rest.
            children.sort_by(|a, b| a.bound.total_cmp(&b.bound));
            let mut iter = children.into_iter();
            if let Some(first) = iter.next() {
                local.push(first);
            }
            let rest: Vec<Node> = iter.collect();
            if !rest.is_empty() {
                let mut injector = poisoned_ok(shared.injector.lock());
                for child in rest {
                    injector.push(child);
                    shared.work_cv.notify_one();
                }
            }
        }
        shared.retire();
    }
}

/// Pops the best local node, else steals from the injector, else waits.
/// Returns `None` when the search is exhausted.
fn next_node(shared: &Shared, local: &mut BinaryHeap<Node>) -> Option<Node> {
    if let Some(node) = local.pop() {
        return Some(node);
    }
    let mut injector = poisoned_ok(shared.injector.lock());
    loop {
        if let Some(node) = injector.pop() {
            return Some(node);
        }
        if shared.done.load(Ordering::Acquire) || shared.stop.load(Ordering::Acquire) {
            return None;
        }
        // Timed wait so an idle worker still notices budget cancellation
        // promptly even if no work ever arrives.
        let (guard, _) = poisoned_ok(shared.work_cv.wait_timeout(injector, IDLE_POLL));
        injector = guard;
    }
}

/// Folds the bounds of every node this worker still holds (stop path), so
/// the reported `best_bound` stays valid.
fn drain_abandoned(shared: &Shared, local: &mut BinaryHeap<Node>) {
    for node in local.drain() {
        shared.fold_abandoned(node.bound);
    }
    let mut injector = poisoned_ok(shared.injector.lock());
    for node in injector.drain() {
        shared.fold_abandoned(node.bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::{BranchBound, LpBounder};
    use flowc_budget::Budget;

    fn ring_cover_model(n: usize) -> Model {
        let mut m = Model::new();
        let xs: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        for i in 0..n {
            m.add_constraint(
                &[(xs[i], 1.0), (xs[(i + 1) % n], 1.0), (xs[(i + 2) % n], 1.0)],
                Sense::Ge,
                1.0,
            );
        }
        m
    }

    /// Determinism modulo tie-breaking: the parallel solve proves the same
    /// optimum as the sequential solve, run-to-run and thread-count to
    /// thread-count.
    #[test]
    fn parallel_matches_sequential_objective() {
        for n in [8, 11, 14] {
            let m = ring_cover_model(n);
            let seq = BranchBound::new().solve(&m).unwrap();
            for threads in [2, 4] {
                let par = BranchBound::new().threads(threads).solve(&m).unwrap();
                assert_eq!(par.status, SolveStatus::Optimal);
                assert!(
                    (par.objective - seq.objective).abs() < 1e-6,
                    "n={n} threads={threads}: parallel {} vs sequential {}",
                    par.objective,
                    seq.objective
                );
                assert!(m.is_feasible(&par.values, 1e-6));
            }
        }
    }

    #[test]
    fn parallel_with_custom_bounder_factory() {
        let m = ring_cover_model(12);
        let seq = BranchBound::new().solve(&m).unwrap();
        let par = BranchBound::new()
            .threads(3)
            .solve_parallel_with(&m, LpBounder::new)
            .unwrap();
        assert!((par.objective - seq.objective).abs() < 1e-6);
    }

    #[test]
    fn parallel_warm_start_accepted() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        let sol = BranchBound::new()
            .threads(2)
            .warm_start(vec![1.0, 0.0, 1.0, 0.0, 1.0])
            .solve(&m)
            .unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(sol.warm_start, Some(true));
    }

    #[test]
    fn parallel_cancellation_is_prompt_from_any_worker() {
        // Mirror of the sequential cancellation test: every worker must
        // notice the cancel between bounder calls, not only at pops.
        let m = crate::branch::tests::market_split_model(40, 4);
        let budget = Budget::unlimited();
        let handle = budget.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.cancel();
        });
        let start = Instant::now();
        let result = BranchBound::new()
            .threads(4)
            .time_limit(Duration::from_secs(30))
            .budget(&budget)
            .solve(&m);
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        match result {
            Ok(sol) => assert_eq!(sol.status, SolveStatus::TimeLimit),
            Err(e) => assert_eq!(e, MilpError::Infeasible),
        }
        assert!(
            elapsed < Duration::from_secs(2),
            "cancelled parallel solve took {elapsed:?}"
        );
    }

    #[test]
    fn parallel_infeasible_model_errors() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        m.add_constraint(&[(a, 1.0)], Sense::Ge, 2.0);
        assert_eq!(
            BranchBound::new().threads(2).solve(&m).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn parallel_counts_nodes() {
        // C5 vertex cover: LP root bound 2.5 < optimum 3 forces expansion.
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        let sol = BranchBound::new().threads(2).solve(&m).unwrap();
        assert!(sol.nodes >= 1);
    }
}

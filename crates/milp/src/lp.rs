//! A dense two-phase primal simplex for linear-programming relaxations.
//!
//! The solver targets the LP relaxations that arise in this workspace
//! (vertex-cover kernels, small weighted VH-labeling models, unit tests);
//! it trades sparsity for simplicity and is intentionally dense. Larger
//! instances go through the combinatorial [`crate::Bounder`] path instead.

use crate::model::{Model, Sense, VarKind};

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution: variable values (model order) and objective.
    Optimal {
        /// Values of the model's variables.
        x: Vec<f64>,
        /// Objective value `cᵀx`.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Numerical tolerance used throughout the simplex.
const EPS: f64 = 1e-9;
/// Iteration budget multiplier before declaring a stall (switch to Bland).
const DANTZIG_LIMIT_FACTOR: usize = 4;

/// A dense two-phase primal simplex solver. Construct with
/// [`Simplex::new`], then call [`Simplex::solve`].
#[derive(Debug, Default)]
pub struct Simplex {
    _private: (),
}

impl Simplex {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Simplex { _private: () }
    }

    /// Solves the LP relaxation of `model` (binaries relaxed to `[0,1]`).
    ///
    /// Fixed assignments can be imposed by passing `fixed`, a slice of
    /// `(var_index, value)` pairs that overrides those variables' bounds.
    pub fn solve(&self, model: &Model, fixed: &[(usize, f64)]) -> LpResult {
        // Effective bounds per variable.
        let n = model.num_vars();
        let mut lb = vec![0.0f64; n];
        let mut ub = vec![f64::INFINITY; n];
        for (i, v) in model.vars.iter().enumerate() {
            match v.kind {
                VarKind::Binary => {
                    lb[i] = 0.0;
                    ub[i] = 1.0;
                }
                VarKind::Continuous { lb: l, ub: u } => {
                    lb[i] = l;
                    ub[i] = u;
                }
            }
        }
        for &(i, val) in fixed {
            lb[i] = val;
            ub[i] = val;
        }
        for i in 0..n {
            if lb[i] > ub[i] + EPS {
                return LpResult::Infeasible;
            }
            if !lb[i].is_finite() {
                // Free-below variables are not produced by this workspace;
                // clamp to a large negative box to stay dense-friendly.
                lb[i] = -1e12;
            }
        }

        // Shift x = lb + x', x' in [0, ub-lb]. Rewrite rows accordingly and
        // add explicit upper-bound rows for finite ranges.
        #[derive(Clone)]
        struct Row {
            coeffs: Vec<f64>, // dense over structural vars
            sense: Sense,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
        for c in &model.cons {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs;
            for &(v, a) in &c.terms {
                coeffs[v.index()] += a;
                rhs -= a * lb[v.index()];
            }
            rows.push(Row {
                coeffs,
                sense: c.sense,
                rhs,
            });
        }
        for i in 0..n {
            let range = ub[i] - lb[i];
            if range.is_finite() {
                // Also emitted when range == 0 (fixed variable): the
                // degenerate row pins the shifted column at zero.
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push(Row {
                    coeffs,
                    sense: Sense::Le,
                    rhs: range.max(0.0),
                });
            }
        }

        // Normalize to nonnegative rhs.
        for r in &mut rows {
            if r.rhs < 0.0 {
                for c in &mut r.coeffs {
                    *c = -*c;
                }
                r.rhs = -r.rhs;
                r.sense = match r.sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
        }

        let m = rows.len();
        // Column layout: [structural n][slack/surplus s][artificial a][rhs].
        let num_slack = rows
            .iter()
            .filter(|r| !matches!(r.sense, Sense::Eq))
            .count();
        let num_art = rows
            .iter()
            .filter(|r| !matches!(r.sense, Sense::Le))
            .count();
        let total = n + num_slack + num_art;
        let mut t = vec![vec![0.0f64; total + 1]; m + 1];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = n + num_slack;
        let mut art_cols: Vec<usize> = Vec::new();
        for (ri, row) in rows.iter().enumerate() {
            t[ri][..n].copy_from_slice(&row.coeffs);
            t[ri][total] = row.rhs;
            match row.sense {
                Sense::Le => {
                    t[ri][slack_idx] = 1.0;
                    basis[ri] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge => {
                    t[ri][slack_idx] = -1.0;
                    slack_idx += 1;
                    t[ri][art_idx] = 1.0;
                    basis[ri] = art_idx;
                    art_cols.push(art_idx);
                    art_idx += 1;
                }
                Sense::Eq => {
                    t[ri][art_idx] = 1.0;
                    basis[ri] = art_idx;
                    art_cols.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        // Phase 1: minimize the sum of artificials.
        if !art_cols.is_empty() {
            for &c in &art_cols {
                t[m][c] = 1.0;
            }
            // Price out the artificial basis.
            for ri in 0..m {
                if art_cols.contains(&basis[ri]) {
                    let pivot_row: Vec<f64> = t[ri].clone();
                    for (j, obj) in t[m].iter_mut().enumerate() {
                        *obj -= pivot_row[j];
                    }
                }
            }
            if !run_simplex(&mut t, &mut basis, total) {
                // Phase-1 objective is bounded by construction; unbounded
                // here indicates numerical trouble — treat as infeasible.
                return LpResult::Infeasible;
            }
            if -t[m][total] > 1e-6 {
                return LpResult::Infeasible;
            }
            // Drive any remaining artificial out of the basis if possible.
            for ri in 0..m {
                if art_cols.contains(&basis[ri]) {
                    if let Some(j) = (0..n + num_slack).find(|&j| t[ri][j].abs() > 1e-7) {
                        pivot(&mut t, ri, j, total);
                        basis[ri] = j;
                    }
                }
            }
            // Zero the phase-1 objective row and forbid artificial columns.
            for cell in t[m].iter_mut().take(total + 1) {
                *cell = 0.0;
            }
            for row in t.iter_mut().take(m) {
                for &c in &art_cols {
                    row[c] = 0.0;
                }
            }
        }

        // Phase 2 objective (shifted model objective over structurals).
        for (i, v) in model.vars.iter().enumerate() {
            t[m][i] = v.obj;
        }
        // Price out basic structural columns.
        for ri in 0..m {
            let b = basis[ri];
            if t[m][b].abs() > 0.0 {
                let coeff = t[m][b];
                let pivot_row: Vec<f64> = t[ri].clone();
                for (j, obj) in t[m].iter_mut().enumerate() {
                    *obj -= coeff * pivot_row[j];
                }
            }
        }
        if !run_simplex(&mut t, &mut basis, total) {
            return LpResult::Unbounded;
        }

        // Extract solution.
        let mut x = lb.clone();
        for ri in 0..m {
            if basis[ri] < n {
                x[basis[ri]] = lb[basis[ri]] + t[ri][total];
            }
        }
        let objective = model.objective_value(&x);
        LpResult::Optimal { x, objective }
    }
}

/// Runs primal simplex iterations on the tableau until optimal or unbounded.
/// Returns `false` on unboundedness.
fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], total: usize) -> bool {
    let m = t.len() - 1;
    let dantzig_limit = DANTZIG_LIMIT_FACTOR * (m + total) + 200;
    let mut iters = 0usize;
    loop {
        iters += 1;
        let bland = iters > dantzig_limit;
        // Entering column: most negative reduced cost (Dantzig), or first
        // negative (Bland, guaranteed finite).
        let mut enter = usize::MAX;
        let mut best = -EPS;
        for (j, &rc) in t[m].iter().enumerate().take(total) {
            if rc < -EPS {
                if bland {
                    enter = j;
                    break;
                }
                if rc < best {
                    best = rc;
                    enter = j;
                }
            }
        }
        if enter == usize::MAX {
            return true; // optimal
        }
        // Leaving row: minimum ratio, ties by smallest basis index (Bland).
        let mut leave = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for ri in 0..m {
            let a = t[ri][enter];
            if a > EPS {
                let ratio = t[ri][total] / a;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && (leave == usize::MAX || basis[ri] < basis[leave]))
                {
                    best_ratio = ratio;
                    leave = ri;
                }
            }
        }
        if leave == usize::MAX {
            return false; // unbounded
        }
        pivot(t, leave, enter, total);
        basis[leave] = enter;
    }
}

/// Gauss-Jordan pivot on (`row`, `col`).
fn pivot(t: &mut [Vec<f64>], row: usize, col: usize, total: usize) {
    let piv = t[row][col];
    debug_assert!(piv.abs() > EPS, "pivot too small");
    for cell in t[row].iter_mut().take(total + 1) {
        *cell /= piv;
    }
    let pivot_row: Vec<f64> = t[row].clone();
    for (ri, r) in t.iter_mut().enumerate() {
        if ri == row {
            continue;
        }
        let factor = r[col];
        if factor.abs() > 0.0 {
            for j in 0..=total {
                r[j] -= factor * pivot_row[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_2d_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 2.0, -1.0);
        let y = m.add_continuous("y", 0.0, 3.0, -2.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(objective, -7.0);
                assert_close(sol[0], 1.0);
                assert_close(sol[1], 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y  s.t. x + y >= 3, x - y = 1  -> x = 2, y = 1.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(objective, 3.0);
                assert_close(sol[0], 2.0);
                assert_close(sol[1], 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(Simplex::new().solve(&m, &[]), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(Simplex::new().solve(&m, &[]), LpResult::Unbounded);
    }

    #[test]
    fn binary_relaxation_is_boxed() {
        // min -x over binary x: LP relaxation gives x = 1.
        let mut m = Model::new();
        let _x = m.add_binary("x", -1.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(sol[0], 1.0);
                assert_close(objective, -1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fixed_overrides_bounds() {
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        let y = m.add_binary("y", -1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 2.0);
        match Simplex::new().solve(&m, &[(x.index(), 0.0)]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(sol[0], 0.0);
                assert_close(sol[1], 1.0);
                assert_close(objective, -1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contradictory_fixing_is_infeasible() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 1.0);
        assert_eq!(
            Simplex::new().solve(&m, &[(x.index(), 0.0)]),
            LpResult::Infeasible
        );
    }

    #[test]
    fn vertex_cover_lp_is_half_integral_on_triangle() {
        // VC LP on a triangle: optimum 1.5 with all x = 1/2.
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        let c = m.add_binary("c", 1.0);
        for (u, v) in [(a, b), (b, c), (a, c)] {
            m.add_constraint(&[(u, 1.0), (v, 1.0)], Sense::Ge, 1.0);
        }
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { objective, .. } => assert_close(objective, 1.5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate instance; Bland fallback must terminate.
        let mut m = Model::new();
        let x1 = m.add_continuous("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = m.add_continuous("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = m.add_continuous("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = m.add_continuous("x4", 0.0, f64::INFINITY, 6.0);
        m.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        m.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        m.add_constraint(&[(x3, 1.0)], Sense::Le, 1.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { objective, .. } => assert_close(objective, -0.05),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! A dense two-phase primal simplex for linear-programming relaxations.
//!
//! The solver targets the LP relaxations that arise in this workspace
//! (vertex-cover kernels, small weighted VH-labeling models, unit tests);
//! it trades sparsity for simplicity and is intentionally dense. Larger
//! instances go through the combinatorial [`crate::Bounder`] path instead.

use crate::model::{Model, Sense, VarKind};

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution: variable values (model order) and objective.
    Optimal {
        /// Values of the model's variables.
        x: Vec<f64>,
        /// Objective value `cᵀx`.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Numerical tolerance used throughout the simplex.
const EPS: f64 = 1e-9;
/// Iteration budget multiplier before declaring a stall (switch to Bland).
const DANTZIG_LIMIT_FACTOR: usize = 4;

/// A dense two-phase primal simplex solver. Construct with
/// [`Simplex::new`], then call [`Simplex::solve`].
#[derive(Debug, Default, Clone)]
pub struct Simplex {
    _private: (),
}

impl Simplex {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Simplex { _private: () }
    }

    /// Solves the LP relaxation of `model` (binaries relaxed to `[0,1]`).
    ///
    /// Fixed assignments can be imposed by passing `fixed`, a slice of
    /// `(var_index, value)` pairs that overrides those variables' bounds.
    pub fn solve(&self, model: &Model, fixed: &[(usize, f64)]) -> LpResult {
        // Effective bounds per variable.
        let n = model.num_vars();
        let mut lb = vec![0.0f64; n];
        let mut ub = vec![f64::INFINITY; n];
        for (i, v) in model.vars.iter().enumerate() {
            match v.kind {
                VarKind::Binary => {
                    lb[i] = 0.0;
                    ub[i] = 1.0;
                }
                VarKind::Continuous { lb: l, ub: u } => {
                    lb[i] = l;
                    ub[i] = u;
                }
            }
        }
        for &(i, val) in fixed {
            lb[i] = val;
            ub[i] = val;
        }
        for i in 0..n {
            if lb[i] > ub[i] + EPS {
                return LpResult::Infeasible;
            }
            if !lb[i].is_finite() {
                // Free-below variables are not produced by this workspace;
                // clamp to a large negative box to stay dense-friendly.
                lb[i] = -1e12;
            }
        }

        // Shift x = lb + x', x' in [0, ub-lb]. Rewrite rows accordingly;
        // columns with zero range (fixed variables) are substituted out —
        // their shifted value is identically zero.
        let range: Vec<f64> = (0..n).map(|i| (ub[i] - lb[i]).max(0.0)).collect();
        let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints());
        for c in &model.cons {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs;
            for &(v, a) in &c.terms {
                rhs -= a * lb[v.index()];
                if range[v.index()] > EPS {
                    coeffs[v.index()] += a;
                }
            }
            rows.push(Row {
                coeffs,
                sense: c.sense,
                rhs,
                alive: true,
            });
        }

        let mut eliminated = vec![false; n];
        let mut elims: Vec<Elim> = Vec::new();
        if presolve(model, &range, &mut rows, &mut eliminated, &mut elims).is_err() {
            return LpResult::Infeasible;
        }

        // Compact the live columns and append their upper-bound rows.
        let cols: Vec<usize> = (0..n)
            .filter(|&i| range[i] > EPS && !eliminated[i])
            .collect();
        let k = cols.len();
        let mut trows: Vec<TRow> = Vec::with_capacity(rows.len() + k);
        for row in rows.iter().filter(|r| r.alive) {
            trows.push(TRow {
                coeffs: cols.iter().map(|&i| row.coeffs[i]).collect(),
                sense: row.sense,
                rhs: row.rhs,
            });
        }
        for (ci, &i) in cols.iter().enumerate() {
            if range[i].is_finite() {
                let mut coeffs = vec![0.0; k];
                coeffs[ci] = 1.0;
                trows.push(TRow {
                    coeffs,
                    sense: Sense::Le,
                    rhs: range[i],
                });
            }
        }

        // Normalize to nonnegative rhs.
        for r in &mut trows {
            if r.rhs < 0.0 {
                for c in &mut r.coeffs {
                    *c = -*c;
                }
                r.rhs = -r.rhs;
                r.sense = match r.sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
        }

        let m = trows.len();
        // Column layout: [structural k][slack/surplus s][artificial a][rhs].
        let num_slack = trows
            .iter()
            .filter(|r| !matches!(r.sense, Sense::Eq))
            .count();
        // A `≥` row with zero rhs needs no artificial: negating it turns
        // the surplus into a plain basic slack at value zero, so only
        // strictly positive `≥` rows (and equations) enter phase 1.
        let num_art = trows
            .iter()
            .filter(|r| match r.sense {
                Sense::Le => false,
                Sense::Ge => r.rhs > EPS,
                Sense::Eq => true,
            })
            .count();
        let total = k + num_slack + num_art;
        let mut t = vec![vec![0.0f64; total + 1]; m + 1];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = k;
        let mut art_idx = k + num_slack;
        let mut art_cols: Vec<usize> = Vec::new();
        for (ri, row) in trows.iter().enumerate() {
            t[ri][..k].copy_from_slice(&row.coeffs);
            t[ri][total] = row.rhs;
            match row.sense {
                Sense::Le => {
                    t[ri][slack_idx] = 1.0;
                    basis[ri] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge if row.rhs <= EPS => {
                    // a·x ≥ 0  ⇔  −a·x + s = 0 with s ≥ 0 basic.
                    for cell in t[ri].iter_mut().take(k) {
                        *cell = -*cell;
                    }
                    t[ri][total] = 0.0;
                    t[ri][slack_idx] = 1.0;
                    basis[ri] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge => {
                    t[ri][slack_idx] = -1.0;
                    slack_idx += 1;
                    t[ri][art_idx] = 1.0;
                    basis[ri] = art_idx;
                    art_cols.push(art_idx);
                    art_idx += 1;
                }
                Sense::Eq => {
                    t[ri][art_idx] = 1.0;
                    basis[ri] = art_idx;
                    art_cols.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        // Phase 1: minimize the sum of artificials.
        if !art_cols.is_empty() {
            for &c in &art_cols {
                t[m][c] = 1.0;
            }
            // Price out the artificial basis.
            for ri in 0..m {
                if art_cols.contains(&basis[ri]) {
                    let pivot_row: Vec<f64> = t[ri].clone();
                    for (j, obj) in t[m].iter_mut().enumerate() {
                        *obj -= pivot_row[j];
                    }
                }
            }
            if !run_simplex(&mut t, &mut basis, total) {
                // Phase-1 objective is bounded by construction; unbounded
                // here indicates numerical trouble — treat as infeasible.
                return LpResult::Infeasible;
            }
            if -t[m][total] > 1e-6 {
                return LpResult::Infeasible;
            }
            // Drive any remaining artificial out of the basis if possible.
            for ri in 0..m {
                if art_cols.contains(&basis[ri]) {
                    if let Some(j) = (0..k + num_slack).find(|&j| t[ri][j].abs() > 1e-7) {
                        pivot(&mut t, ri, j, total);
                        basis[ri] = j;
                    }
                }
            }
            // Zero the phase-1 objective row and forbid artificial columns.
            for cell in t[m].iter_mut().take(total + 1) {
                *cell = 0.0;
            }
            for row in t.iter_mut().take(m) {
                for &c in &art_cols {
                    row[c] = 0.0;
                }
            }
        }

        // Phase 2 objective (shifted model objective over structurals).
        for (ci, &i) in cols.iter().enumerate() {
            t[m][ci] = model.vars[i].obj;
        }
        // Price out basic structural columns.
        for ri in 0..m {
            let b = basis[ri];
            if t[m][b].abs() > 0.0 {
                let coeff = t[m][b];
                let pivot_row: Vec<f64> = t[ri].clone();
                for (j, obj) in t[m].iter_mut().enumerate() {
                    *obj -= coeff * pivot_row[j];
                }
            }
        }
        if !run_simplex(&mut t, &mut basis, total) {
            return LpResult::Unbounded;
        }

        // Extract solution (shifted basics mapped back to model columns).
        let mut x = lb.clone();
        for ri in 0..m {
            if basis[ri] < k {
                x[cols[basis[ri]]] = lb[cols[basis[ri]]] + t[ri][total];
            }
        }
        // Reconstruct eliminated columns in reverse elimination order: a
        // later elimination's rows never mention an earlier eliminated
        // variable, so each step sees fully reconstructed neighbors.
        for e in elims.iter().rev() {
            match e {
                Elim::AtValue { var, value } => x[*var] = lb[*var] + value,
                Elim::Pair {
                    var,
                    range: r,
                    pos,
                    pos_coeff,
                    pos_rhs,
                    neg,
                    neg_coeff,
                    neg_rhs,
                } => {
                    let eval = |terms: &[(usize, f64)]| -> f64 {
                        terms.iter().map(|&(v, c)| c * (x[v] - lb[v])).sum()
                    };
                    let lo = ((pos_rhs - eval(pos)) / pos_coeff).max(0.0);
                    let hi = ((eval(neg) - neg_rhs) / neg_coeff).min(*r);
                    // Prefer an integral endpoint of the feasible interval.
                    let value = if lo <= EPS {
                        0.0
                    } else if hi >= r - EPS {
                        *r
                    } else {
                        lo.min(*r)
                    };
                    x[*var] = lb[*var] + value;
                }
            }
        }
        let objective = model.objective_value(&x);
        LpResult::Optimal { x, objective }
    }
}

/// A shifted model row during presolve (dense coefficients over all
/// structural columns; `alive == false` once dropped or replaced).
struct Row {
    coeffs: Vec<f64>,
    sense: Sense,
    rhs: f64,
    alive: bool,
}

/// A compacted tableau row (dense over the surviving columns).
struct TRow {
    coeffs: Vec<f64>,
    sense: Sense,
    rhs: f64,
}

/// Record of a presolve column elimination, for solution reconstruction.
/// All coefficients and right-hand sides live in the *shifted* space
/// (`x' = x − lb`), and `AtValue`/interval values are shifted too.
enum Elim {
    /// The column was set to a fixed shifted value (favorable bound of a
    /// zero-cost variable, or an unconstrained column pinned at zero).
    AtValue { var: usize, value: f64 },
    /// Bounded Fourier–Motzkin elimination of a zero-cost column from one
    /// positive-coefficient `≥` row (`pos`) and one negative-coefficient
    /// `≥` row (`neg`); `pos_coeff`/`neg_coeff` are the magnitudes.
    Pair {
        var: usize,
        range: f64,
        pos: Vec<(usize, f64)>,
        pos_coeff: f64,
        pos_rhs: f64,
        neg: Vec<(usize, f64)>,
        neg_coeff: f64,
        neg_rhs: f64,
    },
}

/// Minimum and maximum activity of a shifted row over the box
/// `x' ∈ [0, range]`, skipping numerically-zero coefficients.
fn activity(coeffs: &[f64], range: &[f64]) -> (f64, f64) {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for (i, &c) in coeffs.iter().enumerate() {
        if c > EPS {
            hi += c * range[i];
        } else if c < -EPS {
            lo += c * range[i];
        }
    }
    (lo, hi)
}

/// Drops a row as redundant if every box point satisfies it; reports
/// `Err(())` if no box point can. Returns whether the row stays alive.
fn vet_row(row: &mut Row, range: &[f64]) -> Result<(), ()> {
    let (lo, hi) = activity(&row.coeffs, range);
    match row.sense {
        Sense::Ge => {
            if hi < row.rhs - 1e-6 {
                return Err(());
            }
            if lo >= row.rhs - EPS {
                row.alive = false;
            }
        }
        Sense::Le => {
            if lo > row.rhs + 1e-6 {
                return Err(());
            }
            if hi <= row.rhs + EPS {
                row.alive = false;
            }
        }
        Sense::Eq => {
            if hi < row.rhs - 1e-6 || lo > row.rhs + 1e-6 {
                return Err(());
            }
        }
    }
    Ok(())
}

/// Presolve on the shifted rows: activity-based row dropping with quick
/// infeasibility detection, then elimination of zero-objective bounded
/// columns that the relaxation can always set freely — either at a
/// favorable bound (all occurrences relax the same way) or via bounded
/// Fourier–Motzkin when the column sits between exactly one pair of
/// opposing `≥` rows (the Eq. 4 orientation binaries). Returns `Err(())`
/// when the rows are infeasible over the box.
fn presolve(
    model: &Model,
    range: &[f64],
    rows: &mut Vec<Row>,
    eliminated: &mut [bool],
    elims: &mut Vec<Elim>,
) -> Result<(), ()> {
    let n = model.num_vars();
    for row in rows.iter_mut() {
        vet_row(row, range)?;
    }
    for j in 0..n {
        if model.vars[j].obj != 0.0 || range[j] <= EPS || !range[j].is_finite() {
            continue;
        }
        let occ: Vec<usize> = (0..rows.len())
            .filter(|&ri| rows[ri].alive && rows[ri].coeffs[j].abs() > EPS)
            .collect();
        // Direction each occurrence relaxes toward: +1 if the row loosens
        // as x_j grows, −1 if it tightens, 0 for equations (never touched).
        let dir = |ri: usize| -> i8 {
            let c = rows[ri].coeffs[j];
            match rows[ri].sense {
                Sense::Eq => 0,
                Sense::Ge => {
                    if c > 0.0 {
                        1
                    } else {
                        -1
                    }
                }
                Sense::Le => {
                    if c > 0.0 {
                        -1
                    } else {
                        1
                    }
                }
            }
        };
        if occ.is_empty() {
            eliminated[j] = true;
            elims.push(Elim::AtValue { var: j, value: 0.0 });
        } else if occ.iter().all(|&ri| dir(ri) == 1) {
            // Every row loosens as x_j grows: pin at the upper bound.
            for &ri in &occ {
                let c = rows[ri].coeffs[j];
                rows[ri].rhs -= c * range[j];
                rows[ri].coeffs[j] = 0.0;
                vet_row(&mut rows[ri], range)?;
            }
            eliminated[j] = true;
            elims.push(Elim::AtValue {
                var: j,
                value: range[j],
            });
        } else if occ.iter().all(|&ri| dir(ri) == -1) {
            // Every row loosens as x_j shrinks: pin at zero.
            for &ri in &occ {
                rows[ri].coeffs[j] = 0.0;
                vet_row(&mut rows[ri], range)?;
            }
            eliminated[j] = true;
            elims.push(Elim::AtValue { var: j, value: 0.0 });
        } else if occ.len() == 2
            && rows[occ[0]].sense == Sense::Ge
            && rows[occ[1]].sense == Sense::Ge
            && (rows[occ[0]].coeffs[j] > 0.0) != (rows[occ[1]].coeffs[j] > 0.0)
        {
            let (pi, ni) = if rows[occ[0]].coeffs[j] > 0.0 {
                (occ[0], occ[1])
            } else {
                (occ[1], occ[0])
            };
            let a1 = rows[pi].coeffs[j];
            let a2 = -rows[ni].coeffs[j];
            let sparse = |ri: usize| -> Vec<(usize, f64)> {
                rows[ri]
                    .coeffs
                    .iter()
                    .enumerate()
                    .filter(|&(v, &c)| v != j && c.abs() > EPS)
                    .map(|(v, &c)| (v, c))
                    .collect()
            };
            let (pos, neg) = (sparse(pi), sparse(ni));
            let (pos_rhs, neg_rhs) = (rows[pi].rhs, rows[ni].rhs);
            rows[pi].alive = false;
            rows[ni].alive = false;
            // x_j ∈ [0, u] exists between the two rows iff:
            //   pos at x_j = u:   rest_pos ≥ pos_rhs − a1·u
            //   neg at x_j = 0:   rest_neg ≥ neg_rhs
            //   cross pair:       a2·rest_pos + a1·rest_neg ≥ a2·pos_rhs + a1·neg_rhs
            let mut fresh = Vec::with_capacity(3);
            let mut at_upper = vec![0.0; n];
            for &(v, c) in &pos {
                at_upper[v] = c;
            }
            fresh.push(Row {
                coeffs: at_upper,
                sense: Sense::Ge,
                rhs: pos_rhs - a1 * range[j],
                alive: true,
            });
            let mut at_zero = vec![0.0; n];
            for &(v, c) in &neg {
                at_zero[v] = c;
            }
            fresh.push(Row {
                coeffs: at_zero,
                sense: Sense::Ge,
                rhs: neg_rhs,
                alive: true,
            });
            let mut cross = vec![0.0; n];
            for &(v, c) in &pos {
                cross[v] += a2 * c;
            }
            for &(v, c) in &neg {
                cross[v] += a1 * c;
            }
            fresh.push(Row {
                coeffs: cross,
                sense: Sense::Ge,
                rhs: a2 * pos_rhs + a1 * neg_rhs,
                alive: true,
            });
            for mut row in fresh {
                vet_row(&mut row, range)?;
                if row.alive {
                    rows.push(row);
                }
            }
            eliminated[j] = true;
            elims.push(Elim::Pair {
                var: j,
                range: range[j],
                pos,
                pos_coeff: a1,
                pos_rhs,
                neg,
                neg_coeff: a2,
                neg_rhs,
            });
        }
    }
    Ok(())
}

/// Runs primal simplex iterations on the tableau until optimal or unbounded.
/// Returns `false` on unboundedness.
fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], total: usize) -> bool {
    let m = t.len() - 1;
    let dantzig_limit = DANTZIG_LIMIT_FACTOR * (m + total) + 200;
    let mut iters = 0usize;
    loop {
        iters += 1;
        let bland = iters > dantzig_limit;
        // Entering column: most negative reduced cost (Dantzig), or first
        // negative (Bland, guaranteed finite).
        let mut enter = usize::MAX;
        let mut best = -EPS;
        for (j, &rc) in t[m].iter().enumerate().take(total) {
            if rc < -EPS {
                if bland {
                    enter = j;
                    break;
                }
                if rc < best {
                    best = rc;
                    enter = j;
                }
            }
        }
        if enter == usize::MAX {
            return true; // optimal
        }
        // Leaving row: minimum ratio, ties by smallest basis index (Bland).
        let mut leave = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for ri in 0..m {
            let a = t[ri][enter];
            if a > EPS {
                let ratio = t[ri][total] / a;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && (leave == usize::MAX || basis[ri] < basis[leave]))
                {
                    best_ratio = ratio;
                    leave = ri;
                }
            }
        }
        if leave == usize::MAX {
            return false; // unbounded
        }
        pivot(t, leave, enter, total);
        basis[leave] = enter;
    }
}

/// Gauss-Jordan pivot on (`row`, `col`).
fn pivot(t: &mut [Vec<f64>], row: usize, col: usize, total: usize) {
    let piv = t[row][col];
    debug_assert!(piv.abs() > EPS, "pivot too small");
    for cell in t[row].iter_mut().take(total + 1) {
        *cell /= piv;
    }
    let pivot_row: Vec<f64> = t[row].clone();
    for (ri, r) in t.iter_mut().enumerate() {
        if ri == row {
            continue;
        }
        let factor = r[col];
        if factor.abs() > 0.0 {
            for j in 0..=total {
                r[j] -= factor * pivot_row[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_2d_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 2.0, -1.0);
        let y = m.add_continuous("y", 0.0, 3.0, -2.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(objective, -7.0);
                assert_close(sol[0], 1.0);
                assert_close(sol[1], 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y  s.t. x + y >= 3, x - y = 1  -> x = 2, y = 1.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(objective, 3.0);
                assert_close(sol[0], 2.0);
                assert_close(sol[1], 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(Simplex::new().solve(&m, &[]), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(Simplex::new().solve(&m, &[]), LpResult::Unbounded);
    }

    #[test]
    fn binary_relaxation_is_boxed() {
        // min -x over binary x: LP relaxation gives x = 1.
        let mut m = Model::new();
        let _x = m.add_binary("x", -1.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(sol[0], 1.0);
                assert_close(objective, -1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fixed_overrides_bounds() {
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        let y = m.add_binary("y", -1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Le, 2.0);
        match Simplex::new().solve(&m, &[(x.index(), 0.0)]) {
            LpResult::Optimal { x: sol, objective } => {
                assert_close(sol[0], 0.0);
                assert_close(sol[1], 1.0);
                assert_close(objective, -1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contradictory_fixing_is_infeasible() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 1.0);
        assert_eq!(
            Simplex::new().solve(&m, &[(x.index(), 0.0)]),
            LpResult::Infeasible
        );
    }

    #[test]
    fn vertex_cover_lp_is_half_integral_on_triangle() {
        // VC LP on a triangle: optimum 1.5 with all x = 1/2.
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        let c = m.add_binary("c", 1.0);
        for (u, v) in [(a, b), (b, c), (a, c)] {
            m.add_constraint(&[(u, 1.0), (v, 1.0)], Sense::Ge, 1.0);
        }
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { objective, .. } => assert_close(objective, 1.5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate instance; Bland fallback must terminate.
        let mut m = Model::new();
        let x1 = m.add_continuous("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = m.add_continuous("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = m.add_continuous("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = m.add_continuous("x4", 0.0, f64::INFINITY, 6.0);
        m.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        m.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        m.add_constraint(&[(x3, 1.0)], Sense::Le, 1.0);
        match Simplex::new().solve(&m, &[]) {
            LpResult::Optimal { objective, .. } => assert_close(objective, -0.05),
            other => panic!("unexpected {other:?}"),
        }
    }
}

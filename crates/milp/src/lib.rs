//! A 0-1 mixed-integer linear programming solver, built from scratch as the
//! CPLEX stand-in for the COMPACT reproduction.
//!
//! The paper solves its VH-labeling formulations (minimum vertex cover ILP,
//! Eq. 2, and the weighted MIP, Eq. 4) with CPLEX under a wall-clock limit,
//! reporting the best integer solution, the best bound, and the relative gap
//! over time (Figures 10 and 11). This crate provides the same capabilities:
//!
//! - [`Model`]: a row/column model builder (binary and continuous variables,
//!   `<=`/`>=`/`=` linear constraints, minimization objective);
//! - [`lp::Simplex`]: a dense two-phase primal simplex for LP relaxations;
//! - [`BranchBound`]: best-first branch & bound over the binary variables
//!   with LP bounding, activity-based constraint propagation, rounding
//!   heuristics, a wall-clock limit, and a [`SolveTrace`] recording the
//!   incumbent/bound/gap trajectory;
//! - a pluggable [`Bounder`] so domain code (the VH-labeling of
//!   `flowc-compact`) can substitute combinatorial bounds where the dense
//!   LP would be too large.
//!
//! # Example: a tiny knapsack
//!
//! ```
//! use flowc_milp::{Model, Sense, BranchBound};
//!
//! let mut m = Model::new();
//! // maximize 5a + 4b + 3c  s.t.  2a + 3b + c <= 4  ==  minimize negated.
//! let a = m.add_binary("a", -5.0);
//! let b = m.add_binary("b", -4.0);
//! let c = m.add_binary("c", -3.0);
//! m.add_constraint(&[(a, 2.0), (b, 3.0), (c, 1.0)], Sense::Le, 4.0);
//! let sol = BranchBound::new().solve(&m).unwrap();
//! assert_eq!(sol.objective.round() as i64, -8); // a and c
//! assert_eq!(sol.values[a.index()].round() as i64, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
pub mod lp;
pub mod metrics;
mod model;
mod parallel;
mod sol;

pub use branch::{Bounder, BranchBound, LpBounder};
pub use model::{Model, Sense, VarId, VarKind};
pub use sol::{MilpError, Solution, SolveStatus, SolveTrace, TracePoint};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MilpError>;

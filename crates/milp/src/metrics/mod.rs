//! Metric-guided bounders: combinatorial lower bounds specialized to the
//! structures this repo actually solves, pluggable into [`BranchBound`]
//! via the [`Bounder`] trait.
//!
//! Three families live here:
//!
//! - [`MatchingCoverBounder`] / [`DegreeCoverBounder`]: bounds for pairwise
//!   vertex-cover ILPs (`x_u + x_v >= 1` rows), via greedy disjoint-pair
//!   matching and degree counting respectively;
//! - [`VhBounder`]: the VH-labeling objective of the paper's Eq. 4
//!   (`γ·S + (1−γ)·D`), bounding S through forced-VH counts plus a
//!   vertex-disjoint triangle packing (every triangle is an odd cycle, so
//!   it forces a VH node) and D through `max(⌈S/2⌉, rows, columns)`;
//! - [`HybridBounder`]: composes a cheap combinatorial bounder with the LP
//!   relaxation — the LP is solved only when the cheap bound fails to reach
//!   the cutoff, which on deep subtrees skips most LP work.
//!
//! Every bounder here is pinned by exhaustive-enumeration-vs-branch&bound
//! equivalence tests on seeded random models (`tests/` in this crate and
//! the labeling equivalence suite in `flowc-conform`).

mod cover;
mod vh;

pub use cover::{CoverProblem, DegreeCoverBounder, MatchingCoverBounder};
pub use vh::{VhBounder, VhLayout};

use crate::branch::{sanitize_bound, Bounder, LpBounder};
use crate::model::Model;

/// Composes a cheap combinatorial bounder with LP refinement: the LP solve
/// is skipped whenever the cheap bound alone already reaches the cutoff
/// (i.e. the node prunes without it). The reported bound is the max of the
/// two, so it is never weaker than either part.
#[derive(Debug, Clone)]
pub struct HybridBounder<B> {
    cheap: B,
    lp: LpBounder,
    /// Whether the last `lower_bound` call ran the LP (its relaxation
    /// point is only meaningful then).
    lp_fresh: bool,
    lp_solves: u64,
    lp_skips: u64,
}

impl<B: Bounder> HybridBounder<B> {
    /// Wraps `cheap` with LP refinement.
    pub fn new(cheap: B) -> Self {
        HybridBounder {
            cheap,
            lp: LpBounder::new(),
            lp_fresh: false,
            lp_solves: 0,
            lp_skips: 0,
        }
    }

    /// `(lp_solves, lp_skips)` so far — how often the cheap bound made the
    /// LP unnecessary.
    pub fn lp_stats(&self) -> (u64, u64) {
        (self.lp_solves, self.lp_skips)
    }
}

impl<B: Bounder> Bounder for HybridBounder<B> {
    fn lower_bound(&mut self, model: &Model, fixed: &[Option<bool>], cutoff: f64) -> f64 {
        self.lp_fresh = false;
        let cheap = sanitize_bound(self.cheap.lower_bound(model, fixed, cutoff));
        let cheap = self.cheap.tighten_bound(cheap);
        if cheap == f64::INFINITY || cheap >= cutoff - 1e-9 {
            self.lp_skips += 1;
            return cheap;
        }
        self.lp_solves += 1;
        let lp = sanitize_bound(self.lp.lower_bound(model, fixed, cutoff));
        if lp == f64::INFINITY {
            return lp;
        }
        self.lp_fresh = true;
        // `-inf` (unbounded LP) defers to the combinatorial bound.
        cheap.max(lp)
    }

    fn tighten_bound(&self, bound: f64) -> f64 {
        self.cheap.tighten_bound(bound)
    }

    fn relaxation_point(&self) -> Option<&[f64]> {
        if self.lp_fresh {
            self.lp.relaxation_point()
        } else {
            None
        }
    }

    fn suggest_incumbent(&mut self, model: &Model, fixed: &[Option<bool>]) -> Option<Vec<f64>> {
        self.cheap.suggest_incumbent(model, fixed)
    }

    fn branch_hint(&self, model: &Model, fixed: &[Option<bool>]) -> Option<usize> {
        self.cheap.branch_hint(model, fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::BranchBound;

    #[test]
    fn hybrid_is_never_weaker_than_lp_alone() {
        // C5 vertex cover: hybrid(Matching) must reach the optimum with a
        // proven gap of zero, like the LP path does.
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        let prob = CoverProblem::from_model(&m).unwrap();
        let mut hybrid = HybridBounder::new(MatchingCoverBounder::new(prob));
        let sol = BranchBound::new().solve_with(&m, &mut hybrid).unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
        let (solves, skips) = hybrid.lp_stats();
        assert!(solves + skips > 0);
    }
}

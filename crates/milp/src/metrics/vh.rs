//! Combinatorial bounder for the paper's Eq. 4 VH-labeling MIP.
//!
//! A VH labeling assigns every BDD-graph node V (bitline), H (wordline) or
//! VH (both); no edge may join two pure-V or two pure-H nodes. With
//! `S = n + #VH`, `R = #H + #VH`, `C = #V + #VH` and `D = max(R, C)`, the
//! objective is `γ·S + (1−γ)·D`. Structurally the VH set is an odd cycle
//! transversal: the graph minus VH nodes must be bipartite. That yields
//! cheap, LP-free node bounds:
//!
//! - every triangle without a VH member forces one more VH node, so a
//!   vertex-disjoint triangle packing lower-bounds `S`;
//! - `R + C = S` forces `D ≥ ⌈S/2⌉`, and the already-fixed wordline /
//!   bitline counts bound `R` and `C` from below;
//!
//! plus a greedy completion (2-color the residual graph honoring fixed
//! labels, evict odd-cycle nodes to VH, balance component orientations)
//! that seeds strong incumbents long before the search reaches a leaf.

use crate::branch::Bounder;
use crate::model::Model;

/// Variable layout of an Eq. 4 model, as produced by the labeling stage:
/// per graph node its `xv`/`xh` column indices, per graph edge its
/// orientation binary, and the continuous `D` column.
#[derive(Debug, Clone)]
pub struct VhLayout {
    /// Number of graph nodes.
    pub n: usize,
    /// Column index of `xv_i` per node.
    pub xv: Vec<usize>,
    /// Column index of `xh_i` per node.
    pub xh: Vec<usize>,
    /// `(i, j, o_column)` per graph edge: the orientation binary linearizing
    /// the "no V–V / no H–H" disjunction.
    pub edges: Vec<(usize, usize, usize)>,
    /// Column index of the continuous `D = max(R, C)` variable.
    pub d_var: usize,
    /// The sweep weight γ ∈ [0, 1].
    pub gamma: f64,
}

/// LP-free bounder for the VH objective. See the module docs for the bound
/// derivation; wrap in [`crate::metrics::HybridBounder`] to add LP
/// refinement on nodes the combinatorial bound cannot prune.
#[derive(Debug, Clone)]
pub struct VhBounder {
    layout: VhLayout,
    adj: Vec<Vec<usize>>,
    degree: Vec<usize>,
    triangles: Vec<[usize; 3]>,
}

impl VhBounder {
    /// Precomputes adjacency and the triangle list for `layout`.
    pub fn new(layout: VhLayout) -> Self {
        let n = layout.n;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j, _) in &layout.edges {
            if i != j && !adj[i].contains(&j) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }
        let mut triangles = Vec::new();
        for &(i, j, _) in &layout.edges {
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            // Common neighbors above b keep each triangle unique.
            for &k in &adj[a] {
                if k > b && adj[b].binary_search(&k).is_ok() {
                    triangles.push([a, b, k]);
                }
            }
        }
        let degree = adj.iter().map(Vec::len).collect();
        VhBounder {
            layout,
            adj,
            degree,
            triangles,
        }
    }

    /// The layout this bounder was built for.
    pub fn layout(&self) -> &VhLayout {
        &self.layout
    }
}

/// Decoded per-node state under a partial fixing.
struct NodeStates {
    /// `xv` can still be 1 (not fixed to 0).
    can_v: Vec<bool>,
    /// `xh` can still be 1.
    can_h: Vec<bool>,
    /// `xv` fixed to 1.
    forced_v: Vec<bool>,
    /// `xh` fixed to 1.
    forced_h: Vec<bool>,
}

impl NodeStates {
    /// `None` when some node can be neither bitline nor wordline.
    fn decode(layout: &VhLayout, fixed: &[Option<bool>]) -> Option<NodeStates> {
        let n = layout.n;
        let mut s = NodeStates {
            can_v: vec![true; n],
            can_h: vec![true; n],
            forced_v: vec![false; n],
            forced_h: vec![false; n],
        };
        for i in 0..n {
            match fixed[layout.xv[i]] {
                Some(false) => s.can_v[i] = false,
                Some(true) => s.forced_v[i] = true,
                None => {}
            }
            match fixed[layout.xh[i]] {
                Some(false) => s.can_h[i] = false,
                Some(true) => s.forced_h[i] = true,
                None => {}
            }
            if !s.can_v[i] && !s.can_h[i] {
                return None;
            }
        }
        Some(s)
    }

    fn is_vh(&self, i: usize) -> bool {
        self.forced_v[i] && self.forced_h[i]
    }

    fn can_vh(&self, i: usize) -> bool {
        self.can_v[i] && self.can_h[i]
    }

    /// Fully decided pure bitline (V) — cannot become VH.
    fn pure_v(&self, i: usize) -> bool {
        self.forced_v[i] && !self.can_h[i]
    }

    fn pure_h(&self, i: usize) -> bool {
        self.forced_h[i] && !self.can_v[i]
    }
}

impl Bounder for VhBounder {
    fn lower_bound(&mut self, _model: &Model, fixed: &[Option<bool>], _cutoff: f64) -> f64 {
        let layout = &self.layout;
        let n = layout.n;
        let Some(states) = NodeStates::decode(layout, fixed) else {
            return f64::INFINITY;
        };
        for &(i, j, _) in &layout.edges {
            if (states.pure_v(i) && states.pure_v(j)) || (states.pure_h(i) && states.pure_h(j)) {
                return f64::INFINITY;
            }
        }
        // Vertex-disjoint triangles without a VH member each force one more
        // VH node among their VH-capable members.
        let mut used = vec![false; n];
        let mut extra = 0usize;
        'tri: for t in &self.triangles {
            if t.iter().any(|&x| states.is_vh(x)) {
                continue;
            }
            let mut capable = 0;
            for &x in t {
                if states.can_vh(x) {
                    if used[x] {
                        continue 'tri; // overlaps an already-counted triangle
                    }
                    capable += 1;
                }
            }
            if capable == 0 {
                // All three members decided non-VH: an odd cycle survives.
                return f64::INFINITY;
            }
            for &x in t {
                if states.can_vh(x) {
                    used[x] = true;
                }
            }
            extra += 1;
        }
        let vh_count = (0..n).filter(|&i| states.is_vh(i)).count();
        let rows_now = states.forced_h.iter().filter(|&&b| b).count();
        let cols_now = states.forced_v.iter().filter(|&&b| b).count();
        let s_lb = (n + vh_count + extra) as f64;
        let d_lb = (s_lb / 2.0)
            .ceil()
            .max(rows_now as f64)
            .max(cols_now as f64);
        layout.gamma * s_lb + (1.0 - layout.gamma) * d_lb
    }

    /// Rounds a bound up to the objective lattice: every achievable value
    /// is `γ·S + (1−γ)·D` with integers `n ≤ S ≤ 2n` and `⌈S/2⌉ ≤ D ≤ S`,
    /// so the smallest lattice point at or above `bound` is still a valid
    /// lower bound. At the sweep extremes this is decisive — at γ = 0 a
    /// fractional `D` bound of 28.3 becomes 29, pruning whole tie plateaus
    /// that the LP relaxation alone cannot close.
    fn tighten_bound(&self, bound: f64) -> f64 {
        if !bound.is_finite() {
            return bound;
        }
        let layout = &self.layout;
        let gamma = layout.gamma;
        let eps = 1e-6;
        let mut best = f64::INFINITY;
        for s_val in layout.n..=2 * layout.n {
            let base = gamma * s_val as f64;
            let d_floor = s_val.div_ceil(2);
            let d = if 1.0 - gamma <= f64::EPSILON {
                // Pure-S objective: D contributes nothing.
                if base < bound - eps {
                    continue;
                }
                d_floor
            } else {
                let need = ((bound - eps - base) / (1.0 - gamma)).ceil();
                if need > s_val as f64 {
                    continue; // D ≤ S: no achievable D reaches the bound
                }
                d_floor.max(if need > 0.0 { need as usize } else { 0 })
            };
            best = best.min(base + (1.0 - gamma) * d as f64);
        }
        // `best` can dip below `bound` by the epsilon slack; never weaken.
        // An empty lattice above `bound` means the node cannot beat it.
        best.max(bound)
    }

    fn suggest_incumbent(&mut self, model: &Model, fixed: &[Option<bool>]) -> Option<Vec<f64>> {
        let layout = &self.layout;
        let n = layout.n;
        let states = NodeStates::decode(layout, fixed)?;

        // Transversal: start from the VH-fixed nodes, then evict odd-cycle
        // nodes until the residual graph 2-colors.
        let mut vh: Vec<bool> = (0..n).map(|i| states.is_vh(i)).collect();
        let mut color = vec![-1i8; n];
        let mut comp = vec![usize::MAX; n];
        let mut ncomp;
        'color: loop {
            color.iter_mut().for_each(|c| *c = -1);
            comp.iter_mut().for_each(|c| *c = usize::MAX);
            ncomp = 0;
            for s in 0..n {
                if vh[s] || color[s] >= 0 {
                    continue;
                }
                color[s] = 0;
                comp[s] = ncomp;
                let mut queue = vec![s];
                while let Some(u) = queue.pop() {
                    for &w in &self.adj[u] {
                        if vh[w] {
                            continue;
                        }
                        if color[w] < 0 {
                            color[w] = 1 - color[u];
                            comp[w] = ncomp;
                            queue.push(w);
                        } else if color[w] == color[u] {
                            // Odd cycle: move a capable endpoint into VH.
                            let pick = [u, w]
                                .into_iter()
                                .filter(|&x| states.can_vh(x))
                                .max_by_key(|&x| self.degree[x])?;
                            vh[pick] = true;
                            continue 'color;
                        }
                    }
                }
                ncomp += 1;
            }
            break;
        }

        // Orientation per component: color `o` becomes the bitline side.
        // Validity and (rows, cols) contribution per choice; nodes whose
        // fixing disagrees with their side upgrade to VH when allowed.
        #[derive(Clone, Copy)]
        struct Orient {
            valid: bool,
            r: usize,
            c: usize,
        }
        let mut comps = vec![
            [Orient {
                valid: true,
                r: 0,
                c: 0
            }; 2];
            ncomp
        ];
        for i in 0..n {
            if vh[i] {
                continue;
            }
            for (o, orient) in comps[comp[i]].iter_mut().enumerate() {
                let v_side = color[i] == o as i8;
                if v_side {
                    if !states.can_v[i] {
                        orient.valid = false;
                    } else if states.forced_h[i] {
                        orient.r += 1;
                        orient.c += 1;
                    } else {
                        orient.c += 1;
                    }
                } else if !states.can_h[i] {
                    orient.valid = false;
                } else if states.forced_v[i] {
                    orient.r += 1;
                    orient.c += 1;
                } else {
                    orient.r += 1;
                }
            }
        }
        let vh_base = vh.iter().filter(|&&b| b).count();
        let mut rows = vh_base;
        let mut cols = vh_base;
        let mut chosen = vec![usize::MAX; ncomp];
        let mut free: Vec<usize> = Vec::new();
        for (ci, os) in comps.iter().enumerate() {
            match (os[0].valid, os[1].valid) {
                (false, false) => return None,
                (true, false) => {
                    chosen[ci] = 0;
                    rows += os[0].r;
                    cols += os[0].c;
                }
                (false, true) => {
                    chosen[ci] = 1;
                    rows += os[1].r;
                    cols += os[1].c;
                }
                (true, true) => free.push(ci),
            }
        }
        // Balance the free components, largest first, to minimize max(R, C)
        // (ties: fewer VH upgrades).
        free.sort_by_key(|&ci| std::cmp::Reverse(comps[ci][0].r + comps[ci][0].c));
        for &ci in &free {
            let score = |o: usize| {
                let r = rows + comps[ci][o].r;
                let c = cols + comps[ci][o].c;
                (r.max(c), r + c)
            };
            let o = if score(0) <= score(1) { 0 } else { 1 };
            chosen[ci] = o;
            rows += comps[ci][o].r;
            cols += comps[ci][o].c;
        }

        // Materialize labels.
        let mut lv = vec![false; n];
        let mut lh = vec![false; n];
        for i in 0..n {
            if vh[i] {
                lv[i] = true;
                lh[i] = true;
                continue;
            }
            let v_side = color[i] == chosen[comp[i]] as i8;
            if v_side {
                lv[i] = true;
                lh[i] = states.forced_h[i];
            } else {
                lh[i] = true;
                lv[i] = states.forced_v[i];
            }
        }
        // Honor fixed orientation binaries: o=0 needs `xv_i ∧ xh_j`, o=1
        // needs `xh_i ∧ xv_j`; upgrade endpoints to VH where allowed.
        for &(i, j, ov) in &layout.edges {
            match fixed[ov] {
                Some(false) => {
                    if !lv[i] {
                        if !states.can_v[i] {
                            return None;
                        }
                        lv[i] = true;
                    }
                    if !lh[j] {
                        if !states.can_h[j] {
                            return None;
                        }
                        lh[j] = true;
                    }
                }
                Some(true) => {
                    if !lh[i] {
                        if !states.can_h[i] {
                            return None;
                        }
                        lh[i] = true;
                    }
                    if !lv[j] {
                        if !states.can_v[j] {
                            return None;
                        }
                        lv[j] = true;
                    }
                }
                None => {}
            }
        }
        let mut values = vec![0.0; model.num_vars()];
        for i in 0..n {
            values[layout.xv[i]] = f64::from(u8::from(lv[i]));
            values[layout.xh[i]] = f64::from(u8::from(lh[i]));
        }
        for &(i, j, ov) in &layout.edges {
            let o = match fixed[ov] {
                Some(b) => b,
                None => !(lv[i] && lh[j]),
            };
            let ok = if o { lh[i] && lv[j] } else { lv[i] && lh[j] };
            if !ok {
                return None;
            }
            values[ov] = f64::from(u8::from(o));
        }
        let rows_f = lh.iter().filter(|&&b| b).count();
        let cols_f = lv.iter().filter(|&&b| b).count();
        values[layout.d_var] = rows_f.max(cols_f) as f64;
        Some(values)
    }

    fn branch_hint(&self, _model: &Model, fixed: &[Option<bool>]) -> Option<usize> {
        // Branch on the label of the highest-degree undecided node: label
        // decisions drive both the bipartiteness structure and the R/C
        // counts, unlike the orientation binaries which are pure
        // linearization artifacts.
        let layout = &self.layout;
        (0..layout.n)
            .filter_map(|i| {
                let h_free = fixed[layout.xh[i]].is_none();
                let v_free = fixed[layout.xv[i]].is_none();
                if h_free {
                    Some((i, layout.xh[i]))
                } else if v_free {
                    Some((i, layout.xv[i]))
                } else {
                    None
                }
            })
            .max_by_key(|&(i, _)| self.degree[i])
            .map(|(_, var)| var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HybridBounder;
    use crate::model::Sense;
    use crate::{BranchBound, LpBounder};

    /// Builds the Eq. 4 MIP for a small graph, mirroring the layout the
    /// labeling stage produces: objective `γ·Σ(xv+xh) + (1−γ)·D`.
    fn build_vh_model(n: usize, edges: &[(usize, usize)], gamma: f64) -> (Model, VhLayout) {
        let mut m = Model::new();
        let xv: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("v{i}"), gamma))
            .collect();
        let xh: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("h{i}"), gamma))
            .collect();
        let mut layout_edges = Vec::new();
        for &(i, j) in edges {
            let o = m.add_binary(format!("o{i}_{j}"), 0.0);
            m.add_constraint(&[(xv[i], 1.0), (xh[j], 1.0), (o, 2.0)], Sense::Ge, 2.0);
            m.add_constraint(&[(xh[i], 1.0), (xv[j], 1.0), (o, -2.0)], Sense::Ge, 0.0);
            layout_edges.push((i, j, o.index()));
        }
        let d = m.add_continuous("D", 0.0, 2.0 * n as f64, 1.0 - gamma);
        let mut rows: Vec<_> = xh.iter().map(|&v| (v, -1.0)).collect();
        rows.push((d, 1.0));
        m.add_constraint(&rows, Sense::Ge, 0.0);
        let mut cols: Vec<_> = xv.iter().map(|&v| (v, -1.0)).collect();
        cols.push((d, 1.0));
        m.add_constraint(&cols, Sense::Ge, 0.0);
        for i in 0..n {
            m.add_constraint(&[(xv[i], 1.0), (xh[i], 1.0)], Sense::Ge, 1.0);
        }
        let layout = VhLayout {
            n,
            xv: xv.iter().map(|v| v.index()).collect(),
            xh: xh.iter().map(|v| v.index()).collect(),
            edges: layout_edges,
            d_var: d.index(),
            gamma,
        };
        (m, layout)
    }

    /// Exhaustive optimum over all valid labelings: label each node V, H
    /// or VH; reject V–V and H–H edges; cost `γ(n+#VH) + (1−γ)max(R,C)`.
    fn enumerate_optimum(n: usize, edges: &[(usize, usize)], gamma: f64) -> f64 {
        let mut best = f64::INFINITY;
        let total = 3usize.pow(n as u32);
        'outer: for mut code in 0..total {
            let mut labels = vec![0u8; n]; // 0=V, 1=H, 2=VH
            for l in labels.iter_mut() {
                *l = (code % 3) as u8;
                code /= 3;
            }
            for &(i, j) in edges {
                if (labels[i] == 0 && labels[j] == 0) || (labels[i] == 1 && labels[j] == 1) {
                    continue 'outer;
                }
            }
            let vh = labels.iter().filter(|&&l| l == 2).count();
            let r = labels.iter().filter(|&&l| l != 0).count();
            let c = labels.iter().filter(|&&l| l != 1).count();
            let cost = gamma * (n + vh) as f64 + (1.0 - gamma) * r.max(c) as f64;
            best = best.min(cost);
        }
        best
    }

    fn graphs() -> Vec<(usize, Vec<(usize, usize)>)> {
        vec![
            // Triangle: one VH forced.
            (3, vec![(0, 1), (1, 2), (0, 2)]),
            // C5: odd cycle, one VH.
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            // Path P4: bipartite, no VH needed.
            (4, vec![(0, 1), (1, 2), (2, 3)]),
            // Two triangles sharing a vertex.
            (5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]),
            // K4: dense, multiple triangles.
            (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        ]
    }

    /// Exhaustive-vs-branch&bound equivalence for every bounder path, over
    /// every small graph and every sweep point.
    #[test]
    fn all_bounders_match_exhaustive_enumeration() {
        for (n, edges) in graphs() {
            for &gamma in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let (m, layout) = build_vh_model(n, &edges, gamma);
                let expected = enumerate_optimum(n, &edges, gamma);

                let lp = BranchBound::new()
                    .solve_with(&m, &mut LpBounder::new())
                    .unwrap();
                assert!(
                    (lp.objective - expected).abs() < 1e-6,
                    "LP n={n} γ={gamma}: {} vs {}",
                    lp.objective,
                    expected
                );

                let mut pure = VhBounder::new(layout.clone());
                let sol = BranchBound::new().solve_with(&m, &mut pure).unwrap();
                assert!(
                    (sol.objective - expected).abs() < 1e-6,
                    "VhBounder n={n} γ={gamma}: {} vs {}",
                    sol.objective,
                    expected
                );

                let mut hybrid = HybridBounder::new(VhBounder::new(layout.clone()));
                let sol = BranchBound::new().solve_with(&m, &mut hybrid).unwrap();
                assert!(
                    (sol.objective - expected).abs() < 1e-6,
                    "Hybrid n={n} γ={gamma}: {} vs {}",
                    sol.objective,
                    expected
                );

                let par = BranchBound::new()
                    .threads(2)
                    .solve_parallel_with(&m, || HybridBounder::new(VhBounder::new(layout.clone())))
                    .unwrap();
                assert!(
                    (par.objective - expected).abs() < 1e-6,
                    "parallel n={n} γ={gamma}: {} vs {}",
                    par.objective,
                    expected
                );
            }
        }
    }

    #[test]
    fn triangle_packing_counts_disjoint_triangles() {
        // Two vertex-disjoint triangles: S ≥ n + 2 at the root.
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        let (m, layout) = build_vh_model(6, &edges, 1.0);
        let mut bounder = VhBounder::new(layout);
        let fixed = vec![None; m.num_vars()];
        let bound = bounder.lower_bound(&m, &fixed, f64::INFINITY);
        // γ=1: bound = S_lb = 6 + 0 + 2.
        assert!((bound - 8.0).abs() < 1e-9, "got {bound}");
    }

    #[test]
    fn greedy_completion_is_feasible_from_the_root() {
        for (n, edges) in graphs() {
            for &gamma in &[0.0, 0.5, 1.0] {
                let (m, layout) = build_vh_model(n, &edges, gamma);
                let mut bounder = VhBounder::new(layout);
                let fixed = vec![None; m.num_vars()];
                let point = bounder
                    .suggest_incumbent(&m, &fixed)
                    .expect("root completion must exist");
                assert!(
                    m.is_feasible(&point, 1e-6),
                    "infeasible completion on n={n} γ={gamma}"
                );
            }
        }
    }
}

//! Combinatorial bounders for pairwise vertex-cover ILPs: models whose
//! rows are all `x_u + x_v >= 1` over binaries with non-negative costs
//! (the paper's Eq. 2 per-component covers have exactly this shape).

use crate::branch::Bounder;
use crate::model::{Model, Sense, VarKind};

/// The cover structure extracted from a model: one `(u, v)` pair per row,
/// plus the per-variable objective costs.
#[derive(Debug, Clone)]
pub struct CoverProblem {
    pairs: Vec<(usize, usize)>,
    costs: Vec<f64>,
    degree: Vec<usize>,
}

impl CoverProblem {
    /// Recognizes a pure pairwise-cover model: every variable binary with
    /// cost `>= 0`, every constraint `1·x_u + 1·x_v >= 1`. Returns `None`
    /// when the model has any other shape.
    pub fn from_model(model: &Model) -> Option<Self> {
        let n = model.num_vars();
        let mut costs = Vec::with_capacity(n);
        for i in 0..n {
            let v = crate::VarId(i as u32);
            if !matches!(model.var_kind(v), VarKind::Binary) {
                return None;
            }
            let c = model.objective_coeff(v);
            if c < 0.0 || c.is_nan() {
                return None;
            }
            costs.push(c);
        }
        let mut pairs = Vec::with_capacity(model.num_constraints());
        let mut degree = vec![0usize; n];
        for c in &model.cons {
            if c.sense != Sense::Ge || (c.rhs - 1.0).abs() > 1e-9 || c.terms.len() != 2 {
                return None;
            }
            let (u, au) = (c.terms[0].0.index(), c.terms[0].1);
            let (v, av) = (c.terms[1].0.index(), c.terms[1].1);
            if (au - 1.0).abs() > 1e-9 || (av - 1.0).abs() > 1e-9 || u == v {
                return None;
            }
            degree[u] += 1;
            degree[v] += 1;
            pairs.push((u, v));
        }
        Some(CoverProblem {
            pairs,
            costs,
            degree,
        })
    }

    /// Cost of the variables already fixed to one; `None` when some pair
    /// has both endpoints fixed to zero (infeasible).
    fn chosen_cost(&self, fixed: &[Option<bool>]) -> Option<f64> {
        if self
            .pairs
            .iter()
            .any(|&(u, v)| fixed[u] == Some(false) && fixed[v] == Some(false))
        {
            return None;
        }
        Some(
            fixed
                .iter()
                .enumerate()
                .filter(|(_, f)| **f == Some(true))
                .map(|(i, _)| self.costs[i])
                .sum(),
        )
    }

    fn uncovered<'a>(
        &'a self,
        fixed: &'a [Option<bool>],
    ) -> impl Iterator<Item = (usize, usize)> + 'a {
        self.pairs
            .iter()
            .copied()
            .filter(move |&(u, v)| fixed[u] != Some(true) && fixed[v] != Some(true))
    }

    /// Greedy completion: repeatedly add the free vertex covering the most
    /// remaining pairs per unit cost. Used as `suggest_incumbent` by both
    /// bounders.
    fn greedy_completion(&self, model: &Model, fixed: &[Option<bool>]) -> Option<Vec<f64>> {
        self.chosen_cost(fixed)?;
        let n = self.costs.len();
        let mut chosen: Vec<bool> = (0..n).map(|i| fixed[i] == Some(true)).collect();
        let mut open: Vec<(usize, usize)> = self
            .pairs
            .iter()
            .copied()
            .filter(|&(u, v)| !chosen[u] && !chosen[v])
            .collect();
        while !open.is_empty() {
            let mut count = vec![0usize; n];
            for &(u, v) in &open {
                if fixed[u].is_none() {
                    count[u] += 1;
                }
                if fixed[v].is_none() {
                    count[v] += 1;
                }
            }
            let best = (0..n).filter(|&i| count[i] > 0).max_by(|&a, &b| {
                let ra = count[a] as f64 / self.costs[a].max(1e-9);
                let rb = count[b] as f64 / self.costs[b].max(1e-9);
                ra.total_cmp(&rb)
            })?;
            chosen[best] = true;
            open.retain(|&(u, v)| u != best && v != best);
        }
        let values: Vec<f64> = (0..model.num_vars())
            .map(|i| if chosen[i] { 1.0 } else { 0.0 })
            .collect();
        Some(values)
    }

    /// Branch on a free endpoint of an uncovered pair, preferring high
    /// degree (covers the most rows at once).
    fn branch_on_uncovered(&self, fixed: &[Option<bool>]) -> Option<usize> {
        self.uncovered(fixed)
            .flat_map(|(u, v)| [u, v])
            .filter(|&i| fixed[i].is_none())
            .max_by_key(|&i| self.degree[i])
    }
}

/// Matching-based cover bound: chosen cost plus, for each greedily picked
/// vertex-disjoint uncovered pair, the cheaper endpoint's cost (the pair
/// needs at least one of them).
#[derive(Debug, Clone)]
pub struct MatchingCoverBounder {
    prob: CoverProblem,
}

impl MatchingCoverBounder {
    /// Wraps an extracted [`CoverProblem`].
    pub fn new(prob: CoverProblem) -> Self {
        MatchingCoverBounder { prob }
    }
}

impl Bounder for MatchingCoverBounder {
    fn lower_bound(&mut self, _model: &Model, fixed: &[Option<bool>], _cutoff: f64) -> f64 {
        let Some(mut bound) = self.prob.chosen_cost(fixed) else {
            return f64::INFINITY;
        };
        let mut used = vec![false; fixed.len()];
        for (u, v) in self.prob.uncovered(fixed) {
            let free = |i: usize| fixed[i].is_none() && !used[i];
            if free(u) && free(v) {
                used[u] = true;
                used[v] = true;
                bound += self.prob.costs[u].min(self.prob.costs[v]);
            }
        }
        bound
    }

    fn suggest_incumbent(&mut self, model: &Model, fixed: &[Option<bool>]) -> Option<Vec<f64>> {
        self.prob.greedy_completion(model, fixed)
    }

    fn branch_hint(&self, _model: &Model, fixed: &[Option<bool>]) -> Option<usize> {
        self.prob.branch_on_uncovered(fixed)
    }
}

/// Degree-based cover bound: `k` additional vertices cover at most
/// `k · max_degree` pairs, so `k >= ⌈uncovered / max_degree⌉` and the added
/// cost is at least that many copies of the cheapest free vertex.
#[derive(Debug, Clone)]
pub struct DegreeCoverBounder {
    prob: CoverProblem,
}

impl DegreeCoverBounder {
    /// Wraps an extracted [`CoverProblem`].
    pub fn new(prob: CoverProblem) -> Self {
        DegreeCoverBounder { prob }
    }
}

impl Bounder for DegreeCoverBounder {
    fn lower_bound(&mut self, _model: &Model, fixed: &[Option<bool>], _cutoff: f64) -> f64 {
        let Some(mut bound) = self.prob.chosen_cost(fixed) else {
            return f64::INFINITY;
        };
        let mut uncovered = 0usize;
        let mut free_deg = vec![0usize; fixed.len()];
        for (u, v) in self.prob.uncovered(fixed) {
            uncovered += 1;
            if fixed[u].is_none() {
                free_deg[u] += 1;
            }
            if fixed[v].is_none() {
                free_deg[v] += 1;
            }
        }
        if uncovered > 0 {
            let max_deg = free_deg.iter().copied().max().unwrap_or(0);
            if max_deg == 0 {
                return f64::INFINITY;
            }
            let min_cost = (0..fixed.len())
                .filter(|&i| free_deg[i] > 0)
                .map(|i| self.prob.costs[i])
                .fold(f64::INFINITY, f64::min);
            bound += uncovered.div_ceil(max_deg) as f64 * min_cost;
        }
        bound
    }

    fn suggest_incumbent(&mut self, model: &Model, fixed: &[Option<bool>]) -> Option<Vec<f64>> {
        self.prob.greedy_completion(model, fixed)
    }

    fn branch_hint(&self, _model: &Model, fixed: &[Option<bool>]) -> Option<usize> {
        self.prob.branch_on_uncovered(fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchBound;

    fn c5() -> Model {
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        m
    }

    #[test]
    fn recognizes_cover_shape() {
        let m = c5();
        let prob = CoverProblem::from_model(&m).unwrap();
        assert_eq!(prob.pairs.len(), 5);
        // A knapsack row breaks the shape.
        let mut m2 = c5();
        let extra = m2.add_binary("y", 1.0);
        m2.add_constraint(&[(extra, 2.0)], Sense::Le, 4.0);
        assert!(CoverProblem::from_model(&m2).is_none());
    }

    #[test]
    fn matching_and_degree_bounders_find_c5_optimum() {
        let m = c5();
        let prob = CoverProblem::from_model(&m).unwrap();
        for mut bounder in [
            Box::new(MatchingCoverBounder::new(prob.clone())) as Box<dyn Bounder>,
            Box::new(DegreeCoverBounder::new(prob)) as Box<dyn Bounder>,
        ] {
            let sol = BranchBound::new().solve_with(&m, bounder.as_mut()).unwrap();
            assert_eq!(sol.objective.round() as i64, 3);
        }
    }
}

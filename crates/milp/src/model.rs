use std::fmt;

/// Index of a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Raw column index (position in [`crate::Solution::values`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Integer variable restricted to {0, 1}; branched on by the solver.
    Binary,
    /// Continuous variable within `[lb, ub]`.
    Continuous {
        /// Lower bound.
        lb: f64,
        /// Upper bound (may be `f64::INFINITY`).
        ub: f64,
    },
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub obj: f64,
}

/// One linear constraint row (sparse).
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(VarId, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// A minimization MILP: `min cᵀx` subject to linear constraints, binary and
/// bounded-continuous variables. Build with the `add_*` methods and hand to
/// [`crate::BranchBound::solve`] (or [`crate::lp::Simplex`] for the pure LP
/// relaxation).
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Binary,
            obj,
        });
        id
    }

    /// Adds a continuous variable in `[lb, ub]` with the given objective
    /// coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan(), "bounds must not be NaN");
        assert!(lb <= ub, "lower bound exceeds upper bound");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Continuous { lb, ub },
            obj,
        });
        id
    }

    /// Adds the constraint `Σ coeff·var  sense  rhs`. Duplicate variables in
    /// `terms` are summed.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable not in this model.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], sense: Sense, rhs: f64) {
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.index() < self.vars.len(), "unknown variable {v}");
            match merged.iter_mut().find(|(mv, _)| *mv == v) {
                Some((_, mc)) => *mc += c,
                None => merged.push((v, c)),
            }
        }
        self.cons.push(Constraint {
            terms: merged,
            sense,
            rhs,
        });
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints (rows).
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this model.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// The kind of a variable.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this model.
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// The objective coefficient of a variable.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this model.
    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.vars[v.index()].obj
    }

    /// Iterator over binary variable ids.
    pub fn binaries(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Binary))
            .map(|(i, _)| VarId(i as u32))
    }

    /// Evaluates the objective at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the number of variables.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.obj * x[i])
            .sum()
    }

    /// Checks whether `x` satisfies all constraints and variable domains to
    /// tolerance `tol` (binaries must be within `tol` of 0 or 1).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() < self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            match v.kind {
                VarKind::Binary => {
                    if !((x[i] - 0.0).abs() <= tol || (x[i] - 1.0).abs() <= tol) {
                        return false;
                    }
                }
                VarKind::Continuous { lb, ub } => {
                    if x[i] < lb - tol || x[i] > ub + tol {
                        return false;
                    }
                }
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.index()]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_and_lookup() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        let y = m.add_continuous("y", 0.0, 10.0, -2.0);
        m.add_constraint(&[(a, 1.0), (y, 1.0)], Sense::Le, 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(a), "a");
        assert_eq!(m.objective_coeff(y), -2.0);
        assert!(matches!(m.var_kind(a), VarKind::Binary));
        assert_eq!(m.binaries().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn duplicate_terms_merge() {
        let mut m = Model::new();
        let a = m.add_binary("a", 0.0);
        m.add_constraint(&[(a, 1.0), (a, 2.0)], Sense::Le, 2.0);
        assert_eq!(m.cons[0].terms.len(), 1);
        assert_eq!(m.cons[0].terms[0].1, 3.0);
    }

    #[test]
    fn feasibility_checks_domains_and_rows() {
        let mut m = Model::new();
        let a = m.add_binary("a", 0.0);
        let y = m.add_continuous("y", 0.0, 2.0, 0.0);
        m.add_constraint(&[(a, 1.0), (y, 1.0)], Sense::Ge, 1.5);
        assert!(m.is_feasible(&[1.0, 0.5], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9), "fractional binary");
        assert!(
            !m.is_feasible(&[1.0, 3.0], 1e-9),
            "continuous out of bounds"
        );
        assert!(!m.is_feasible(&[0.0, 1.0], 1e-9), "row violated");
        assert!(!m.is_feasible(&[1.0], 1e-9), "short vector");
    }

    #[test]
    fn objective_value() {
        let mut m = Model::new();
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", -1.0);
        assert_eq!(m.objective_value(&[1.0, 1.0]), 1.0);
        let _ = (a, b);
    }

    #[test]
    fn bad_bounds_panic() {
        let mut m = Model::new();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.add_continuous("y", 2.0, 1.0, 0.0)
        }))
        .is_err());
    }
}
